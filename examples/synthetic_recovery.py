"""Measured recovery on a synthetic legacy system with dirty data.

Builds a complete scenario with known ground truth — a random conceptual
schema, mapped to 3NF, denormalized (two relations folded into their
children), populated, *corrupted* (10% of referencing values broken on
half the foreign-key paths) and wrapped in a generated program corpus —
then runs the reverse-engineering pipeline with the oracle expert and
scores the recovery against the ground truth.

This is the S3 experiment in example form.

Run:  python examples/synthetic_recovery.py
"""

from repro import DBREPipeline
from repro.eer import render_text
from repro.evaluation.metrics import score_fds, score_inds
from repro.evaluation.schema_match import score_schema_recovery
from repro.workloads.scenario import ScenarioConfig, build_scenario


def main() -> None:
    config = ScenarioConfig(
        seed=2026,
        n_entities=8,
        n_one_to_many=7,
        n_many_to_many=1,
        merges=2,
        parent_rows=25,
        corruption_ind_rate=0.5,
        corruption_row_rate=0.10,
    )
    scenario = build_scenario(config)

    print("== the synthetic legacy system ==")
    print(f"  {scenario.summary()}")
    print("  denormalized relations:")
    for relation in scenario.truth.denormalized_schema:
        print(f"    {relation!r}")
    print("  merges performed by the (simulated) original DBAs:")
    for merge in scenario.truth.merges:
        print(
            f"    {merge.parent} folded into {merge.child} "
            f"via {merge.fk_attr} (payload {merge.payload})"
        )
    print(f"  program corpus: {scenario.corpus!r}")
    if scenario.corruption.corrupted_inds:
        print("  corrupted reference paths:")
        for ind in scenario.corruption.corrupted_inds:
            print(f"    {ind!r}")

    print("\n== running the pipeline (oracle expert) ==")
    result = DBREPipeline(scenario.database, scenario.expert).run(
        corpus=scenario.corpus
    )
    print(f"  {result!r}")
    print(f"  extension queries: {result.extension_queries}, "
          f"expert decisions: {result.expert_decisions}")

    print("\n== recovery scores vs ground truth ==")
    ind_pr = score_inds(result.inds, scenario.truth.true_inds)
    fd_pr = score_fds(result.fds, scenario.truth.true_fds)
    recovery = score_schema_recovery(scenario.truth, result.restructured)
    print(f"  inclusion dependencies: {ind_pr!r}")
    print(f"  functional dependencies: {fd_pr!r}")
    print(f"  schema recovery: {recovery!r}")
    for original, found in sorted(recovery.recovered.items()):
        print(f"    {original} -> recovered as {found}")
    for original, (found, overlap) in sorted(recovery.partial.items()):
        print(f"    {original} ~> best match {found} (overlap {overlap})")
    for original in recovery.missing:
        print(f"    {original} -> MISSING")

    print("\n== recovered conceptual schema ==")
    print(render_text(result.eer))

    # -- §8's perspective: triage an exhaustive FD search by navigation --
    from repro.baselines import NaiveFDBaseline
    from repro.mining import NavigationProfile, rank_fds, relevance_partition

    profile = NavigationProfile.from_report(result.extraction)
    lattice = NaiveFDBaseline(scenario.database, max_lhs_size=1).run()
    ranked = rank_fds(lattice.non_key_fds(scenario.database), profile)
    navigated, unnavigated = relevance_partition(ranked)
    print("\n== programs as mining oracles (§8) ==")
    print(
        f"  exhaustive search found {len(ranked)} non-key FDs; navigation "
        f"evidence keeps {len(navigated)}, discards {len(unnavigated)}"
    )
    for entry in navigated[:5]:
        print(f"  {entry!r}")


if __name__ == "__main__":
    main()
