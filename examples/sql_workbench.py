"""Working with the engine directly: SQL, catalog, persistence, audits.

The reverse-engineering method rides on a small relational engine; this
example uses that engine the way a session tool would:

1. build a database with SQL DDL/DML;
2. query it (joins, subqueries, aggregates — including the method's
   ``COUNT(DISTINCT ...)`` primitive);
3. inspect the data dictionary and statistics;
4. run one elicitation step by hand (IND-Discovery over an ad-hoc Q);
5. save the session to disk (CSV extension + JSON dependency document)
   and load it back.

Run:  python examples/sql_workbench.py
"""

import os
import tempfile

from repro import Database, Executor
from repro.core import INDDiscovery
from repro.programs import EquiJoin
from repro.storage.csv_io import dump_database_csv, load_database_csv
from repro.storage.serialize import (
    database_from_dict,
    database_to_dict,
    dependencies_from_dict,
    dependencies_to_dict,
    load_json,
    save_json,
)
from repro.util.text import format_table

SETUP = """
CREATE TABLE region (rid INT PRIMARY KEY, rname VARCHAR(20));
CREATE TABLE store (
    sid INT PRIMARY KEY,
    sname VARCHAR(20) NOT NULL,
    region_ref INT
);
CREATE TABLE sale (
    tid INT PRIMARY KEY,
    store_ref INT NOT NULL,
    amount NUMBER
);
INSERT INTO region VALUES (1, 'north'), (2, 'south'), (3, 'west');
INSERT INTO store VALUES
    (10, 'alpha', 1), (11, 'beta', 1), (12, 'gamma', 2), (13, 'delta', NULL);
INSERT INTO sale VALUES
    (100, 10, 25.0), (101, 10, 13.5), (102, 11, 8.0),
    (103, 12, 99.9), (104, 12, 5.0), (105, 13, 42.0);
"""


def main() -> None:
    database = Database()
    executor = Executor(database)
    executor.run_script(SETUP)
    database.validate()

    print("== querying ==")
    result = executor.run("SELECT sname, region_ref FROM store ORDER BY sname")
    print(format_table(result.columns, result.rows))

    total = executor.run("SELECT SUM(amount), MAX(amount) FROM sale").rows[0]
    print(f"  total sales: {total[0]}, biggest ticket: {total[1]}")

    distinct = executor.run("SELECT COUNT(DISTINCT store_ref) FROM sale").scalar()
    print(f"  ||sale[store_ref]|| = {distinct}   (the paper's count primitive)")

    busy = executor.run(
        "SELECT sname FROM store WHERE sid IN "
        "(SELECT store_ref FROM sale WHERE amount > 20)"
    )
    print(f"  stores with a >20 ticket: {sorted(busy.column(0))}")

    print("\n== data dictionary ==")
    database.catalog.analyze(database)
    rows = [
        [e.relation, e.attribute, e.dtype, "yes" if e.in_key else "",
         "" if e.nullable else "not null"]
        for e in database.catalog.entries()
    ]
    print(format_table(["relation", "attribute", "type", "key", ""], rows))
    stats = database.catalog.statistics("store", "region_ref")
    print(
        f"  store.region_ref: {stats.distinct_count} distinct / "
        f"{stats.row_count} rows, {stats.null_fraction:.0%} NULL"
    )

    print("\n== one elicitation step by hand ==")
    q = [
        EquiJoin("sale", ("store_ref",), "store", ("sid",)),
        EquiJoin("store", ("region_ref",), "region", ("rid",)),
    ]
    discovery = INDDiscovery(database)
    found = discovery.run(q)
    for outcome in found.outcomes:
        print(
            f"  {outcome.join!r}: N_k={outcome.n_left}, N_l={outcome.n_right}, "
            f"N_kl={outcome.n_common} -> {outcome.case}"
        )
    for ind in found.inds:
        print(f"  elicited: {ind!r}")

    print("\n== persistence round-trip ==")
    with tempfile.TemporaryDirectory() as workdir:
        csv_dir = os.path.join(workdir, "extension")
        dump_database_csv(database, csv_dir)
        print(f"  extension dumped: {sorted(os.listdir(csv_dir))}")

        deps_path = os.path.join(workdir, "elicited.json")
        save_json(dependencies_to_dict([], found.inds), deps_path)
        _fds, reloaded_inds = dependencies_from_dict(load_json(deps_path))
        print(f"  dependencies reloaded: {reloaded_inds}")

        db_path = os.path.join(workdir, "database.json")
        save_json(database_to_dict(database), db_path)
        restored = database_from_dict(load_json(db_path))
        fresh = restored.copy()
        for table in fresh.tables():
            table.replace_rows([])
        load_database_csv(fresh, csv_dir)
        assert len(fresh.table("sale")) == len(database.table("sale"))
        print("  JSON + CSV round-trips verified")


if __name__ == "__main__":
    main()
