"""Quickstart: the paper's running example, end to end.

Reproduces §5-§7 of Petit et al. (ICDE 1996): starting from the
denormalized Person/HEmployee/Department/Assignment database, its
application programs and the scripted expert choices, the pipeline
elicits the inclusion and functional dependencies, restructures the
schema into 3NF with referential integrity constraints, and translates
the result into the Figure-1 EER schema.

Run:  python examples/quickstart.py
"""

from repro import DBREPipeline, ScriptedExpert
from repro.eer import render_text, to_dot
from repro.workloads import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


def main() -> None:
    database = build_paper_database()
    corpus = paper_program_corpus()
    expert = ScriptedExpert(paper_expert_script())

    print("== Input (the §5 denormalized schema) ==")
    for relation in database.schema:
        print(f"  {relation!r}")
    print(f"  programs: {corpus!r}")

    pipeline = DBREPipeline(database, expert)
    result = pipeline.run(corpus=corpus)

    print("\n== §4: dictionary-derived constraint sets ==")
    print(f"  K = {result.key_set}")
    print(f"  N = {result.not_null_set}")

    print("\n== §4: the equi-join set Q extracted from programs ==")
    for join in result.equijoins:
        sources = result.extraction.provenance[join]
        where = ", ".join(f"{p}#{i}" for p, i in sources)
        print(f"  {join!r}    (seen in {where})")

    print("\n== §6.1: IND-Discovery ==")
    for ind in result.inds:
        print(f"  {ind!r}")
    print(f"  new relations S = {result.ind_result.s_names}")

    print("\n== §6.2.1: LHS-Discovery ==")
    print(f"  LHS = {result.lhs_result.lhs}")
    print(f"  H   = {result.lhs_result.hidden}")

    print("\n== §6.2.2: RHS-Discovery ==")
    print(f"  F = {result.fds}")
    print(f"  H = {result.hidden}")

    print("\n== §7: Restruct — the 3NF schema ==")
    for relation in result.restructured.schema:
        print(f"  {relation!r}")
    print("  referential integrity constraints:")
    for ric in result.ric:
        print(f"    {ric!r}")

    print("\n== §7: Translate — the Figure-1 EER schema ==")
    print(render_text(result.eer))

    print("\n== costs ==")
    print(f"  extension queries: {result.extension_queries}")
    print(f"  expert decisions:  {result.expert_decisions}")

    dot_path = "figure1.dot"
    with open(dot_path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(result.eer, "Figure1"))
    print(f"\nGraphviz diagram written to {dot_path} "
          f"(render with: dot -Tpng {dot_path} -o figure1.png)")


if __name__ == "__main__":
    main()
