"""The full migration loop: legacy SQL in, normalized SQL out.

What a practitioner actually ships at the end of a reverse-engineering
project, demonstrated on the paper's example:

1. run the pipeline (schema + programs + expert answers);
2. write the audit trail (Markdown session report);
3. generate the migration script — ``CREATE TABLE`` statements for the
   recovered 3NF schema with the elicited referential integrity
   constraints as ``FOREIGN KEY`` clauses, plus the data as INSERTs;
4. prove the script is executable by replaying it through the library's
   own SQL engine and re-validating every constraint;
5. round-trip the conceptual schema: map the Figure-1 EER schema back
   to relational (forward engineering) and check it matches what
   Restruct produced.

Run:  python examples/migration.py
"""

from repro import Database, DBREPipeline, Executor, ScriptedExpert
from repro.core import session_report
from repro.dependencies.ind_inference import ind_satisfied
from repro.eer import eer_to_relational
from repro.storage.ddl import migration_script, schema_to_sql
from repro.workloads import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


def main() -> None:
    pipeline = DBREPipeline(
        build_paper_database(), ScriptedExpert(paper_expert_script())
    )
    result = pipeline.run(corpus=paper_program_corpus())
    print(f"pipeline: {result!r}")

    # -- the audit trail ------------------------------------------------
    report = session_report(result, pipeline.expert, title="Migration audit")
    print(f"session report: {len(report.splitlines())} lines of Markdown")

    # -- the migration script -------------------------------------------
    script = migration_script(result.restructured, result.ric)
    print("\n== migration script (head) ==")
    for line in script.splitlines()[:14]:
        print(f"  {line}")
    print(f"  ... ({len(script.splitlines())} lines total)")

    # -- executable proof -------------------------------------------------
    # FOREIGN KEY clauses are for the target DBMS; the engine replays the
    # DDL (without them) + data and re-checks every elicited constraint
    from repro.storage.ddl import inserts_to_sql

    replay = Database()
    Executor(replay).run_script(
        schema_to_sql(result.restructured.schema)
        + "\n"
        + inserts_to_sql(result.restructured)
    )
    replay.validate()
    violations = [
        ind for ind in result.ric if not ind_satisfied(replay, ind)
    ]
    print(f"\nreplayed into a fresh engine: {len(replay.schema)} relations, "
          f"{sum(len(t) for t in replay.tables())} rows")
    print(f"referential constraints violated after replay: {len(violations)}")
    assert not violations

    # -- conceptual round-trip --------------------------------------------
    forward_schema, forward_ric = eer_to_relational(result.eer)
    same_relations = (
        forward_schema.relation_names
        == result.restructured.schema.relation_names
    )
    same_ric = set(forward_ric) == set(result.ric)
    print("\nEER round-trip (Figure 1 -> relational):")
    print(f"  relations match: {same_relations}")
    print(f"  RIC matches:     {same_ric}")
    assert same_relations and same_ric


if __name__ == "__main__":
    main()
