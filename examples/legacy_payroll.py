"""Reverse-engineering a hand-written legacy payroll system.

A different application domain than the paper's example, built the way a
real legacy system would be: the SQL DDL and the data go through the
library's own SQL executor, the "application programs" are COBOL batch
jobs and SQL reports, and the expert answers combine an AutoExpert
policy with a small script for the domain decisions.

The payroll schema is denormalized: ``paycheck`` embeds the pay *grade*
data (``grade_label``, ``grade_base``) keyed by the non-key attribute
``grade_code`` — a classic transitive dependency introduced when the
grade table was folded into the checks "for performance".  Only the
``rate_card`` relation still references grades, and the batch jobs
navigate through it; that logical navigation is what the method reads.

Run:  python examples/legacy_payroll.py
"""

from repro import (
    AutoExpert,
    Database,
    DBREPipeline,
    Executor,
    ProgramCorpus,
    ScriptedExpert,
)
from repro.eer import render_text

DDL_AND_DATA = """
CREATE TABLE employee (
    badge INT PRIMARY KEY,
    name VARCHAR(40),
    hired DATE
);
CREATE TABLE rate_card (
    grade CHAR(2) PRIMARY KEY,
    multiplier NUMBER NOT NULL
);
CREATE TABLE paycheck (
    check_no INT PRIMARY KEY,
    badge INT NOT NULL,
    period CHAR(7) NOT NULL,
    grade_code CHAR(2),
    grade_label VARCHAR(20),
    grade_base NUMBER,
    overtime NUMBER
);
CREATE TABLE timesheet (
    sheet_no INT PRIMARY KEY,
    badge INT NOT NULL,
    week CHAR(7),
    hours NUMBER
);
INSERT INTO employee VALUES
    (100, 'Dupont', '1989-03-01'), (101, 'Martin', '1991-07-15'),
    (102, 'Bernard', '1994-01-20'), (103, 'Petit', '1990-11-05'),
    (104, 'Durand', '1993-06-30'), (105, 'Leroy', '1988-09-12');
INSERT INTO rate_card VALUES
    ('A1', 1.0), ('B2', 1.4), ('C3', 2.0), ('D4', 2.5);
INSERT INTO paycheck VALUES
    (1, 100, '1995-01', 'A1', 'junior', 1200, 50),
    (2, 101, '1995-01', 'A1', 'junior', 1200, 0),
    (3, 102, '1995-01', 'B2', 'senior', 2100, 120),
    (4, 100, '1995-02', 'B2', 'senior', 2100, 80),
    (5, 103, '1995-02', 'B2', 'senior', 2100, 0),
    (6, 104, '1995-02', 'C3', 'manager', 3000, 0),
    (7, 105, '1995-03', 'B2', 'senior', 2100, 60);
INSERT INTO timesheet VALUES
    (10, 100, '1995-W01', 39), (11, 100, '1995-W02', 41),
    (12, 101, '1995-W01', 39), (13, 102, '1995-W01', 35),
    (14, 103, '1995-W02', 39), (15, 104, '1995-W02', 42);
"""


def build_database() -> Database:
    database = Database()
    Executor(database).run_script(DDL_AND_DATA)
    database.validate()
    return database


def build_corpus() -> ProgramCorpus:
    corpus = ProgramCorpus()
    corpus.add_source(
        "batch/monthly_pay.cob",
        """
       IDENTIFICATION DIVISION.
       PROGRAM-ID. MONTHPAY.
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT name, grade_base INTO :name, :base
             FROM paycheck p, employee e
             WHERE p.badge = e.badge AND p.period = :period
           END-EXEC.
           EXEC SQL
             SELECT multiplier INTO :mult
             FROM rate_card r, paycheck p
             WHERE r.grade = p.grade_code AND p.check_no = :check
           END-EXEC.
        """,
    )
    corpus.add_source(
        "reports/hours_vs_pay.sql",
        """
        -- weekly hours for everyone that got a check
        SELECT t.hours FROM timesheet t
        WHERE t.badge IN (SELECT badge FROM paycheck);
        """,
    )
    corpus.add_source(
        "reports/activity.sql",
        """
        SELECT e.badge FROM employee e
        WHERE EXISTS (SELECT * FROM timesheet t WHERE t.badge = e.badge);
        -- grades actually used on checks
        SELECT grade FROM rate_card
        INTERSECT
        SELECT grade_code FROM paycheck;
        """,
    )
    return corpus


def main() -> None:
    database = build_database()
    corpus = build_corpus()

    # domain decisions: the badge identifiers do not need their own
    # relation (employee already exists); the split-off grade data is
    # named `grade`
    expert = ScriptedExpert(
        {
            "hidden:paycheck.{badge}": False,
            "hidden:timesheet.{badge}": False,
            "hidden:paycheck.{grade_code}": False,
            "name_fd:paycheck: grade_code -> grade_label, grade_base": "grade",
        },
        fallback=AutoExpert(force_threshold=0.9),
    )

    result = DBREPipeline(database, expert).run(corpus=corpus)

    print("== extracted equi-joins ==")
    for join in result.equijoins:
        print(f"  {join!r}")

    print("\n== elicited dependencies ==")
    for ind in result.inds:
        print(f"  {ind!r}")
    for fd in result.fds:
        print(f"  {fd!r}")

    print("\n== restructured schema ==")
    for relation in result.restructured.schema:
        print(f"  {relation!r}")
    print("  referential integrity constraints:")
    for ric in result.ric:
        print(f"    {ric!r}")

    print("\n== conceptual schema ==")
    print(render_text(result.eer))

    grade = result.restructured.schema.relation("grade")
    print(f"\nThe pay-grade relation was recovered: {grade!r}")
    for row in result.restructured.table("grade"):
        print(f"  {row!r}")


if __name__ == "__main__":
    main()
