"""S6 — extension backends: in-memory engine vs SQLite pushdown.

The paper assumes a live DBMS answers the counting queries; the seed
engine answers them from Python lists.  This bench runs the same
primitive workload — the counting queries S1's IND discovery would
issue, derived from the scenario's true join edges — on both backends
and reports per-primitive timings, then compares a full pipeline run on
the S5 scenario.  Both backends must return identical answers and issue
the same number of logical extension queries; only the wall time may
differ.
"""

import time


from benchmarks.conftest import report
from repro.backends import MemoryBackend, SQLiteBackend
from repro.core import DBREPipeline
from repro.workloads.scenario import ScenarioConfig, build_scenario

SIZES = [4, 8, 12]


def _scenario(n_entities, parent_rows=15):
    return build_scenario(
        ScenarioConfig(
            seed=300 + n_entities,
            n_entities=n_entities,
            n_one_to_many=n_entities - 1,
            n_many_to_many=1,
            merges=2,
            parent_rows=parent_rows,
        )
    )


def _primitive_workload(db, edges):
    """The S1 counting queries, grouped by primitive: (label, calls)."""
    count_distinct = []
    join_count = []
    inclusion = []
    for edge in edges:
        left = (edge.left_relation, edge.left_attrs)
        right = (edge.right_relation, edge.right_attrs)
        count_distinct.append(left)
        count_distinct.append(right)
        join_count.append((*left, *right))
        inclusion.append((*left, *right))
        inclusion.append((*right, *left))
    fds = [
        (relation.name, (relation.attribute_names[0],),
         tuple(relation.attribute_names[1:]))
        for relation in db.schema
        if len(relation.attribute_names) > 1
    ]
    return [
        ("count_distinct", db.count_distinct, count_distinct),
        ("join_count", db.join_count, join_count),
        ("fd_holds", db.fd_holds, fds),
        ("inclusion_holds", db.inclusion_holds, inclusion),
    ]


def _run_workload(db, edges):
    """One cold pass; returns {primitive: (seconds, calls, answers)}."""
    out = {}
    for label, method, calls in _primitive_workload(db, edges):
        start = time.perf_counter()
        answers = [method(*args) for args in calls]
        out[label] = (time.perf_counter() - start, len(calls), answers)
    return out


def test_s6_primitive_timings(benchmark):
    rows = []
    for n in SIZES:
        scenario = _scenario(n)
        edges = scenario.truth.join_edges
        memory_db = scenario.database.copy(backend=MemoryBackend())
        sqlite_db = scenario.database.copy(backend=SQLiteBackend())

        memory = _run_workload(memory_db, edges)
        pushdown = _run_workload(sqlite_db, edges)
        for label in memory:
            mem_s, calls, mem_answers = memory[label]
            sql_s, _, sql_answers = pushdown[label]
            assert mem_answers == sql_answers, label  # same primitive results
            rows.append(
                [
                    n,
                    label,
                    calls,
                    f"{mem_s * 1000:.1f} ms",
                    f"{sql_s * 1000:.1f} ms",
                    f"{sql_s / max(mem_s, 1e-9):.1f}x",
                ]
            )
        sqlite_db.close()
    report(
        "S6: primitive timings, one pass, each backend's own caching in effect",
        ["entities", "primitive", "queries", "memory", "sqlite", "sqlite/memory"],
        rows,
    )

    # time one cold pushdown pass on the largest scenario; the setup
    # clears the result/statement memos so every round hits the engine
    scenario = _scenario(SIZES[-1])
    db = scenario.database.copy(backend=SQLiteBackend())

    def cold():
        db.backend._results.clear()
        db.backend._statements.clear()
        _run_workload(db, scenario.truth.join_edges)

    benchmark(cold)
    db.close()


def test_s6_pipeline_on_both_backends(benchmark):
    """The S5 scenario end to end: identical artifacts, same query count."""
    rows = []
    results = {}
    for label, factory in (("memory", MemoryBackend), ("sqlite", SQLiteBackend)):
        scenario = _scenario(7, parent_rows=40)
        db = scenario.database.copy(backend=factory())
        start = time.perf_counter()
        result = DBREPipeline(db, scenario.expert).run(corpus=scenario.corpus)
        elapsed = time.perf_counter() - start
        results[label] = result
        rows.append(
            [
                label,
                result.extension_queries,
                result.expert_decisions,
                len(result.ric),
                f"{elapsed * 1000:.0f} ms",
            ]
        )
    report(
        "S6: full pipeline, S5 scenario, by backend",
        ["backend", "extension queries", "expert decisions", "|RIC|", "wall time"],
        rows,
    )

    memory, sqlite = results["memory"], results["sqlite"]
    # where the queries run never changes what the method produces
    assert sqlite.extension_queries == memory.extension_queries
    assert set(sqlite.ric) == set(memory.ric)
    assert {
        r.name: tuple(r.attribute_names) for r in sqlite.restructured.schema
    } == {
        r.name: tuple(r.attribute_names) for r in memory.restructured.schema
    }

    scenario = _scenario(7, parent_rows=40)
    db = scenario.database.copy(backend=SQLiteBackend())
    benchmark(
        lambda: DBREPipeline(db.copy(), scenario.expert).run(
            corpus=scenario.corpus
        )
    )
