"""S4 — the interactive cost: expert decisions vs data quality.

The method is interactive by design ("the expert user is involved only
for validation purposes"); this bench counts those involvements.  Clean
extensions need few answers (validations of found FDs, hidden-object
confirmations); every corrupted foreign-key path adds NEI and
enforcement questions.  The paper example itself needs about a dozen
answers end to end — the bench prints the exact budget by question kind.
"""


from benchmarks.conftest import report
from repro.core import DBREPipeline, ScriptedExpert
from repro.evaluation.counters import cost_report
from repro.relational.database import QueryCounter
from repro.workloads.paper_example import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

BASE = dict(n_entities=8, n_one_to_many=7, merges=2, parent_rows=20)


def test_s4_paper_example_budget(benchmark):
    def run():
        pipeline = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        )
        return pipeline, pipeline.run(corpus=paper_program_corpus())

    pipeline, result = benchmark(run)
    by_kind = {}
    for interaction in pipeline.expert.log:
        by_kind[interaction.kind] = by_kind.get(interaction.kind, 0) + 1
    report(
        "S4: expert budget on the paper's example",
        ["question kind", "count"],
        sorted(by_kind.items()),
    )
    assert by_kind["nei"] == 1               # the Assignment/Department NEI
    assert by_kind["hidden"] == 3            # HEmployee.no + the 2 given up
    assert result.expert_decisions <= 15


def test_s4_decisions_vs_corruption(benchmark):
    rows = []
    counts = []
    for rate in (0.0, 0.5, 1.0):
        scenario = build_scenario(
            ScenarioConfig(
                seed=700, corruption_ind_rate=rate,
                corruption_row_rate=0.12, **BASE,
            )
        )
        pipeline = DBREPipeline(scenario.database, scenario.expert)
        result = pipeline.run(corpus=scenario.corpus)
        costs = cost_report(QueryCounter(), pipeline.expert)
        counts.append(result.expert_decisions)
        rows.append(
            [
                f"{rate:.2f}",
                len(scenario.corruption.corrupted_inds),
                costs.expert_by_kind.get("nei", 0),
                costs.expert_by_kind.get("enforce", 0),
                costs.expert_by_kind.get("validate", 0),
                costs.expert_by_kind.get("hidden", 0),
                result.expert_decisions,
                result.extension_queries,
            ]
        )
    report(
        "S4: interactive cost vs corruption rate (oracle expert)",
        [
            "corruption", "INDs corrupted", "NEI", "enforce",
            "validate", "hidden", "total decisions", "extension queries",
        ],
        rows,
    )
    # dirtier data means more questions, never fewer
    assert counts[0] <= counts[-1]

    scenario = build_scenario(
        ScenarioConfig(seed=700, corruption_ind_rate=1.0,
                       corruption_row_rate=0.12, **BASE)
    )
    pipeline = DBREPipeline(scenario.database, scenario.expert)
    benchmark(pipeline.run, corpus=scenario.corpus)
