"""Shared fixtures and reporting helpers for the benchmark harness.

Every E-series benchmark regenerates one artifact of the paper's worked
example (§5-§7 / Figure 1), times the step with pytest-benchmark, prints
a paper-vs-measured table, and *asserts* the match — a failing
reproduction fails the bench.  The S-series benchmarks sweep synthetic
scenarios and print the series EXPERIMENTS.md records.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
comparison tables inline).
"""

from __future__ import annotations

import pytest

from repro.core import DBREPipeline, ScriptedExpert
from repro.util.text import format_table
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


@pytest.fixture
def paper_db():
    return build_paper_database()


@pytest.fixture
def paper_corpus():
    return paper_program_corpus()


@pytest.fixture
def paper_expert():
    return ScriptedExpert(paper_expert_script())


@pytest.fixture
def expected():
    return PAPER_EXPECTED


@pytest.fixture(scope="module")
def paper_run():
    """One full pipeline run shared by downstream-stage benches."""
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    return DBREPipeline(db, expert).run(corpus=paper_program_corpus())


def report(title: str, headers, rows) -> None:
    """Print one paper-vs-measured table."""
    print(f"\n--- {title} ---")
    print(format_table(headers, rows))


def check_rows(title: str, pairs) -> None:
    """Print and assert a list of (label, paper value, measured value)."""
    rows = []
    ok = True
    for label, paper_value, measured in pairs:
        match = "yes" if paper_value == measured else "NO"
        ok = ok and paper_value == measured
        rows.append([label, paper_value, measured, match])
    report(title, ["artifact", "paper", "measured", "match"], rows)
    assert ok, f"{title}: mismatch against the paper"
