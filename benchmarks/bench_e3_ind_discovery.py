"""E3 — §6.1's IND set and the conceptualized intersection S.

Paper artifacts: the six inclusion dependencies

    HEmployee[no]    << Person[id]
    Department[emp]  << HEmployee[no]
    Assignment[emp]  << HEmployee[no]
    Ass-Dept[dep]    << Assignment[dep]
    Ass-Dept[dep]    << Department[dep]
    Department[proj] << Assignment[proj]

with S = {Ass-Dept(dep)}, plus the two count examples the paper narrates:
||Person[id]|| > ||HEmployee[no]|| with full inclusion (2200/1550/1550,
scaled to 22/15/15) and the Assignment/Department NEI (45/40/30, scaled
to 9/8/6).
"""

from benchmarks.conftest import check_rows, report
from repro.core import INDDiscovery, ScriptedExpert
from repro.programs.equijoin import EquiJoin
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)


def _run():
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    return INDDiscovery(db, expert).run(paper_equijoins())


def test_e3_ind_discovery(benchmark, expected):
    result = benchmark(_run)
    check_rows(
        "E3: IND-Discovery output",
        [
            ("|IND|", len(expected.inds), len(result.inds)),
            ("IND", set(expected.inds), set(result.inds)),
            ("S", list(expected.s_relations), result.s_names),
        ],
    )

    by_join = {o.join: o for o in result.outcomes}
    inclusion = by_join[EquiJoin("HEmployee", ("no",), "Person", ("id",))]
    nei = by_join[EquiJoin("Assignment", ("dep",), "Department", ("dep",))]
    report(
        "E3: the paper's two narrated count shapes (scaled /100, /5)",
        ["case", "paper (N_k, N_l, N_kl)", "measured"],
        [
            [
                "HEmployee >< Person",
                "(1550, 2200, 1550) -> inclusion",
                f"({inclusion.n_left}, {inclusion.n_right}, "
                f"{inclusion.n_common}) -> {inclusion.case}",
            ],
            [
                "Assignment >< Department",
                "(45, 40, 30) -> NEI, conceptualized",
                f"({nei.n_left}, {nei.n_right}, {nei.n_common}) -> "
                f"{nei.case}, {nei.decision}d",
            ],
        ],
    )
    assert inclusion.case == "inclusion"
    assert (inclusion.n_left, inclusion.n_right) == (15, 22)
    assert nei.case == "nei" and nei.decision == "conceptualize"
    assert (nei.n_left, nei.n_right, nei.n_common) == (9, 8, 6)
