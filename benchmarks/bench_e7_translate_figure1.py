"""E7 — Figure 1: the final EER schema.

Paper artifact (Figure 1, read with the §7 Translate rules):

- entity-types: Person, Employee, Manager, Project, Department,
  Other-Dept, Ass-Dept;
- is-a links: Employee -> Person, Manager -> Employee,
  Ass-Dept -> Other-Dept, Ass-Dept -> Department;
- weak entity-type: HEmployee, identified by Employee (discriminator
  ``date``);
- relationship-types: the ternary many-to-many Assignment among
  Employee, Other-Dept and Project carrying ``date``, and the two binary
  relationship-types Department--Manager and Manager--Project.
"""

from benchmarks.conftest import check_rows
from repro.core import Translate
from repro.eer import render_text


def test_e7_figure1(benchmark, paper_run):
    restructured = paper_run.restructured
    translator = Translate(restructured.schema)

    eer = benchmark(translator.run, paper_run.ric)

    strong = {e.name for e in eer.entities if not e.weak}
    weak = [e for e in eer.entities if e.weak]
    isa = {(l.sub, l.sup) for l in eer.isa_links}
    ternary = eer.relationship("Assignment")
    binary_pairs = {
        frozenset(r.entity_names) for r in eer.relationships if r.arity == 2
    }
    check_rows(
        "E7: Figure 1 structure",
        [
            (
                "entity-types",
                {
                    "Person", "Employee", "Manager", "Project",
                    "Department", "Other-Dept", "Ass-Dept",
                },
                strong,
            ),
            ("weak entity-types", ["HEmployee"], [e.name for e in weak]),
            ("HEmployee owner", ("Employee",), weak[0].owners),
            (
                "is-a links",
                {
                    ("Employee", "Person"),
                    ("Manager", "Employee"),
                    ("Ass-Dept", "Other-Dept"),
                    ("Ass-Dept", "Department"),
                },
                isa,
            ),
            (
                "Assignment participants",
                {"Employee", "Other-Dept", "Project"},
                set(ternary.entity_names),
            ),
            ("Assignment attribute", ("date",), ternary.attributes),
            ("Assignment is M:N", True, ternary.is_many_to_many()),
            (
                "binary relationship-types",
                {
                    frozenset({"Department", "Manager"}),
                    frozenset({"Manager", "Project"}),
                },
                binary_pairs,
            ),
        ],
    )
    print("\n--- E7: the reproduced Figure 1 ---")
    print(render_text(eer))
