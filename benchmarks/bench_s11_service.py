"""S11 — process-parallel probe sharding and the job service.

Two claims pay for the ``repro.service`` layer:

1. **Sharding is free of observable effect** — a pipeline run under
   ``engine="process"`` produces bit-identical output to the serial
   run (always asserted, at any core count), and on a machine with at
   least 4 cores the 4-worker run must finish the probe stream in **at
   most half** the serial wall clock.  On smaller machines the speedup
   assertion is skipped — fork/IPC overhead on a single core proves
   nothing either way — but the identity assertion still runs.
2. **The job cache collapses duplicate work** — resubmitting the same
   (database fingerprint, workload, config) triple must be answered
   from the ledger orders of magnitude faster than the original run,
   sharing the original result object outright.

Like S7/S10 this file runs as a plain smoke test with
``time.perf_counter`` loops, not the pytest-benchmark fixture.
"""

import os
import time

from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.service.jobs import JobManager
from repro.workloads.scenario import ScenarioConfig, build_scenario

#: the 4-worker speedup bar, enforced only where the hardware can pay
SPEEDUP_FLOOR = 2.0

#: the s3/s11 regression-gate scenario at quick scale
SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)

ROUNDS = 3


def _observable(result):
    return (
        [repr(i) for i in result.inds],
        [repr(f) for f in result.fds],
        [repr(r) for r in result.ric],
        result.extension_queries,
        result.expert_decisions,
    )


def _run(engine, workers=0):
    scenario = build_scenario(SCENARIO)
    pipeline = DBREPipeline(
        scenario.database, scenario.expert,
        engine=engine, engine_workers=workers,
    )
    start = time.perf_counter()
    result = pipeline.run(corpus=scenario.corpus)
    wall = time.perf_counter() - start
    return result, wall


def _best_wall(engine, workers=0, rounds=ROUNDS):
    return min(_run(engine, workers)[1] for _ in range(rounds))


def test_s11_process_sharding_is_bit_identical():
    """Process strategy: same observable output, healthy pool."""
    serial, _ = _run("serial")
    rows = []
    for workers in (1, 2, 4):
        process, wall = _run("process", workers=workers)
        assert _observable(process) == _observable(serial)
        stats = process.engine_stats
        assert stats.pool_fallbacks == 0
        assert stats.process_chunks > 0
        rows.append([
            workers, stats.logical_probes, stats.process_chunks,
            f"{wall * 1000:.1f}",
        ])
    report(
        "S11 — process sharding, identical output at every width",
        ["workers", "logical probes", "chunks", "wall ms"],
        rows,
    )


def test_s11_four_workers_halve_the_wall_clock():
    """>= 2x over serial at 4 workers — where 4 cores exist."""
    serial_wall = _best_wall("serial")
    process_wall = _best_wall("process", workers=4)
    speedup = serial_wall / process_wall if process_wall else float("inf")
    cores = os.cpu_count() or 1
    report(
        f"S11 — wall clock, serial vs 4 workers (best of {ROUNDS}, "
        f"{cores} cores)",
        ["engine", "wall ms", "speedup"],
        [
            ["serial", f"{serial_wall * 1000:.1f}", "1.0x"],
            ["process x4", f"{process_wall * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    if cores >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4 workers managed only {speedup:.2f}x over serial "
            f"(floor {SPEEDUP_FLOOR}x on {cores} cores)"
        )


def test_s11_job_cache_answers_duplicates_instantly():
    """The ledger serves a duplicate submission without re-running."""
    scenario = build_scenario(SCENARIO)
    twin = build_scenario(SCENARIO)
    with JobManager(runners=1) as manager:
        first = manager.submit(scenario.database, corpus=scenario.corpus,
                               config={"expert": scenario.expert})
        start = time.perf_counter()
        result = manager.result(first.id, timeout=120)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        second = manager.submit(twin.database, corpus=twin.corpus,
                                config={"expert": twin.expert})
        warm = time.perf_counter() - start

        assert second.cached
        assert manager.result(second.id) is result
    report(
        "S11 — duplicate submission, cold run vs cache hit",
        ["path", "wall ms"],
        [
            ["cold run", f"{cold * 1000:.1f}"],
            ["cache hit", f"{warm * 1000:.2f}"],
        ],
    )
    assert warm < cold
