"""S1 — query-guided IND discovery vs exhaustive pairwise testing.

The paper's thesis: "the equi-join analysis focuses on relevant
attributes enforcing the efficiency of the inclusion dependencies
elicitation".  This bench quantifies it on synthetic schemas of growing
size: the method tests exactly |Q| candidates (3 counting queries each),
the exhaustive baseline tests every type-compatible attribute pair.

Expected shape (recorded in EXPERIMENTS.md): the exhaustive candidate
count grows quadratically with the schema while |Q| grows with the
number of *relationships actually used by programs* — two orders of
magnitude apart already at ~10 relations.  Both discover every true
dependency on clean data; the exhaustive baseline additionally reports
coincidental inclusions no program ever navigates.
"""


from benchmarks.conftest import report
from repro.baselines import ExhaustiveINDBaseline
from repro.core import INDDiscovery
from repro.evaluation.metrics import score_inds
from repro.workloads.scenario import ScenarioConfig, build_scenario

SIZES = [4, 8, 12, 16]


def _scenario(n_entities):
    return build_scenario(
        ScenarioConfig(
            seed=300 + n_entities,
            n_entities=n_entities,
            n_one_to_many=n_entities - 1,
            n_many_to_many=1,
            merges=2,
            parent_rows=15,
        )
    )


def test_s1_candidate_space_sweep(benchmark):
    rows = []
    last = None
    for n in SIZES:
        scenario = _scenario(n)
        method_candidates = len(scenario.truth.join_edges)
        baseline = ExhaustiveINDBaseline(scenario.database)
        exhaustive_candidates = baseline.candidate_count()

        discovery = INDDiscovery(scenario.database, scenario.expert)
        method_result = discovery.run(scenario.truth.join_edges)
        exhaustive_result = baseline.run()

        method_pr = score_inds(method_result.inds, scenario.truth.true_inds)
        # exhaustive finds the true INDs too, drowned in coincidences
        exhaustive_pr = score_inds(
            exhaustive_result.inds, scenario.truth.true_inds
        )
        rows.append(
            [
                n,
                len(scenario.database.schema),
                method_candidates,
                exhaustive_candidates,
                f"{exhaustive_candidates / max(1, method_candidates):.0f}x",
                f"{method_pr.recall:.2f}",
                f"{exhaustive_pr.recall:.2f}",
                len(exhaustive_result.inds) - len(method_result.inds),
            ]
        )
        assert method_pr.recall == 1.0
        assert exhaustive_pr.recall == 1.0
        assert exhaustive_candidates > 10 * method_candidates
        last = scenario

    report(
        "S1: candidate space, query-guided vs exhaustive",
        [
            "entities", "relations", "|Q| (method)", "pairs (exhaustive)",
            "ratio", "recall (method)", "recall (exhaustive)",
            "extra INDs reported by exhaustive",
        ],
        rows,
    )

    # time the method on the largest scenario
    discovery = INDDiscovery(last.database, last.expert)
    benchmark(discovery.run, last.truth.join_edges)


def test_s1_exhaustive_baseline_timing(benchmark):
    scenario = _scenario(SIZES[-1])
    baseline = ExhaustiveINDBaseline(scenario.database)
    result = benchmark(lambda: baseline.run())
    assert result.inds
