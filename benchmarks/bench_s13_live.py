"""S13 — live-telemetry overhead and stream completeness.

Three claims pay for the ``repro.obs.live`` bus:

1. **No subscriber, no cost** — a tracer that never attached a bus
   publishes nothing: every hot-path hook is a single ``is None`` test,
   so ``live_bus`` stays ``None`` after a full run (asserted
   structurally, at any speed), and the wall clock of a run with the
   hooks compiled in stays within noise of the pre-bus figure.  The
   wall-clock half of the claim is enforced by the ``s13-live-head``
   latency entry in the regression gate (calibration units, ≤ 2x of a
   baseline recorded from the same code path), not by a flaky inline
   ratio; here we print the measured delta for the record.
2. **A watcher sees everything** — with one subscriber attached from
   submit, the stream carries every phase boundary of the run, at
   least one progress tick per discovery phase, and the terminal
   record, all in one monotonic sequence.
3. **A slow watcher never stalls the run** — a bounded subscription
   keeps the publishing side non-blocking: the run's wall clock with a
   never-drained maxsize-8 subscriber stays within noise of the
   drained-watcher run, the excess is counted, and the gap is
   recoverable by replay.

Like S7/S10/S11 this file runs as a plain smoke test with
``time.perf_counter`` loops, not the pytest-benchmark fixture.
"""

import time

from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.obs import Tracer
from repro.workloads.scenario import ScenarioConfig, build_scenario

#: the s3/s13 regression-gate scenario at quick scale
SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)

ROUNDS = 3

PHASES = (
    "IND-Discovery", "LHS-Discovery", "RHS-Discovery", "Restruct", "Translate",
)


def _run(subscribe=False, maxsize=0):
    scenario = build_scenario(SCENARIO)
    tracer = Tracer()
    subscription = tracer.subscribe(maxsize=maxsize) if subscribe else None
    pipeline = DBREPipeline(scenario.database, scenario.expert, tracer=tracer)
    start = time.perf_counter()
    pipeline.run(corpus=scenario.corpus)
    wall = time.perf_counter() - start
    return tracer, subscription, wall


def _best_wall(subscribe=False, maxsize=0, rounds=ROUNDS):
    return min(_run(subscribe, maxsize)[2] for _ in range(rounds))


def test_s13_no_subscriber_publishes_nothing():
    """The hot path stays a None test: no bus, no records, ever."""
    tracer, _, wall = _run(subscribe=False)
    assert tracer.live_bus is None, (
        "a run without subscribers attached a live bus — the zero-"
        "overhead claim is structurally broken"
    )
    report(
        "S13 — no-subscriber run (bus never attached)",
        ["observable", "value"],
        [
            ["live_bus", "None"],
            ["wall ms", f"{wall * 1000:.1f}"],
        ],
    )


def test_s13_overhead_with_and_without_a_watcher():
    """Wall clocks side by side; the hard gate rides the regression head."""
    quiet = _best_wall(subscribe=False)
    watched = _best_wall(subscribe=True)
    ratio = watched / quiet if quiet else float("inf")
    report(
        f"S13 — wall clock, no subscriber vs one watcher (best of {ROUNDS})",
        ["mode", "wall ms", "ratio"],
        [
            ["no subscriber", f"{quiet * 1000:.1f}", "1.00x"],
            ["one watcher", f"{watched * 1000:.1f}", f"{ratio:.2f}x"],
        ],
    )
    # generous inline bound — the calibrated ≤ 2x bar lives in
    # benchmarks/regression.py under the s13-live-head latency entry
    assert ratio < 5.0, (
        f"a single live watcher cost {ratio:.2f}x wall clock — "
        f"publish has left the fast path"
    )


def test_s13_watcher_sees_every_phase_and_the_terminus():
    """One subscriber, full stream: boundaries, progress, monotonic seq."""
    tracer, subscription, _ = _run(subscribe=True)
    records = subscription.drain()
    assert subscription.dropped == 0
    sequences = [r["seq"] for r in records]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == len(sequences)
    # a direct run's terminus is the pipeline span closing (the job
    # service adds its own ``end`` sentinel on top)
    assert records[-1]["type"] == "span-close"
    assert records[-1]["name"] == "pipeline"
    opens = [r["name"] for r in records
             if r["type"] == "span-open" and r.get("kind") == "phase"]
    closes = [r["name"] for r in records
              if r["type"] == "span-close" and r.get("kind") == "phase"]
    assert opens == list(PHASES)
    assert closes == list(PHASES)
    progress = {}
    for record in records:
        if record["type"] == "progress":
            progress[record.get("phase")] = progress.get(
                record.get("phase"), 0
            ) + 1
    for phase in ("IND-Discovery", "LHS-Discovery", "RHS-Discovery"):
        assert progress.get(phase, 0) >= 1, f"no progress tick in {phase}"
    counts = {}
    for record in records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    report(
        "S13 — one watcher, stream census",
        ["event type", "records"],
        sorted(counts.items()),
    )


def test_s13_slow_watcher_never_stalls_the_run():
    """A bounded never-drained subscription drops, counts, and replays."""
    drained_wall = _best_wall(subscribe=True)
    tracer, slow, stalled_wall = _run(subscribe=True, maxsize=8)
    bus = tracer.live_bus
    kept = slow.drain()
    assert len(kept) == 8
    assert slow.dropped == bus.last_seq - 8
    # the history is complete: replay recovers everything the queue shed
    recovered = bus.subscribe(replay_from=kept[-1]["seq"]).drain()
    assert recovered[-1]["seq"] == bus.last_seq
    ratio = stalled_wall / drained_wall if drained_wall else float("inf")
    report(
        "S13 — slow watcher (maxsize 8, never drained)",
        ["observable", "value"],
        [
            ["records kept", len(kept)],
            ["records dropped", slow.dropped],
            ["recovered by replay", len(recovered)],
            ["wall vs drained watcher", f"{ratio:.2f}x"],
        ],
    )
    assert ratio < 5.0, (
        f"a stalled subscriber cost {ratio:.2f}x wall clock — "
        f"publish is blocking on a full queue"
    )
