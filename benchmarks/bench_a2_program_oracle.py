"""A2 — §8's perspective: programs as oracles for dependency mining.

Exhaustive FD discovery on the paper's database returns dozens of
dependencies; only two are design semantics.  Ranking the output by
navigation evidence (how often programs join through each determinant)
must surface those two at the top and push integrity-only dependencies
like ``zip-code -> state`` into the zero-evidence partition.

The same triage on IND candidates: the exhaustive pairwise search finds
many coincidental inclusions; pair-level navigation evidence isolates
exactly the ones the method would elicit.
"""

import pytest

from benchmarks.conftest import report
from repro.baselines import ExhaustiveINDBaseline, NaiveFDBaseline
from repro.mining import NavigationProfile, rank_fds, rank_inds, relevance_partition
from repro.programs.extractor import extract_equijoins
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_program_corpus,
)


@pytest.fixture(scope="module")
def profile_and_db():
    db = build_paper_database()
    extraction = extract_equijoins(paper_program_corpus(), db.schema)
    return NavigationProfile.from_report(extraction), db


def test_a2_fd_triage(benchmark, profile_and_db):
    profile, db = profile_and_db
    lattice = NaiveFDBaseline(db, max_lhs_size=1).run()
    candidates = lattice.non_key_fds(db)

    ranked = benchmark(rank_fds, candidates, profile)
    navigated, unnavigated = relevance_partition(ranked)

    true_atoms = {
        (fd.relation, tuple(sorted(fd.lhs))) for fd in PAPER_EXPECTED.fds
    }
    ranks_of_true = [
        r.rank
        for r in ranked
        if (r.dependency.relation, tuple(sorted(r.dependency.lhs))) in true_atoms
    ]
    rows = [
        ["lattice FDs to triage", len(candidates)],
        ["navigated partition", len(navigated)],
        ["zero-evidence partition", len(unnavigated)],
        ["worst rank of a true FD", max(ranks_of_true)],
        ["zip-code -> state partition",
         "zero-evidence" if all(
             "zip-code" not in r.dependency.lhs for r in navigated
         ) else "navigated"],
    ]
    report("A2: FD triage by program evidence (paper example)", ["quantity", "value"], rows)

    # the true dependencies rank within the navigated partition
    assert max(ranks_of_true) <= len(navigated)
    # and the triage removes most of the noise
    assert len(navigated) <= len(candidates) // 2
    assert all("zip-code" not in r.dependency.lhs for r in navigated)


def test_a2_ind_triage(benchmark, profile_and_db):
    profile, db = profile_and_db
    exhaustive = ExhaustiveINDBaseline(db).run()

    ranked = benchmark(rank_inds, exhaustive.inds, profile)
    navigated, unnavigated = relevance_partition(ranked)

    # every method-elicited IND over original relations is navigated
    method_inds = [
        ind for ind in PAPER_EXPECTED.inds if ind.lhs_relation != "Ass-Dept"
    ]
    navigated_deps = {r.dependency for r in navigated}
    rows = [
        ["exhaustive INDs found", len(exhaustive.inds)],
        ["navigated partition", len(navigated)],
        ["zero-evidence partition", len(unnavigated)],
        ["method INDs inside navigated",
         sum(1 for i in method_inds if i in navigated_deps)],
    ]
    report("A2: IND triage by program evidence (paper example)", ["quantity", "value"], rows)

    for ind in method_inds:
        assert ind in navigated_deps, ind
