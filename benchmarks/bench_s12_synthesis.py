"""S12 — the certified synthesis engine: cost and coverage.

Three claims, measured:

1. **Restruct certification is free of extension queries** — the chase,
   the preservation split and the normal-form diagnosis are pure schema
   computation, so a certified run asks the database exactly what an
   uncertified one would (the S12 head of ``regression.py`` gates this
   per primitive);
2. **synthesis scales** — Bernstein 3NF and the BCNF analysis over
   growing FD chains, with wall-clock per universe size and the
   certificate re-verification cost measured separately;
3. **every certificate verifies** — on the paper example and on an
   S3-like synthetic scenario, re-checking from scratch accepts every
   emitted certificate.

Like S7/S8, plain ``time.perf_counter`` min-of-N loops, so CI can run
this file as a smoke test without the pytest-benchmark fixture.
"""

import time

from benchmarks.conftest import report
from repro.core import DBREPipeline, ScriptedExpert
from repro.dependencies.fd import FunctionalDependency
from repro.normalization import normalize, verify_certificate
from repro.workloads.paper_example import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

ROUNDS = 3

SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)


def _chain(n):
    universe = [f"a{i}" for i in range(n)]
    fds = [
        FunctionalDependency("", (f"a{i}",), (f"a{i + 1}",))
        for i in range(n - 1)
    ]
    return universe, fds


def _timed(fn, rounds=ROUNDS):
    best, value = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return value, best


def test_s12_synthesis_scales_with_chain_length():
    """3NF synthesis and BCNF analysis over a0 -> a1 -> ... chains."""
    rows = []
    for n in (4, 8, 12):
        universe, fds = _chain(n)
        result3, ms3 = _timed(lambda: normalize(universe, fds, "3nf"))
        resultb, msb = _timed(lambda: normalize(universe, fds, "bcnf"))
        _, verify_ms = _timed(
            lambda: verify_certificate(result3.certificate)
        )
        for result in (result3, resultb):
            assert result.certificate.lossless
            assert verify_certificate(result.certificate) == []
        rows.append([
            n,
            len(result3.relations),
            f"{ms3:.2f}",
            len(resultb.relations),
            f"{msb:.2f}",
            f"{verify_ms:.2f}",
        ])
    report(
        "S12 — synthesis scaling (FD chains)",
        ["attrs", "3NF rels", "3NF ms", "BCNF rels", "BCNF ms", "verify ms"],
        rows,
    )


def test_s12_paper_restruct_is_certified():
    """The paper run's two splits carry verifiable certificates."""
    def run():
        db = build_paper_database()
        pipeline = DBREPipeline(db, ScriptedExpert(paper_expert_script()))
        return pipeline.run(corpus=paper_program_corpus())

    result, wall_ms = _timed(run, rounds=1)
    certificates = result.certificates
    assert sorted(c.source for c in certificates) == [
        "Assignment", "Department",
    ]
    _, verify_ms = _timed(
        lambda: [verify_certificate(c) for c in certificates]
    )
    rows = []
    for certificate in certificates:
        violations = verify_certificate(certificate)
        assert violations == []
        assert certificate.lossless and certificate.lost == ()
        rows.append([
            certificate.source,
            len(certificate.relations),
            "lossless" if certificate.lossless else "LOSSY",
            len(certificate.preserved),
            len(violations),
        ])
    report(
        f"S12 — paper restruct certificates "
        f"(pipeline {wall_ms:.0f} ms, re-verify {verify_ms:.2f} ms)",
        ["source", "fragments", "chase", "preserved", "violations"],
        rows,
    )


def test_s12_scenario_certificates_all_verify():
    """An S3-like synthetic run: every FD split is certified and valid."""
    scenario = build_scenario(SCENARIO)
    pipeline = DBREPipeline(scenario.database.copy(), scenario.expert)
    result = pipeline.run(corpus=scenario.corpus)
    fd_splits = [a for a in result.restruct_result.added if a.kind == "fd"]
    assert {c.source for c in result.certificates} == {
        a.source for a in fd_splits
    }
    verified = sum(
        1 for c in result.certificates if verify_certificate(c) == []
    )
    assert verified == len(result.certificates)
    report(
        "S12 — synthetic scenario certification",
        ["certificates", "verified", "lossless", "repaired"],
        [[
            len(result.certificates),
            verified,
            sum(1 for c in result.certificates if c.lossless),
            sum(1 for c in result.certificates if c.repaired),
        ]],
    )
