#!/usr/bin/env python
"""S-series benchmark-regression harness — the CI gate.

Runs the heads of the S-series benchmarks (a small IND-scalability
scenario, an end-to-end scenario, the same end-to-end scenario on the
SQLite pushdown backend and through the batched engine, once more with
the provenance ledger enabled, and once more with the hotspot-profile
view computed after the run) under tracing, and emits one JSON
document
per run with per-primitive query counts and latencies.  Compared
against ``benchmarks/BENCH_baseline.json``, the harness **fails (exit
1) when any head regresses by more than ``--max-ratio`` (default 2x)**
in either

- **query count** per primitive — deterministic, so a regression means
  an algorithmic change made the method chattier; or
- **latency** per primitive — measured in *calibration units* (the
  run's wall time divided by the time of a fixed pure-Python workload
  measured in the same process), so baselines recorded on one machine
  gate runs on another.  Primitives whose baseline cost is below the
  noise floor are not latency-gated.

Usage::

    PYTHONPATH=src python benchmarks/regression.py --quick \
        --output bench-metrics.json            # compare + emit metrics
    PYTHONPATH=src python benchmarks/regression.py --write-baseline --quick

A gate failure is *attributed*, not just reported: for every failing
head the harness prints a per-primitive / per-phase table (queries,
latency units, cache hit-rates, rows scanned, inclusive vs. self time
— baseline → current, worst delta first), so the violation names the
phase, primitive or cache that regressed.  Every run also appends one
``repro/bench-history@1`` record to ``benchmarks/BENCH_history.jsonl``
(``--history`` / ``--no-history``), persisting the perf trajectory.

The baseline file stores one entry per mode (``quick``/``full``); a run
only gates against the matching mode.  CI runs ``--quick`` and uploads
the metrics JSON as an artifact (see ``.github/workflows/ci.yml`` and
``docs/OBSERVABILITY.md``).

Exit codes: **0** gate passed (or skipped / baseline written), **1**
at least one head regressed past the ratio, **3** the current run
produced a head the baseline does not know — a new bench head landed
without ``--write-baseline``, so it would ride along ungated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from datetime import datetime, timezone

from repro.backends import MemoryBackend, PagedBackend, SQLiteBackend
from repro.core import DBREPipeline
from repro.obs import Tracer, metrics_summary, profile_summary
from repro.util.text import format_table
from repro.workloads.scenario import ScenarioConfig, build_scenario

FORMAT = "repro/bench@1"
BASELINE_FORMAT = "repro/bench-baseline@1"
HISTORY_FORMAT = "repro/bench-history@1"
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")
DEFAULT_HISTORY = os.path.join(os.path.dirname(__file__), "BENCH_history.jsonl")

#: latency gating ignores primitives cheaper than this many calibration
#: units in the baseline — they are dominated by timer noise
LATENCY_FLOOR_UNITS = 0.05

#: exit code when the run produces heads the baseline lacks — distinct
#: from 1 (regression) so CI can say "re-record the baseline", not "perf"
EXIT_UNGUARDED_HEADS = 3


def _head_configs(quick: bool) -> List[Dict[str, Any]]:
    """The S-series heads: (name, scenario knobs, backend factory)."""
    scale = 0 if quick else 2
    return [
        {
            "name": "s1-ind-head",
            "config": ScenarioConfig(
                seed=300,
                n_entities=4 + scale,
                n_one_to_many=3 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=15 if quick else 40,
            ),
            "backend": MemoryBackend,
        },
        {
            "name": "s3-end-to-end-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
        },
        {
            "name": "s6-sqlite-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": SQLiteBackend,
        },
        # the same end-to-end heads through the batched engine: the
        # logical query stream (and so every gated figure) must match
        # the serial heads; "engine" extras record the physical savings
        # the s3 head with the provenance ledger enabled: queries are
        # gated (the ledger must stay at zero extra extension queries)
        # and its latency entry tracks the bookkeeping overhead;
        # "provenance" extras record the lineage DAG's size
        {
            "name": "s8-provenance-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "provenance": True,
        },
        # the s3 head with the hotspot profile computed after the run:
        # profiling is a pure view over the event stream, so its gated
        # query counts must stay identical to s3's; "profile" extras
        # record the attribution figures the view derives
        {
            "name": "s9-profile-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "profile": True,
        },
        # the s3 head on the out-of-core paged backend with a pool far
        # smaller than the extension: queries are gated (paging must
        # not change the logical stream) and its latency entry tracks
        # the eviction/re-read overhead; "storage" extras record the
        # buffer-pool counters so a thrash regression names itself
        {
            "name": "s10-paged-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": PagedBackend,
            "backend_options": {"pool_pages": 8, "page_size": 512},
        },
        # the s3 head with a live subscriber attached for the whole run:
        # queries are gated (telemetry must never ask the extension
        # anything) and its latency entry tracks the publish overhead —
        # this is the ≤ 2x calibrated bar behind the "within noise when
        # watched" claim; "live" extras record the stream census
        {
            "name": "s13-live-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "live": True,
        },
        {
            "name": "s3-end-to-end-head-batched",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "engine": "batched",
        },
        {
            "name": "s6-sqlite-head-batched",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": SQLiteBackend,
            "engine": "batched",
        },
        # the s3 head through the process-parallel executor: the logical
        # query stream is gated (sharding must never change what is
        # asked, only where it is answered) and its latency entry tracks
        # the fork/IPC overhead; "engine" extras record chunk counts and
        # the pool's crash/retry/fallback telemetry
        {
            "name": "s11-service-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "engine": "process",
            "engine_workers": 2,
        },
        # the s3 head with every restruct decomposition re-verified from
        # scratch: certification (chase, preservation split, normal-form
        # diagnosis) is pure schema computation, so the gated query
        # counts must stay at s3's figures; "normalization" extras
        # record the certificate census (all must verify, losses must
        # stay attributed)
        {
            "name": "s12-synthesis-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "normalization": True,
        },
        # the s3 head written through to a repro/archive@1 directory
        # and restored again: archival is file I/O strictly after the
        # run, so the gated query counts must stay at s3's figures;
        # "archive" extras record the store/restore round-trip cost so
        # a durability-layer slowdown names itself
        {
            "name": "s14-archive-head",
            "config": ScenarioConfig(
                seed=700,
                n_entities=5 + scale,
                n_one_to_many=4 + scale,
                n_many_to_many=1,
                merges=2,
                parent_rows=20 if quick else 60,
            ),
            "backend": MemoryBackend,
            "archive": True,
        },
    ]


def _calibrate(rounds: int = 3) -> float:
    """Milliseconds for a fixed pure-Python workload (best of *rounds*).

    The workload mirrors what the primitives do — building and
    intersecting distinct sets of tuples — so head latencies divided by
    this number are comparable across machines.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        left = {(i % 997, i % 31) for i in range(50_000)}
        right = {(i % 991, i % 29) for i in range(50_000)}
        _ = len(left & right) + len(left | right)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def run_head(head: Dict[str, Any]) -> Dict[str, Any]:
    """One traced pipeline run; returns the head's measured figures."""
    scenario = build_scenario(head["config"])
    database = scenario.database.copy(
        backend=head["backend"](**head.get("backend_options", {}))
    )
    tracer = Tracer()
    subscription = tracer.subscribe() if head.get("live") else None
    pipeline = DBREPipeline(
        database,
        scenario.expert,
        tracer=tracer,
        engine=head.get("engine", "serial"),
        engine_workers=head.get("engine_workers", 0),
        provenance=head.get("provenance", False),
    )
    start = time.perf_counter()
    result = pipeline.run(corpus=scenario.corpus)
    wall_ms = (time.perf_counter() - start) * 1000.0
    metrics = metrics_summary(tracer)
    profile = profile_summary(tracer)
    telemetry = getattr(database.backend, "telemetry", None)
    storage = telemetry() if callable(telemetry) else None
    database.close()

    queries = {p: s["calls"] for p, s in metrics["primitives"].items()}
    latency = {p: s["duration_ms"] for p, s in metrics["primitives"].items()}
    phases = {
        name: dict(stats, self_ms=profile["phases"][name]["self_ms"])
        for name, stats in metrics["phases"].items()
    }
    measured = {
        "wall_ms": round(wall_ms, 3),
        "queries": queries,
        "latency_ms": latency,
        # per-primitive calls/latency/cache/rows — the attribution table
        # and `repro trace diff` read hit rates from here
        "primitives": profile["primitives"],
        "cache_hits": metrics["totals"]["cache_hits"],
        "rows_touched": metrics["totals"]["rows_touched"],
        "decisions": result.expert_decisions,
        "phases": phases,
    }
    if head.get("profile"):
        # the hotspot view re-derived after the run; recording it here
        # proves (via the gated query counts staying at s3's figures)
        # that profiling aggregation issued zero extension queries
        hottest = max(
            profile["spans"].items(), key=lambda kv: kv[1]["self_ms"]
        )
        measured["profile"] = {
            "spans": profile["totals"]["spans"],
            "queries_seen": profile["totals"]["queries"],
            "hottest_span": hottest[0],
            "hottest_self_ms": hottest[1]["self_ms"],
        }
    if storage is not None:
        # buffer-pool counters; informational — the gated query counts
        # and latency above already bound the damage, but a hit-rate
        # collapse recorded here names the cause (pool thrash)
        hits = storage.get("pool_hits", 0)
        fetches = hits + storage.get("pool_misses", 0)
        measured["storage"] = dict(
            storage, pool_hit_rate=round(hits / fetches, 4) if fetches else 0.0
        )
    if subscription is not None:
        # stream census; informational — the gated query counts above
        # prove the bus asked the extension nothing, and the head's
        # latency entry bounds the publish overhead — but a watcher
        # that started dropping or missing events shows up here
        records = subscription.drain()
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        measured["live"] = {
            "events": len(records),
            "dropped": subscription.dropped,
            "counts": counts,
        }
    if result.engine_stats is not None:
        # physical-call accounting; informational, not gated per se —
        # but recorded in the baseline so a pushdown regression (more
        # backend calls for the same logical stream) is visible
        measured["engine"] = result.engine_stats.as_dict()
    if head.get("normalization"):
        # certificate census, with every certificate re-verified from
        # scratch; informational — the gated query counts above prove
        # certification asked the extension nothing extra — but a
        # certificate that stops verifying, or an unexplained loss,
        # shows up here by name
        from repro.normalization import verify_certificate

        certificates = result.certificates
        measured["normalization"] = {
            "certificates": len(certificates),
            "verified": sum(1 for c in certificates if verify_certificate(c) == []),
            "lossless": sum(1 for c in certificates if c.lossless),
            "repaired": sum(1 for c in certificates if c.repaired),
            "lost_fds": sum(len(c.lost) for c in certificates),
        }
    if result.provenance is not None:
        # lineage-DAG size; informational — the gated figures above
        # already prove the ledger added no query and little latency
        ledger = result.provenance
        measured["provenance"] = {
            "nodes": len(ledger.nodes),
            "edges": len(ledger.edges),
            "evidence": sum(len(n.events) for n in ledger.nodes.values()),
        }
    if head.get("archive"):
        # durability round trip; informational — the gated query counts
        # above prove archival asked the extension nothing (it runs
        # strictly after the pipeline) — but a store or restore that
        # starts costing real time shows up here by name
        import shutil
        import tempfile

        from repro.obs.archive import RunArchive
        from repro.obs.export import metrics_from_records, trace_records

        tmp = tempfile.mkdtemp(prefix="repro-bench-s14-")
        try:
            archive = RunArchive(tmp)
            records = trace_records(tracer)
            t0 = time.perf_counter()
            archive.store(
                {"type": "job", "id": "job-1", "label": head["name"],
                 "state": "done", "cached": False},
                ("bench-db", "bench-wl", "{}"),
                trace=records,
                metrics=metrics_from_records(records),
            )
            store_ms = (time.perf_counter() - t0) * 1000
            t0 = time.perf_counter()
            runs = archive.runs()
            restore_ms = (time.perf_counter() - t0) * 1000
            measured["archive"] = {
                "runs_restored": len(runs),
                "trace_records": len(records),
                "store_ms": round(store_ms, 3),
                "restore_ms": round(restore_ms, 3),
            }
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return measured


def run_all(quick: bool) -> Dict[str, Any]:
    """Every head, plus the run's calibration constant."""
    calibration_ms = _calibrate()
    heads: Dict[str, Any] = {}
    for head in _head_configs(quick):
        print(f"  running {head['name']} ...", file=sys.stderr)
        measured = run_head(head)
        measured["latency_units"] = {
            p: round(ms / calibration_ms, 4)
            for p, ms in measured["latency_ms"].items()
        }
        heads[head["name"]] = measured
    return {
        "format": FORMAT,
        "mode": "quick" if quick else "full",
        "calibration_ms": round(calibration_ms, 4),
        "heads": heads,
    }


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_ratio: float = 2.0,
) -> List[str]:
    """Violation messages for *current* against *baseline* (same mode)."""
    violations: List[str] = []
    for name, base_head in baseline.get("heads", {}).items():
        cur_head = current["heads"].get(name)
        if cur_head is None:
            violations.append(f"{name}: head missing from this run")
            continue
        for primitive, base_calls in base_head.get("queries", {}).items():
            cur_calls = cur_head["queries"].get(primitive, 0)
            if base_calls and cur_calls > max_ratio * base_calls:
                violations.append(
                    f"{name}: {primitive} issued {cur_calls} queries "
                    f"(baseline {base_calls}, limit {max_ratio:.1f}x)"
                )
        base_engine = base_head.get("engine")
        if base_engine and base_engine.get("backend_calls"):
            base_physical = base_engine["backend_calls"]
            cur_physical = cur_head.get("engine", {}).get("backend_calls", 0)
            if cur_physical > max_ratio * base_physical:
                violations.append(
                    f"{name}: batched engine made {cur_physical} backend "
                    f"calls (baseline {base_physical}, limit "
                    f"{max_ratio:.1f}x) — pushdown/grouping regressed"
                )
        for primitive, base_units in base_head.get("latency_units", {}).items():
            if base_units < LATENCY_FLOOR_UNITS:
                continue  # below the noise floor: not gated
            cur_units = cur_head.get("latency_units", {}).get(primitive, 0.0)
            if cur_units > max_ratio * base_units:
                violations.append(
                    f"{name}: {primitive} latency {cur_units:.3f} units "
                    f"(baseline {base_units:.3f}, limit {max_ratio:.1f}x)"
                )
    return violations


def unguarded_heads(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Heads this run produced that the baseline does not gate.

    ``compare`` iterates the *baseline's* heads, so a head that exists
    only in the current run is silently unguarded — exactly what
    happens when a new bench head lands without ``--write-baseline``.
    """
    return sorted(
        set(current.get("heads", {})) - set(baseline.get("heads", {}))
    )


def _hit_rate(stats: Dict[str, Any]) -> float:
    calls = stats.get("calls", 0)
    return stats.get("cache_hits", 0) / calls if calls else 0.0


def attribution_report(
    name: str, current_head: Dict[str, Any], baseline_head: Dict[str, Any]
) -> str:
    """The attribution table for one failing head.

    A bare "2x slower" verdict is not actionable; this table says
    *which* phase and primitive moved — per-primitive calls, latency
    units and cache hit-rates, and per-phase inclusive/self time, each
    baseline → current, ranked by the latency-unit delta.
    """
    lines = [f"attribution for {name} (baseline -> current):"]
    primitives = sorted(
        set(baseline_head.get("queries", {}))
        | set(current_head.get("queries", {}))
        | set(baseline_head.get("latency_units", {}))
        | set(current_head.get("latency_units", {})),
        key=lambda p: abs(
            current_head.get("latency_units", {}).get(p, 0.0)
            - baseline_head.get("latency_units", {}).get(p, 0.0)
        ),
        reverse=True,
    )
    rows = []
    for primitive in primitives:
        base_units = baseline_head.get("latency_units", {}).get(primitive, 0.0)
        cur_units = current_head.get("latency_units", {}).get(primitive, 0.0)
        base_stats = baseline_head.get("primitives", {}).get(primitive, {})
        cur_stats = current_head.get("primitives", {}).get(primitive, {})
        rows.append([
            primitive,
            f"{baseline_head.get('queries', {}).get(primitive, 0)} -> "
            f"{current_head.get('queries', {}).get(primitive, 0)}",
            f"{base_units:.3f} -> {cur_units:.3f}"
            + (f" ({cur_units / base_units:.2f}x)" if base_units else ""),
            f"{100 * _hit_rate(base_stats):.0f}% -> {100 * _hit_rate(cur_stats):.0f}%",
            f"{base_stats.get('rows_touched', 0)} -> "
            f"{cur_stats.get('rows_touched', 0)}",
        ])
    if rows:
        lines.append(format_table(
            ["primitive", "queries", "latency units", "cache hit-rate", "rows"],
            rows,
        ))
    phase_rows = []
    for phase in sorted(
        set(baseline_head.get("phases", {})) | set(current_head.get("phases", {}))
    ):
        base_phase = baseline_head.get("phases", {}).get(phase, {})
        cur_phase = current_head.get("phases", {}).get(phase, {})
        phase_rows.append([
            phase,
            f"{base_phase.get('queries', 0)} -> {cur_phase.get('queries', 0)}",
            f"{base_phase.get('duration_ms', 0.0):.3f} -> "
            f"{cur_phase.get('duration_ms', 0.0):.3f}",
            f"{base_phase.get('self_ms', 0.0):.3f} -> "
            f"{cur_phase.get('self_ms', 0.0):.3f}",
        ])
    if phase_rows:
        lines.append(format_table(
            ["phase", "queries", "incl ms", "self ms"], phase_rows
        ))
    return "\n".join(lines)


def append_history(
    path: str, result: Dict[str, Any], gate: str, violations: List[str]
) -> Dict[str, Any]:
    """Append one ``repro/bench-history@1`` record for this run.

    One JSON line per run — mode, calibration constant, gate outcome,
    the violations verbatim, and a condensed per-head summary — so the
    perf trajectory persists across runs instead of living only in CI
    artifacts.  Returns the record that was written.
    """
    record = {
        "format": HISTORY_FORMAT,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": result["mode"],
        "calibration_ms": result["calibration_ms"],
        "commit": os.environ.get("GITHUB_SHA"),
        "gate": gate,
        "violations": list(violations),
        "heads": {
            name: {
                "wall_ms": head["wall_ms"],
                "queries": sum(head.get("queries", {}).values()),
                "cache_hits": head.get("cache_hits", 0),
                "latency_units": head.get("latency_units", {}),
            }
            for name, head in sorted(result["heads"].items())
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
    return record


def load_baseline(path: str, mode: str) -> Optional[Dict[str, Any]]:
    """The baseline entry for *mode*, or None when absent."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != BASELINE_FORMAT:
        raise SystemExit(f"error: {path} is not a {BASELINE_FORMAT} document")
    return document.get("modes", {}).get(mode)


def write_baseline(path: str, result: Dict[str, Any]) -> None:
    """Create or update the baseline entry for the result's mode."""
    document = {"format": BASELINE_FORMAT, "modes": {}}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if existing.get("format") == BASELINE_FORMAT:
            document = existing
    document["modes"][result["mode"]] = result
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="S-series benchmark-regression harness (CI gate)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small scenario heads (what CI runs)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON to gate against "
                             "(default benchmarks/BENCH_baseline.json)")
    parser.add_argument("--output",
                        help="write this run's metrics JSON here")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record this run as the baseline for its mode "
                             "instead of gating")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="per-primitive regression limit (default 2.0)")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="append one repro/bench-history@1 record per run "
                             "here (default benchmarks/BENCH_history.jsonl)")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append to the bench-history file")
    args = parser.parse_args(argv)

    result = run_all(quick=args.quick)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics written to {args.output}", file=sys.stderr)

    def record_history(gate: str, violations: List[str]) -> None:
        if not args.no_history:
            append_history(args.history, result, gate, violations)
            print(f"history appended to {args.history}", file=sys.stderr)

    if args.write_baseline:
        write_baseline(args.baseline, result)
        print(f"baseline ({result['mode']}) written to {args.baseline}")
        record_history("baseline-written", [])
        return 0

    baseline = load_baseline(args.baseline, result["mode"])
    if baseline is None:
        print(
            f"no {result['mode']} baseline in {args.baseline}: gate skipped "
            f"(run with --write-baseline to record one)"
        )
        record_history("skipped", [])
        return 0

    violations = compare(result, baseline, max_ratio=args.max_ratio)
    for head, measured in sorted(result["heads"].items()):
        total = sum(measured["queries"].values())
        print(
            f"{head}: {total} queries, {measured['wall_ms']:.0f} ms wall, "
            f"{measured['cache_hits']} cache hits"
        )
    unguarded = unguarded_heads(result, baseline)
    gate = "fail" if violations else ("unguarded" if unguarded else "pass")
    record_history(gate, violations or unguarded)
    if not args.no_history:
        # advisory drift report: the history file now includes this
        # run, so a flagged latest point means *this run* is anomalous
        # against its own trajectory (robust median/MAD z-score).
        # Advisory only — the ratio gate above is the only thing that
        # decides the exit code.
        from repro.obs.history import bench_drift_report, load_bench_history

        drifted = bench_drift_report(
            load_bench_history(args.history, mode=result["mode"])
        )
        if drifted:
            print("\ndrift advisory (informational, not gated):")
            for message in drifted:
                print(f"  - {message}")
    if violations:
        print("\nREGRESSION GATE FAILED:")
        for violation in violations:
            print(f"  - {violation}")
        failing = []
        for violation in violations:
            name = violation.split(":", 1)[0]
            if name not in failing:
                failing.append(name)
        for name in failing:
            current_head = result["heads"].get(name)
            baseline_head = baseline.get("heads", {}).get(name)
            if current_head and baseline_head:
                print()
                print(attribution_report(name, current_head, baseline_head))
        return 1
    if unguarded:
        print(
            f"error: {len(unguarded)} head(s) missing from the "
            f"{result['mode']} baseline — {', '.join(unguarded)} — "
            f"re-record it with --write-baseline"
        )
        return EXIT_UNGUARDED_HEADS
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
