"""E2 — §5's equi-join set Q, extracted from the application programs.

Paper artifact: the five equi-joins of §5

    HEmployee[no]    >< Person[id]
    Department[emp]  >< HEmployee[no]
    Assignment[emp]  >< HEmployee[no]
    Assignment[dep]  >< Department[dep]
    Department[proj] >< Assignment[proj]

The corpus embeds each one in a different §4 syntactic form (plain WHERE
join, nested IN, correlated EXISTS, JOIN..ON, INTERSECT) across three
host languages; the measured set must equal the paper's.
"""

from benchmarks.conftest import check_rows, report
from repro.programs.extractor import EquiJoinExtractor


def test_e2_extraction(benchmark, paper_db, paper_corpus, expected):
    extractor = EquiJoinExtractor(paper_db.schema)
    result = benchmark(extractor.extract_from_corpus, paper_corpus)
    check_rows(
        "E2: the set Q extracted from programs",
        [
            ("|Q|", len(expected.equijoins), len(result.joins)),
            ("Q", set(expected.equijoins), set(result.joins)),
            ("parse failures", 0, len(result.skipped)),
            ("resolution warnings", 0, len(result.warnings)),
        ],
    )
    report(
        "E2: provenance (which program performs which join)",
        ["equi-join", "programs"],
        [
            [repr(j), ", ".join(p for p, _ in result.provenance[j])]
            for j in result.joins
        ],
    )
