"""E6 — §7's restructured 3NF schema and referential integrity set RIC.

Paper artifacts: the nine-relation restructured schema

    Person(id, name, street, number, zip-code, state)
    HEmployee(no, date, salary)        Department(dep, emp, location)
    Assignment(emp, dep, proj, date)   Employee(no)
    Ass-Dept(dep)   Other-Dept(dep)    Manager(emp, skill, proj)
    Project(proj, project-name)

and the ten-element RIC set listed at the end of §7, with the schema in
3NF as the section requires.
"""

from benchmarks.conftest import check_rows
from repro.core import (
    INDDiscovery,
    LHSDiscovery,
    Restruct,
    RHSDiscovery,
    ScriptedExpert,
)
from repro.normalization import NormalForm, schema_normal_forms
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)


def _prepare():
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    ind_result = INDDiscovery(db, expert).run(paper_equijoins())
    lhs_result = LHSDiscovery(db.schema, ind_result.s_names).run(ind_result.inds)
    rhs_result = RHSDiscovery(db, expert).run(lhs_result.lhs, lhs_result.hidden)
    return db, expert, ind_result, rhs_result


def test_e6_restruct(benchmark, expected):
    def run():
        db, expert, ind_result, rhs_result = _prepare()
        step = Restruct(db, expert)
        return db, step.run(rhs_result.fds, rhs_result.hidden, ind_result.inds)

    db, result = benchmark(run)

    relations = {r.name: tuple(r.attribute_names) for r in db.schema}
    keys = {r.name: tuple(r.primary_key().names) for r in db.schema}
    forms = schema_normal_forms(db.schema, [])
    check_rows(
        "E6: the restructured schema and RIC",
        [
            ("relations", expected.restructured_relations, relations),
            ("keys", expected.restructured_keys, keys),
            ("|RIC|", len(expected.ric), len(result.ric)),
            ("RIC", set(expected.ric), set(result.ric)),
            (
                "all relations in 3NF",
                True,
                all(nf.at_least(NormalForm.THIRD) for nf in forms.values()),
            ),
        ],
    )
