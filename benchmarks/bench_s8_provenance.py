"""S8 — the provenance ledger must be (nearly) free.

The lineage DAG is pure bookkeeping over counts the phases already
computed: a provenance-enabled run must issue **zero** extra extension
queries and ask zero extra expert questions, its dependency sets must be
bit-identical to a disabled run, and the wall-clock overhead on an
S3-like end-to-end scenario must stay under ``OVERHEAD_TOLERANCE``
(plus a small absolute epsilon, so sub-millisecond timer jitter on the
small CI scenario cannot fail the bench).

Like S7, this file uses plain ``time.perf_counter`` min-of-N loops so
CI can run it as a smoke test without the pytest-benchmark fixture.
"""

import time

from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.eer.render import render_text
from repro.obs.provenance import provenance_records
from repro.workloads.scenario import ScenarioConfig, build_scenario

#: provenance wall clock may exceed the disabled run by at most 5% ...
OVERHEAD_TOLERANCE = 1.05
#: ... plus this many milliseconds of absolute slack (timer noise floor)
OVERHEAD_EPSILON_MS = 5.0

ROUNDS = 5

SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)


def _run(provenance, engine="serial"):
    scenario = build_scenario(SCENARIO)
    pipeline = DBREPipeline(
        scenario.database.copy(),
        scenario.expert,
        provenance=provenance,
        engine=engine,
    )
    start = time.perf_counter()
    result = pipeline.run(corpus=scenario.corpus)
    wall = (time.perf_counter() - start) * 1000.0
    return result, wall


def _best_wall(provenance, rounds=ROUNDS):
    return min(_run(provenance)[1] for _ in range(rounds))


def _observable(result):
    return (
        [repr(i) for i in result.inds],
        [repr(f) for f in result.fds],
        [repr(i) for i in result.ric],
        render_text(result.eer),
        result.extension_queries,
        result.expert_decisions,
    )


def test_s8_provenance_issues_no_extra_queries():
    """Same queries, same decisions, same outputs — ledger on or off."""
    enabled, _ = _run(provenance=True)
    disabled, _ = _run(provenance=False)
    assert enabled.provenance is not None and len(enabled.provenance) > 0
    assert disabled.provenance is None
    report(
        "S8 — extension accounting, S3 scenario",
        ["run", "queries", "decisions", "|RIC|", "lineage nodes"],
        [
            [
                "provenance on",
                enabled.extension_queries,
                enabled.expert_decisions,
                len(enabled.ric),
                len(enabled.provenance),
            ],
            [
                "provenance off",
                disabled.extension_queries,
                disabled.expert_decisions,
                len(disabled.ric),
                0,
            ],
        ],
    )
    assert _observable(enabled) == _observable(disabled)


def test_s8_ledger_covers_the_whole_run():
    """Every evidence reference resolves into the shared trace stream."""
    result, _ = _run(provenance=True)
    ledger = result.provenance
    records = provenance_records(ledger)
    kinds = {r["kind"] for r in records if r.get("type") == "node"}
    evidence = [
        e for node in ledger.nodes.values() for e in node.events
    ]
    report(
        "S8 — lineage coverage, S3 scenario",
        ["figure", "value"],
        [
            ["nodes", len(ledger.nodes)],
            ["edges", len(ledger.edges)],
            ["node kinds", len(kinds)],
            ["evidence refs", len(evidence)],
        ],
    )
    assert {"equijoin", "classification", "ind", "ric"} <= kinds
    assert evidence
    trace_len = len(result.trace.events)
    assert all(0 <= e["id"] < trace_len for e in evidence)


def test_s8_batched_engine_pays_nothing_extra():
    """The batched engine's physical-call count is provenance-blind."""
    enabled, _ = _run(provenance=True, engine="batched")
    disabled, _ = _run(provenance=False, engine="batched")
    assert _observable(enabled) == _observable(disabled)
    on, off = enabled.engine_stats, disabled.engine_stats
    report(
        "S8 — batched engine, provenance on vs off",
        ["figure", "on", "off"],
        [
            ["logical probes", on.logical_probes, off.logical_probes],
            ["backend calls", on.backend_calls, off.backend_calls],
        ],
    )
    assert on.logical_probes == off.logical_probes
    assert on.backend_calls == off.backend_calls


def test_s8_wall_clock_overhead_under_tolerance():
    """Ledger overhead: < 5% wall clock (best of 5) plus noise floor."""
    off_wall = _best_wall(provenance=False)
    on_wall = _best_wall(provenance=True)
    overhead = (on_wall / off_wall - 1.0) * 100.0
    report(
        "S8 — wall clock, S3 scenario (best of 5)",
        ["run", "wall ms"],
        [
            ["provenance off", f"{off_wall:.2f}"],
            ["provenance on", f"{on_wall:.2f} ({overhead:+.1f}%)"],
        ],
    )
    assert on_wall <= off_wall * OVERHEAD_TOLERANCE + OVERHEAD_EPSILON_MS
