"""A1 — ablations of the design choices DESIGN.md §5 calls out.

1. *RHS pruning rules* (drop keys; drop not-null candidates under a
   nullable LHS): disabling them multiplies the FD tests against the
   extension and — worse — lets integrity-only dependencies slip into
   the elicited set (``emp -> location`` would be tested, and on the
   paper's data it *fails*, but on luckier data it would surface).
2. *AutoExpert force threshold*: the no-human policy's sensitivity — a
   low threshold forces dirty inclusions through NEIs (recall up,
   risk of wrong directions), a high threshold ignores them.
3. *Direction rule on equal sides*: the two non-exclusive ifs of
   IND-Discovery elicit both directions when value sets coincide;
   keeping only one (a plausible "fix") would lose the is-a evidence
   Translate needs for mutually-included identifiers.
"""


from benchmarks.conftest import report
from repro.core import (
    DBREPipeline,
    INDDiscovery,
    LHSDiscovery,
    RHSDiscovery,
    ScriptedExpert,
)
from repro.core.expert import AutoExpert
from repro.evaluation.metrics import score_inds
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _rhs_run(prune_keys, prune_not_null):
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    ind_result = INDDiscovery(db, expert).run(paper_equijoins())
    lhs_result = LHSDiscovery(db.schema, ind_result.s_names).run(ind_result.inds)
    db.counter.reset()
    step = RHSDiscovery(
        db, expert, prune_keys=prune_keys, prune_not_null=prune_not_null
    )
    result = step.run(lhs_result.lhs, lhs_result.hidden)
    return db.counter.fd_checks, result


def test_a1_rhs_pruning_ablation(benchmark):
    rows = []
    outcomes = {}
    for prune_keys, prune_not_null, label in (
        (True, True, "both rules (paper)"),
        (True, False, "no not-null rule"),
        (False, True, "no key rule"),
        (False, False, "no pruning at all"),
    ):
        fd_checks, result = _rhs_run(prune_keys, prune_not_null)
        outcomes[label] = (fd_checks, result)
        rows.append(
            [
                label,
                fd_checks,
                len(result.fds),
                len(result.hidden),
            ]
        )
    report(
        "A1: RHS-Discovery pruning-rule ablation (paper example)",
        ["configuration", "FD tests on extension", "|F|", "|H|"],
        rows,
    )
    paper_checks, paper_result = outcomes["both rules (paper)"]
    none_checks, none_result = outcomes["no pruning at all"]
    assert none_checks > paper_checks           # pruning saves real work
    # everything the paper configuration elicits is still found without
    # pruning (compare atom-wise: unpruned runs may widen an FD's RHS
    # with key attributes, e.g. Department: emp -> dep)
    def atoms(fds):
        return {
            (fd.relation, fd.lhs, a) for fd in fds for a in fd.rhs
        }

    assert atoms(paper_result.fds) <= atoms(none_result.fds)
    # and the unpruned run reports key-attribute determinations the
    # paper's rule exists to suppress (3NF needs no key RHS)
    assert atoms(none_result.fds) - atoms(paper_result.fds)

    benchmark(lambda: _rhs_run(True, True))


def test_a1_autoexpert_threshold_sweep(benchmark):
    """The no-human policy's blind spot, quantified.

    AutoExpert forces the *smaller* side into the larger through an NEI.
    Corruption inflates the referencing side's distinct count (broken
    values are all fresh), so the heuristic systematically picks the
    REVERSE of the true direction: edges are captured but misdirected.
    This is exactly why the paper keeps a human in the NEI decision —
    direction is domain knowledge, not a statistic.
    """
    rows = []
    edge_recalls = []
    for threshold in (0.99, 0.9, 0.7, 0.5):
        scenario = build_scenario(
            ScenarioConfig(
                seed=800, n_entities=8, n_one_to_many=7, merges=2,
                parent_rows=20, corruption_ind_rate=1.0,
                corruption_row_rate=0.12,
            )
        )
        expert = AutoExpert(force_threshold=threshold)
        result = DBREPipeline(scenario.database, expert).run(
            corpus=scenario.corpus
        )
        truth = scenario.truth.true_inds
        directed = score_inds(result.inds, truth)
        recovered = set(result.inds)
        captured = sum(
            1 for ind in truth
            if ind in recovered or ind.reversed() in recovered
        )
        edge_recall = captured / len(truth) if truth else 1.0
        edge_recalls.append(edge_recall)
        rows.append(
            [
                f"{threshold:.2f}",
                f"{directed.recall:.2f}",
                f"{edge_recall:.2f}",
            ]
        )
    report(
        "A1: AutoExpert force-threshold sweep (fully corrupted scenario)",
        [
            "force threshold",
            "directed IND recall",
            "edge captured (either direction)",
        ],
        rows,
    )
    # a forgiving threshold captures more edges — but misdirected, which
    # is the point: automation recovers topology, the expert fixes sense
    assert edge_recalls[-1] >= edge_recalls[0]
    assert edge_recalls[-1] > 0.5

    benchmark(
        lambda: build_scenario(
            ScenarioConfig(seed=800, corruption_ind_rate=1.0)
        )
    )


def test_a1_equal_sides_double_elicitation(benchmark):
    """Equal value sets: the algorithm's two ifs both fire.  Verify the
    paper-faithful behaviour and measure how often it triggers."""
    from repro.programs.equijoin import EquiJoin
    from repro.relational.database import Database
    from repro.relational.domain import INTEGER
    from repro.relational.schema import DatabaseSchema, RelationSchema

    def build(n_equal, n_strict):
        schema = DatabaseSchema()
        db = Database(schema)
        joins = []
        for i in range(n_equal + n_strict):
            left = RelationSchema.build(f"l{i}", ["a"], types={"a": INTEGER})
            right = RelationSchema.build(f"r{i}", ["b"], types={"b": INTEGER})
            db.create_relation(left)
            db.create_relation(right)
            db.insert_many(f"l{i}", [[v] for v in range(5)])
            extra = 0 if i < n_equal else 3
            db.insert_many(f"r{i}", [[v] for v in range(5 + extra)])
            joins.append(EquiJoin(f"l{i}", ("a",), f"r{i}", ("b",)))
        return db, joins

    db, joins = build(n_equal=3, n_strict=3)
    result = INDDiscovery(db).run(joins)
    double = sum(
        1
        for i in result.inds
        if i.reversed() in result.inds
    )
    report(
        "A1: double elicitation on equal value sets",
        ["joins", "equal-set joins", "INDs elicited", "mutual pairs"],
        [[len(joins), 3, len(result.inds), double // 2]],
    )
    assert double // 2 == 3          # exactly the equal-set joins
    assert len(result.inds) == 3 * 2 + 3

    benchmark(lambda: INDDiscovery(build(3, 3)[0]).run(joins))
