"""S9 — profiling must be a pure view over the event stream.

Like ``cost_report_from_trace``, the hotspot profile, the flamegraph
exporters and the trace diff engine are *aggregations of recorded
data*: computing them after a run must issue **zero** extra extension
queries, append no event to the trace, and leave every pipeline
artifact untouched.  The opt-in tracemalloc mode may slow the run
(that is its documented price) but must not change the query stream
either.

Like S7/S8, plain ``time.perf_counter`` min-of-N loops — CI runs this
as a smoke test without the pytest-benchmark fixture.
"""

import time

from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.eer.render import render_text
from repro.obs import Tracer, metrics_summary, trace_records
from repro.obs.profile import (
    collapsed_stacks,
    diff_views,
    profile_from_records,
    speedscope_document,
    view_from_export,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

ROUNDS = 5

SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)


def _run(profile_memory=False):
    scenario = build_scenario(SCENARIO)
    tracer = Tracer(profile_memory=profile_memory)
    pipeline = DBREPipeline(scenario.database.copy(), scenario.expert, tracer=tracer)
    start = time.perf_counter()
    result = pipeline.run(corpus=scenario.corpus)
    wall = (time.perf_counter() - start) * 1000.0
    return result, tracer, wall


def _observable(result):
    return (
        [repr(i) for i in result.inds],
        [repr(f) for f in result.fds],
        [repr(i) for i in result.ric],
        render_text(result.eer),
        result.extension_queries,
        result.expert_decisions,
    )


def test_s9_profiling_issues_no_extension_queries():
    """Aggregating, exporting and diffing touch the backend zero times."""
    result, tracer, _ = _run()
    queries_before = result.extension_queries
    events_before = len(tracer.events)
    spans_before = len(tracer.spans)

    records = trace_records(tracer)
    profile = profile_from_records(records)
    stacks = collapsed_stacks(records)
    document = speedscope_document(records)
    view = view_from_export("repro/trace@1", records)
    diff = diff_views(view, view)

    # a pure view: the trace streams and the query counter are untouched
    assert result.extension_queries == queries_before
    assert len(tracer.events) == events_before
    assert len(tracer.spans) == spans_before
    assert profile["totals"]["queries"] == events_before
    assert all(abs(row["delta_ms"]) == 0.0 for row in diff["primitives"])
    report(
        "S9 — profile coverage, S3 scenario",
        ["figure", "value"],
        [
            ["extension queries", queries_before],
            ["trace events", events_before],
            ["hotspot span names", len(profile["spans"])],
            ["collapsed stacks", len(stacks)],
            ["speedscope frames", len(document["shared"]["frames"])],
        ],
    )


def test_s9_profile_totals_agree_with_metrics():
    """The hotspot view and the metrics document never disagree."""
    _, tracer, _ = _run()
    records = trace_records(tracer)
    profile = profile_from_records(records)
    metrics = metrics_summary(tracer)
    assert profile["totals"]["queries"] == metrics["totals"]["queries"]
    assert profile["totals"]["spans"] == metrics["totals"]["spans"]
    for primitive, stats in metrics["primitives"].items():
        hot = profile["primitives"][primitive]
        assert hot["calls"] == stats["calls"]
        assert hot["cache_hits"] == stats["cache_hits"]
        assert hot["rows_touched"] == stats["rows_touched"]
    # per-phase self time never exceeds the phase's inclusive time
    for phase, stats in profile["phases"].items():
        assert 0.0 <= stats["self_ms"] <= stats["inclusive_ms"] + 1e-6


def test_s9_aggregation_cost_is_a_fraction_of_the_run():
    """Computing the full profile suite costs less than one pipeline run."""
    _, tracer, run_wall = _run()
    records = trace_records(tracer)
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        profile_from_records(records)
        collapsed_stacks(records)
        speedscope_document(records)
        best = min(best, (time.perf_counter() - start) * 1000.0)
    report(
        "S9 — aggregation cost, S3 scenario (best of 5)",
        ["figure", "wall ms"],
        [
            ["pipeline run", f"{run_wall:.2f}"],
            ["profile + both exporters", f"{best:.2f}"],
        ],
    )
    assert best < run_wall


def test_s9_memory_profiling_changes_no_observable():
    """tracemalloc mode: same queries, same artifacts, peaks recorded."""
    plain, _, _ = _run()
    profiled, tracer, _ = _run(profile_memory=True)
    assert _observable(plain) == _observable(profiled)
    phases = [s for s in tracer.spans if s.kind == "phase"]
    assert phases
    for span in phases:
        assert span.attributes["mem_peak_kb"] >= 0.0
        assert span.attributes["mem_current_kb"] >= 0.0
    root = next(s for s in tracer.spans if s.parent_id is None)
    # the propagated global peak: the root sees at least any phase's peak
    assert root.attributes["mem_peak_kb"] >= max(
        s.attributes["mem_peak_kb"] for s in phases
    )
    report(
        "S9 — tracemalloc peaks per phase, S3 scenario",
        ["span", "peak KiB"],
        [[s.name, s.attributes["mem_peak_kb"]] for s in phases],
    )
