"""S5 — cost vs data volume.

The method's query count is driven by the *workload* (3 counting
queries per equi-join, one FD test per surviving candidate), not by the
data: growing the extension leaves the number of extension queries
constant while each query's cost grows linearly (the engine scans).
This bench sweeps the synthetic scenario's data volume at a fixed
schema/workload and reports both numbers.
"""

import time


from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.evaluation.schema_match import score_schema_recovery
from repro.workloads.scenario import ScenarioConfig, build_scenario

SIZES = [10, 40, 160]


def _run(parent_rows):
    scenario = build_scenario(
        ScenarioConfig(
            seed=900, n_entities=7, n_one_to_many=6, merges=2,
            parent_rows=parent_rows,
        )
    )
    start = time.perf_counter()
    result = DBREPipeline(scenario.database, scenario.expert).run(
        corpus=scenario.corpus
    )
    elapsed = time.perf_counter() - start
    return scenario, result, elapsed


def test_s5_volume_sweep(benchmark):
    rows = []
    query_counts = []
    for parent_rows in SIZES:
        scenario, result, elapsed = _run(parent_rows)
        total_rows = sum(len(t) for t in scenario.database.tables())
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        query_counts.append(result.extension_queries)
        rows.append(
            [
                parent_rows,
                total_rows,
                result.extension_queries,
                result.expert_decisions,
                f"{elapsed * 1000:.0f} ms",
                f"{recovery.recovery_rate:.2f}",
            ]
        )
        assert recovery.recovery_rate == 1.0
    report(
        "S5: cost vs data volume (fixed schema and workload)",
        [
            "parent rows", "total rows", "extension queries",
            "expert decisions", "wall time", "schema recovery",
        ],
        rows,
    )
    # the query COUNT is volume-independent — the paper's cost model
    assert len(set(query_counts)) == 1

    benchmark(lambda: _run(SIZES[0]))
