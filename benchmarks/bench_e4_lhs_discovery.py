"""E4 — §6.2.1's candidate-identifier set LHS and hidden-object set H.

Paper artifacts:

    LHS = {HEmployee.{no}, Department.{emp}, Assignment.{emp},
           Assignment.{proj}, Department.{proj}}
    H   = {Assignment.{dep}}
"""

from benchmarks.conftest import check_rows
from repro.core import INDDiscovery, LHSDiscovery, ScriptedExpert
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)


def test_e4_lhs_discovery(benchmark, expected):
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    ind_result = INDDiscovery(db, expert).run(paper_equijoins())
    step = LHSDiscovery(db.schema, ind_result.s_names)

    result = benchmark(step.run, ind_result.inds)
    check_rows(
        "E4: LHS-Discovery output",
        [
            ("|LHS|", len(expected.lhs), len(result.lhs)),
            ("LHS", set(expected.lhs), set(result.lhs)),
            ("H", set(expected.hidden_after_lhs), set(result.hidden)),
        ],
    )
