"""S10 — the paged backend: scan-bound vs pool-bound analysis.

The out-of-core claim is a trade, not a free lunch: with a pool big
enough to hold the extension, the paged backend is scan-bound (every
page read once, then served from memory); with a pool smaller than any
relation it is pool-bound (every scan evicts and re-reads).  This bench
runs the S6 primitive workload under both regimes and reports the
buffer hit-rate next to the timings, then runs the full pipeline on a
pool a fraction of the extension's size.  In every configuration the
answers must be identical to the in-memory backend — the pool size may
only move the wall time and the I/O counters, never a count.
"""

import time

from benchmarks.bench_s6_backends import _run_workload, _scenario
from benchmarks.conftest import report
from repro.backends import MemoryBackend, PagedBackend
from repro.core import DBREPipeline

#: page size for every run; small enough that the bench scenarios span
#: many pages, so the pool-bound regime actually thrashes
PAGE_SIZE = 512

#: (label, pool frames): ample pool => scan-bound; tiny pool => every
#: scan pays eviction and re-read
POOLS = [("scan-bound", 1024), ("pool-bound", 8)]

SIZES = [4, 8]


def _paged_copy(database, pool_pages):
    return database.copy(
        backend=PagedBackend(pool_pages=pool_pages, page_size=PAGE_SIZE)
    )


def test_s10_primitive_timings_by_pool(benchmark):
    rows = []
    for n in SIZES:
        scenario = _scenario(n)
        edges = scenario.truth.join_edges
        memory = _run_workload(
            scenario.database.copy(backend=MemoryBackend()), edges
        )
        for label, pool_pages in POOLS:
            db = _paged_copy(scenario.database, pool_pages)
            paged = _run_workload(db, edges)
            stats = db.backend.pool.stats
            for primitive in memory:
                mem_s, calls, mem_answers = memory[primitive]
                page_s, _, page_answers = paged[primitive]
                assert page_answers == mem_answers, (label, primitive)
            total_mem = sum(s for s, _, _ in memory.values())
            total_page = sum(s for s, _, _ in paged.values())
            rows.append(
                [
                    n,
                    label,
                    pool_pages,
                    sum(c for _, c, _ in memory.values()),
                    f"{total_mem * 1000:.1f} ms",
                    f"{total_page * 1000:.1f} ms",
                    f"{100 * stats.hit_rate:.0f}%",
                    stats.evictions,
                ]
            )
            db.close()
    report(
        "S10: primitive workload on the paged backend, by pool regime",
        [
            "entities", "regime", "pool", "queries",
            "memory", "paged", "hit-rate", "evictions",
        ],
        rows,
    )

    # time the pool-bound pass — the regime the backend exists for
    scenario = _scenario(SIZES[-1])
    db = _paged_copy(scenario.database, POOLS[1][1])

    def pool_bound():
        _run_workload(db, scenario.truth.join_edges)

    benchmark(pool_bound)
    db.close()


def test_s10_pipeline_pool_bound(benchmark):
    """End to end with the pool smaller than the extension."""
    rows = []
    results = {}
    for label, factory in (
        ("memory", MemoryBackend),
        ("paged-8", lambda: PagedBackend(pool_pages=8, page_size=PAGE_SIZE)),
    ):
        scenario = _scenario(6, parent_rows=40)
        db = scenario.database.copy(backend=factory())
        start = time.perf_counter()
        result = DBREPipeline(db, scenario.expert).run(corpus=scenario.corpus)
        elapsed = time.perf_counter() - start
        results[label] = result
        backend = db.backend
        stats = getattr(backend, "pool", None)
        rows.append(
            [
                label,
                result.extension_queries,
                len(result.ric),
                f"{elapsed * 1000:.0f} ms",
                f"{100 * stats.stats.hit_rate:.0f}%" if stats else "—",
                stats.stats.evictions if stats else "—",
            ]
        )
        db.close()
    report(
        "S10: full pipeline, pool-bound paged backend vs memory",
        ["backend", "extension queries", "|RIC|", "wall time",
         "hit-rate", "evictions"],
        rows,
    )

    memory, paged = results["memory"], results["paged-8"]
    # where the pages live never changes what the method produces
    assert paged.extension_queries == memory.extension_queries
    assert set(paged.ric) == set(memory.ric)
    assert {
        r.name: tuple(r.attribute_names) for r in paged.restructured.schema
    } == {
        r.name: tuple(r.attribute_names) for r in memory.restructured.schema
    }

    scenario = _scenario(6, parent_rows=40)
    db = _paged_copy(scenario.database, 8)
    benchmark(
        lambda: DBREPipeline(db.copy(), scenario.expert).run(
            corpus=scenario.corpus
        )
    )
    db.close()
