"""S7 — the batched engine vs the serial pipeline.

The batched planner must earn its keep on the paper's own workload: at
bit-identical output (the differential suite guarantees that; here we
re-assert the cheap invariants), the SQLite pushdown must answer the
run's probe stream in **at least 2x fewer physical backend calls** than
the serial pipeline issues, and the batched run's wall clock must stay
within tolerance of the serial run's.  The memory-backend rows report
what dedupe and grouping contribute on their own.

Unlike the other S-series benches this file does not use the
pytest-benchmark fixture — CI runs it as a plain smoke test with
``time.perf_counter`` min-of-N loops.
"""

import time

from benchmarks.conftest import report
from repro.backends import MemoryBackend, SQLiteBackend
from repro.core import DBREPipeline, ScriptedExpert
from repro.evaluation import batching_summary
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

#: batched wall clock may exceed serial by at most this factor on the
#: tiny paper workload (planner overhead amortizes away at scale)
WALL_CLOCK_TOLERANCE = 1.2

ROUNDS = 3


def _paper_run(engine, backend_factory):
    db = build_paper_database(backend=backend_factory())
    pipeline = DBREPipeline(
        db, ScriptedExpert(paper_expert_script()), engine=engine
    )
    start = time.perf_counter()
    result = pipeline.run(equijoins=paper_equijoins())
    wall = time.perf_counter() - start
    db.close()
    return result, wall


def _best_wall(engine, backend_factory, rounds=ROUNDS):
    return min(_paper_run(engine, backend_factory)[1] for _ in range(rounds))


def _same_output(a, b):
    assert [repr(i) for i in a.inds] == [repr(i) for i in b.inds]
    assert [repr(f) for f in a.fds] == [repr(f) for f in b.fds]
    assert [repr(r) for r in a.ric] == [repr(r) for r in b.ric]
    assert a.extension_queries == b.extension_queries
    assert a.expert_decisions == b.expert_decisions


def test_s7_pushdown_call_reduction():
    """SQLite pushdown: >= 2x fewer backend calls on the paper example."""
    serial, _ = _paper_run("serial", SQLiteBackend)
    batched, _ = _paper_run("batched", SQLiteBackend)
    _same_output(serial, batched)

    stats = batched.engine_stats
    summary = batching_summary(stats)
    report(
        "S7 — backend calls, paper example on SQLite",
        ["engine", "logical probes", "backend calls", "reduction"],
        [
            ["serial", serial.extension_queries, serial.extension_queries, "1.0x"],
            [
                "batched",
                stats.logical_probes,
                stats.backend_calls,
                f"{summary['call_reduction']:.1f}x",
            ],
        ],
    )
    assert stats.logical_probes == serial.extension_queries
    assert stats.batched_calls == stats.backend_calls > 0
    # the acceptance bar: half the serial backend traffic, or better
    assert serial.extension_queries >= 2 * stats.backend_calls


def test_s7_memory_dedupe_and_grouping():
    """Memory backend: dedupe/grouping figures at identical output."""
    serial, _ = _paper_run("serial", MemoryBackend)
    batched, _ = _paper_run("batched", MemoryBackend)
    _same_output(serial, batched)

    stats = batched.engine_stats
    report(
        "S7 — planner effect, paper example in memory",
        ["figure", "value"],
        [
            ["logical probes", stats.logical_probes],
            ["unique probes", stats.unique_probes],
            ["deduped", stats.deduped_probes],
            ["groups", stats.groups],
            ["backend calls", stats.backend_calls],
        ],
    )
    assert stats.deduped_probes > 0
    assert stats.backend_calls == stats.unique_probes < stats.logical_probes


def test_s7_wall_clock_not_worse():
    """Batched wall clock stays within tolerance of serial (SQLite)."""
    serial_wall = _best_wall("serial", SQLiteBackend)
    batched_wall = _best_wall("batched", SQLiteBackend)
    report(
        "S7 — wall clock, paper example on SQLite (best of 3)",
        ["engine", "wall ms"],
        [
            ["serial", f"{serial_wall * 1000:.2f}"],
            ["batched", f"{batched_wall * 1000:.2f}"],
        ],
    )
    assert batched_wall <= serial_wall * WALL_CLOCK_TOLERANCE


def test_s7_scales_with_scenario_size():
    """Grouping keeps the physical call count sublinear in probes."""
    rows = []
    for n_entities in (4, 6, 8):
        scenario = build_scenario(ScenarioConfig(
            seed=300 + n_entities,
            n_entities=n_entities,
            n_one_to_many=n_entities - 1,
            n_many_to_many=1,
            merges=2,
            parent_rows=15,
        ))
        db = scenario.database.copy(backend=SQLiteBackend())
        pipeline = DBREPipeline(db, scenario.expert, engine="batched")
        result = pipeline.run(corpus=scenario.corpus)
        stats = result.engine_stats
        rows.append([
            n_entities,
            stats.logical_probes,
            stats.backend_calls,
            f"{batching_summary(stats)['call_reduction']:.1f}x",
        ])
        assert 2 * stats.backend_calls <= stats.logical_probes
        db.close()
    report(
        "S7 — call reduction vs scenario size (SQLite pushdown)",
        ["entities", "logical probes", "backend calls", "reduction"],
        rows,
    )
