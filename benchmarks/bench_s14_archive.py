"""S14 — run-archive durability and fleet-federation overhead.

Three claims pay for the persistent observability tier:

1. **Archival is faithful and off the query path** — writing a finished
   run through to a ``repro/archive@1`` directory and restoring it in a
   fresh manager reproduces the ledger record and re-seeds the results
   cache (a repeat submission is answered ``cached`` with **zero** new
   extension queries), and the store+restore round-trip costs file I/O
   only — the ``s14-archive-head`` entry in the regression gate pins
   its query counts to the plain s3 figures, so durability can never
   make the method chattier.
2. **Restart survives SIGKILL semantics** — the index line is the
   commit point: a run directory without its index line (the crash
   window) is ignored on restore, never half-loaded; this file
   truncates the index mid-entry and asserts the archive still
   restores what was committed.
3. **Federation is lossless relabelling** — merging two instances'
   expositions preserves every sample of both (per-instance labels,
   values verbatim), lints clean, and costs parsing only.

Like S7/S10/S13 this file runs as a plain smoke test with
``time.perf_counter`` loops, not the pytest-benchmark fixture.
"""

import os
import time

from benchmarks.conftest import report
from repro.obs.archive import RunArchive
from repro.service.fleet import merge_expositions, parse_exposition
from repro.service.jobs import JobManager
from repro.service.metrics import lint_exposition, render_metrics
from repro.workloads.scenario import ScenarioConfig, build_scenario

#: the s3/s14 regression-gate scenario at quick scale
SCENARIO = ScenarioConfig(
    seed=700,
    n_entities=5,
    n_one_to_many=4,
    n_many_to_many=1,
    merges=2,
    parent_rows=20,
)


def _scenario_job(manager):
    scenario = build_scenario(SCENARIO)
    job = manager.submit(
        scenario.database,
        corpus=scenario.corpus,
        config={"expert": scenario.expert},
        label="s14",
    )
    manager.result(job.id, timeout=120)
    deadline = time.monotonic() + 30
    while job.archived is None and time.monotonic() < deadline:
        time.sleep(0.02)
    return job


def test_s14_archive_round_trip_reseeds_cache(tmp_path):
    """Store → restore → cached resubmit, with zero new queries."""
    archive = RunArchive(str(tmp_path))
    with JobManager(runners=1, archive=archive) as manager:
        job = _scenario_job(manager)
        assert job.archived, "finished run never reached the archive"
        record = job.as_record()
        run_wall = (job.finished_at or 0) - (job.started_at or 0)

    start = time.perf_counter()
    restored_manager = JobManager(runners=1, archive=RunArchive(str(tmp_path)))
    restore_s = time.perf_counter() - start
    with restored_manager:
        restored = restored_manager.restored()
        assert restored["jobs"] == 1
        again = restored_manager.job(job.id).as_record()
        assert again["state"] == record["state"]
        assert again["summary"] == record["summary"]
        scenario = build_scenario(SCENARIO)
        hit = restored_manager.submit(
            scenario.database,
            corpus=scenario.corpus,
            config={"expert": scenario.expert},
            label="s14-again",
        )
        assert hit.cached and hit.state == "done", (
            "a restored cache did not answer the repeat submission"
        )
        assert hit.trace is None, "a cache hit ran the pipeline"
    report(
        "S14 — archive round trip (store at finish, restore at startup)",
        ["observable", "value"],
        [
            ["run wall s", f"{run_wall:.2f}"],
            ["restore s", f"{restore_s:.4f}"],
            ["restored jobs", str(restored["jobs"])],
            ["repeat submit", "cached, 0 queries"],
        ],
    )


def test_s14_truncated_index_restores_committed_prefix(tmp_path):
    """The index append is the commit point: a torn line loses one run,
    never the archive."""
    archive = RunArchive(str(tmp_path))
    with JobManager(runners=1, archive=archive) as manager:
        job = _scenario_job(manager)
        assert job.archived
    index_path = os.path.join(str(tmp_path), "index.jsonl")
    with open(index_path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    # simulate a crash mid-append: the last entry is torn
    with open(index_path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:-1])
        handle.write(lines[-1][: len(lines[-1]) // 2])
    with JobManager(runners=1, archive=RunArchive(str(tmp_path))) as again:
        assert again.restored()["jobs"] == 0, (
            "a torn index line restored a phantom run"
        )
    report(
        "S14 — torn index line (crash window)",
        ["observable", "value"],
        [
            ["index lines kept", str(len(lines) - 1)],
            ["restored jobs", "0 (uncommitted run ignored)"],
        ],
    )


def test_s14_federation_is_lossless_relabelling():
    """Merged exposition = every instance sample, relabelled, linted."""
    with JobManager(runners=1) as first:
        scenario = build_scenario(SCENARIO)
        job = first.submit(
            scenario.database,
            corpus=scenario.corpus,
            config={"expert": scenario.expert},
        )
        first.result(job.id, timeout=120)
        text_a = render_metrics(first, streams_active=1)
    with JobManager(runners=1) as second:
        text_b = render_metrics(second)

    start = time.perf_counter()
    merged = merge_expositions({"a:1": text_a, "b:2": text_b})
    merge_ms = (time.perf_counter() - start) * 1000
    problems = lint_exposition(merged)
    assert problems == [], f"federated exposition fails lint: {problems}"

    def census(text):
        return sum(len(f.samples) for f in parse_exposition(text))

    merged_families = parse_exposition(merged)
    fleet_own = sum(
        len(f.samples)
        for f in merged_families
        if f.name.startswith("repro_fleet_")
    )
    assert census(merged) - fleet_own == census(text_a) + census(text_b), (
        "federation dropped or invented samples"
    )
    for family in merged_families:
        for labels, _value in family.samples:
            if not family.name.startswith("repro_fleet_instances"):
                assert "instance" in labels, (
                    f"{family.name} sample lost its instance label"
                )
    report(
        "S14 — two-instance federation merge",
        ["observable", "value"],
        [
            ["instance a samples", str(census(text_a))],
            ["instance b samples", str(census(text_b))],
            ["merged samples", str(census(merged))],
            ["merge ms", f"{merge_ms:.2f}"],
            ["lint problems", "0"],
        ],
    )
