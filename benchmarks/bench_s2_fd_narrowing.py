"""S2 — RHS-Discovery's candidate narrowing vs full lattice FD discovery.

RHS-Discovery tests only ``|LHS ∪ H| × |T|`` dependencies, with ``T``
pruned by the key and not-null rules; classical FD discovery searches
the whole LHS lattice of every relation.  Beyond cost, the paper's §5
point is *selectivity*: exhaustive discovery surfaces dependencies like
``zip-code -> state`` that are mere integrity constraints, while the
method only tests identifiers programs navigate with.

Expected shape: the lattice candidate count exceeds the method's FD
tests by well over an order of magnitude, and on the paper example the
baseline reports many non-key FDs of which only the two meaningful ones
are elicited by the method.
"""


from benchmarks.conftest import report
from repro.baselines import NaiveFDBaseline
from repro.core import DBREPipeline, ScriptedExpert
from repro.evaluation.metrics import score_fds
from repro.workloads.paper_example import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario


def test_s2_narrowing_on_paper_example(benchmark):
    pipeline2 = DBREPipeline(
        build_paper_database(), ScriptedExpert(paper_expert_script())
    )
    result2 = pipeline2.run(corpus=paper_program_corpus(), translate=False)
    # the working copy keeps the per-kind counters; compare FD tests to
    # the lattice's FD candidates, like for like
    method_fd_tests = result2.restructured.counter.fd_checks

    baseline = NaiveFDBaseline(build_paper_database(), max_lhs_size=2)
    baseline_result = benchmark(baseline.run)
    non_key = baseline_result.non_key_fds(build_paper_database())

    report(
        "S2: dependency-test volume, method vs lattice (paper example)",
        ["quantity", "method", "lattice baseline"],
        [
            ["FD tests / candidates", method_fd_tests,
             baseline_result.candidates_examined],
            ["FDs reported", len(result2.fds), len(baseline_result.fds)],
            ["non-key FDs to triage", len(result2.fds), len(non_key)],
            ["zip-code -> state reported", "no",
             "yes" if any("zip-code" in fd.lhs for fd in non_key) else "no"],
        ],
    )
    assert baseline_result.candidates_examined > 10 * method_fd_tests
    assert any("zip-code" in fd.lhs for fd in non_key)
    assert all("zip-code" not in fd.lhs for fd in result2.fds)


SIZES = [4, 8, 12]


def test_s2_narrowing_sweep(benchmark):
    rows = []
    last = None
    for n in SIZES:
        scenario = build_scenario(
            ScenarioConfig(
                seed=400 + n,
                n_entities=n,
                n_one_to_many=n - 1,
                merges=2,
                parent_rows=15,
            )
        )
        pipeline = DBREPipeline(scenario.database, scenario.expert)
        result = pipeline.run(corpus=scenario.corpus, translate=False)
        baseline = NaiveFDBaseline(scenario.database, max_lhs_size=2)
        baseline_result = baseline.run()
        pr = score_fds(result.fds, scenario.truth.true_fds)
        rows.append(
            [
                n,
                result.extension_queries,
                baseline_result.candidates_examined,
                f"{pr.recall:.2f}",
                len(baseline_result.fds),
            ]
        )
        assert pr.recall == 1.0
        last = scenario
    report(
        "S2: extension queries (method) vs lattice candidates, sweeping size",
        ["entities", "method queries", "lattice candidates",
         "method FD recall", "lattice FDs reported"],
        rows,
    )
    pipeline = DBREPipeline(last.database, last.expert)
    benchmark(pipeline.run, corpus=last.corpus, translate=False)
