"""E5 — §6.2.2's functional dependencies F and final hidden set H.

Paper artifacts:

    F = {Department: emp -> skill, proj;
         Assignment: proj -> project-name}
    H = {HEmployee.{no}, Assignment.{dep}}

plus the narrated pruning for Department.emp: dep (key) and location
(not null, while emp is nullable) leave the candidate set; skill and
proj remain and both dependencies hold.
"""

from benchmarks.conftest import check_rows, report
from repro.core import INDDiscovery, LHSDiscovery, RHSDiscovery, ScriptedExpert
from repro.relational.attribute import AttributeRef
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)


def test_e5_rhs_discovery(benchmark, expected):
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    ind_result = INDDiscovery(db, expert).run(paper_equijoins())
    lhs_result = LHSDiscovery(db.schema, ind_result.s_names).run(ind_result.inds)
    step = RHSDiscovery(db, expert)

    result = benchmark(step.run, lhs_result.lhs, lhs_result.hidden)
    check_rows(
        "E5: RHS-Discovery output",
        [
            ("F", set(expected.fds), set(result.fds)),
            ("H", set(expected.hidden_after_rhs), set(result.hidden)),
        ],
    )

    dept = next(
        o for o in result.outcomes
        if o.ref == AttributeRef("Department", "emp")
    )
    report(
        "E5: §6.2.2 narrated pruning for Department.emp",
        ["step", "paper", "measured"],
        [
            ["pruned (key)", "dep", ", ".join(dept.pruned_keys)],
            ["pruned (not null)", "location", ", ".join(dept.pruned_not_null)],
            ["candidates", "skill, proj", ", ".join(dept.candidates)],
            ["accepted", "skill, proj", ", ".join(dept.accepted)],
        ],
    )
    assert dept.pruned_keys == ("dep",)
    assert dept.pruned_not_null == ("location",)
    assert set(dept.accepted) == {"skill", "proj"}
