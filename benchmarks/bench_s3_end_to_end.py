"""S3 — end-to-end recovery quality vs corruption and query coverage.

Sweeps the two realistic degradation axes on synthetic scenarios with
known ground truth:

- *corruption rate*: the fraction of foreign-key paths whose values were
  damaged (the paper's dirty legacy extensions) — with the oracle expert
  answering NEI/enforce questions from domain knowledge, recall stays
  high; with the cautious default expert it falls with corruption;
- *query coverage*: the fraction of navigation paths the application
  programs actually exercise — dependencies no program navigates are
  invisible to the method (its stated scope), so recall tracks coverage
  while precision stays at 1.0.
"""


from benchmarks.conftest import report
from repro.core import DBREPipeline
from repro.core.expert import Expert
from repro.evaluation.metrics import score_fds, score_inds
from repro.evaluation.schema_match import score_schema_recovery
from repro.workloads.scenario import ScenarioConfig, build_scenario

BASE = dict(n_entities=8, n_one_to_many=7, merges=2, parent_rows=20)


def _run(seed, expert=None, **overrides):
    config = ScenarioConfig(seed=seed, **{**BASE, **overrides})
    scenario = build_scenario(config)
    chosen = expert if expert is not None else scenario.expert
    result = DBREPipeline(scenario.database, chosen).run(corpus=scenario.corpus)
    return scenario, result


def test_s3_corruption_sweep(benchmark):
    rows = []
    for rate in (0.0, 0.25, 0.5, 1.0):
        scenario, oracle_result = _run(
            500, corruption_ind_rate=rate, corruption_row_rate=0.12
        )
        _, cautious_result = _run(
            500, expert=Expert(),
            corruption_ind_rate=rate, corruption_row_rate=0.12,
        )
        oracle_ind = score_inds(oracle_result.inds, scenario.truth.true_inds)
        cautious_ind = score_inds(cautious_result.inds, scenario.truth.true_inds)
        oracle_fd = score_fds(oracle_result.fds, scenario.truth.true_fds)
        recovery = score_schema_recovery(
            scenario.truth, oracle_result.restructured
        )
        rows.append(
            [
                f"{rate:.2f}",
                len(scenario.corruption.corrupted_inds),
                f"{oracle_ind.recall:.2f}",
                f"{cautious_ind.recall:.2f}",
                f"{oracle_fd.recall:.2f}",
                f"{recovery.recovery_rate:.2f}",
            ]
        )
    report(
        "S3: recovery vs corruption (oracle vs cautious expert)",
        [
            "IND corruption rate", "INDs corrupted",
            "IND recall (oracle)", "IND recall (cautious)",
            "FD recall (oracle)", "schema recovery (oracle)",
        ],
        rows,
    )
    # clean run is perfect; cautious expert degrades under corruption
    assert rows[0][2] == "1.00" and rows[0][5] == "1.00"
    assert float(rows[-1][3]) <= float(rows[0][3])

    benchmark(
        lambda: _run(500, corruption_ind_rate=0.5, corruption_row_rate=0.12)
    )


def test_s3_coverage_sweep(benchmark):
    from repro.dependencies.ind_inference import transitive_closure_inds

    rows = []
    recalls = []
    for coverage in (0.25, 0.5, 0.75, 1.0):
        scenario, result = _run(600, coverage=coverage)
        ind_pr = score_inds(result.inds, scenario.truth.true_inds)
        fd_pr = score_fds(result.fds, scenario.truth.true_fds)
        recalls.append(ind_pr.recall)
        # an elicited IND is *spurious* only if it is neither a ground
        # truth, nor implied by it, nor the reverse of one (both
        # directions are elicited when the value sets coincide)
        truth = set(scenario.truth.true_inds)
        credited = truth | set(transitive_closure_inds(truth)) | {
            ind.reversed() for ind in truth
        }
        spurious = [i for i in result.inds if i not in credited]
        rows.append(
            [
                f"{coverage:.2f}",
                len(result.equijoins),
                f"{ind_pr.recall:.2f}",
                len(spurious),
                f"{fd_pr.recall:.2f}",
            ]
        )
        assert not spurious                 # queries never lie
    report(
        "S3: recovery vs program coverage of the navigation paths",
        ["coverage", "|Q|", "IND recall", "spurious INDs", "FD recall"],
        rows,
    )
    assert recalls[-1] == 1.0
    assert recalls[0] < recalls[-1]          # coverage is the bottleneck

    benchmark(lambda: _run(600, coverage=0.5))
