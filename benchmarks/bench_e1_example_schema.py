"""E1 — §5 input schema: the sets K and N, and the normal-form labels.

Paper artifact: the constraint sets computed from the data dictionary

    K = {Person.{id}, HEmployee.{no,date}, Department.{dep},
         Assignment.{emp,dep,proj}}
    N = {Department.location, Person.id, HEmployee.no, HEmployee.date,
         Department.dep, Assignment.dep, Assignment.emp, Assignment.proj}

and the per-relation normal forms annotated in §5 (Person 3NF,
HEmployee 3NF, Department 2NF, Assignment 1NF).
"""

from benchmarks.conftest import check_rows
from repro.dependencies.fd import FunctionalDependency
from repro.normalization import schema_normal_forms


def _kn(db):
    return db.schema.key_set(), db.schema.not_null_set()


def test_e1_k_and_n_sets(benchmark, paper_db, expected):
    k, n = benchmark(_kn, paper_db)
    check_rows(
        "E1: dictionary-derived constraint sets",
        [
            ("|K|", len(expected.key_set), len(k)),
            ("K", set(expected.key_set), set(k)),
            ("|N|", len(expected.not_null_set), len(n)),
            ("N", set(expected.not_null_set), set(n)),
        ],
    )


def test_e1_normal_form_annotations(benchmark, paper_db):
    embedded = [
        FunctionalDependency("Department", ("emp",), ("skill", "proj")),
        FunctionalDependency("Assignment", ("proj",), ("project-name",)),
    ]
    forms = benchmark(schema_normal_forms, paper_db.schema, embedded)
    check_rows(
        "E1: §5 normal-form annotations",
        [
            # the paper labels Person/HEmployee 3NF; our diagnosis may
            # return the (stronger) BCNF label — compare at 3NF level
            ("Person >= 3NF", True, forms["Person"].value in ("3NF", "BCNF")),
            ("HEmployee >= 3NF", True, forms["HEmployee"].value in ("3NF", "BCNF")),
            ("Department", "2NF", forms["Department"].value),
            ("Assignment", "1NF", forms["Assignment"].value),
        ],
    )
