"""The §5 fixture itself: the data must realize the paper's narration."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.inference import fd_satisfied_in
from repro.programs.embedded import extract_sql_units
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_equijoins,
    paper_program_corpus,
)


class TestSchema:
    def test_k_and_n_match_paper(self, paper_db):
        assert tuple(paper_db.schema.key_set()) == PAPER_EXPECTED.key_set
        assert tuple(paper_db.schema.not_null_set()) == PAPER_EXPECTED.not_null_set

    def test_declared_constraints_hold(self, paper_db):
        paper_db.validate()


class TestCountShapes:
    def test_hemployee_person_inclusion_shape(self, paper_db):
        # the paper's 2200 / 1550 / 1550, scaled to 22 / 15 / 15
        assert paper_db.count_distinct("Person", ("id",)) == 22
        assert paper_db.count_distinct("HEmployee", ("no",)) == 15
        assert paper_db.join_count("HEmployee", ("no",), "Person", ("id",)) == 15

    def test_assignment_department_nei_shape(self, paper_db):
        # the paper's 45 / 40 / 30 NEI, scaled to 9 / 8 / 6
        assert paper_db.count_distinct("Assignment", ("dep",)) == 9
        assert paper_db.count_distinct("Department", ("dep",)) == 8
        assert paper_db.join_count("Assignment", ("dep",), "Department", ("dep",)) == 6

    def test_remaining_joins_are_inclusions(self, paper_db):
        assert paper_db.inclusion_holds("Department", ("emp",), "HEmployee", ("no",))
        assert paper_db.inclusion_holds("Assignment", ("emp",), "HEmployee", ("no",))
        assert paper_db.inclusion_holds("Department", ("proj",), "Assignment", ("proj",))


class TestFDLandscape:
    @pytest.mark.parametrize(
        "fd_text",
        [
            "Department: emp -> skill",
            "Department: emp -> proj",
            "Assignment: proj -> project-name",
            "Person: zip-code -> state",        # holds but must not be elicited
        ],
    )
    def test_holding_fds(self, paper_db, fd_text):
        assert fd_satisfied_in(paper_db, FD.parse(fd_text))

    @pytest.mark.parametrize(
        "fd_text",
        [
            "HEmployee: no -> salary",
            "Assignment: emp -> date",
            "Assignment: emp -> project-name",
            "Assignment: proj -> date",
            "Assignment: dep -> date",
            "Assignment: dep -> project-name",
            "Department: proj -> emp",
            "Department: proj -> skill",
        ],
    )
    def test_failing_fds(self, paper_db, fd_text):
        assert not fd_satisfied_in(paper_db, FD.parse(fd_text))

    def test_department_emp_has_nulls(self, paper_db):
        # §6.2.2's narration depends on emp being nullable *and* null
        rows = [r for r in paper_db.table("Department") if r.has_null(("emp",))]
        assert len(rows) == 2


class TestCorpus:
    def test_five_programs_three_languages(self):
        corpus = paper_program_corpus()
        assert len(corpus) == 5
        languages = {p.language for p in corpus}
        assert languages == {"sql", "cobol", "c"}

    def test_each_program_contains_sql(self):
        corpus = paper_program_corpus()
        for program in corpus:
            assert extract_sql_units(program), program.name

    def test_declared_q_matches_expected(self):
        assert tuple(paper_equijoins()) == PAPER_EXPECTED.equijoins

    def test_database_is_fresh_per_call(self):
        a = build_paper_database()
        b = build_paper_database()
        a.insert("Person", [99, "x", "y", 1, "69100", "Rhone"])
        assert len(b.table("Person")) == 22
