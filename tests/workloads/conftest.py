"""Workload-test fixtures: reproducibility guard for the generator stack.

Every generator in :mod:`repro.workloads` draws from its own
``random.Random(config.seed)`` instance, so scenario content never
depends on global state.  The autouse fixture below re-seeds the
*global* ``random`` module anyway: if a generator (or a future edit to
one) accidentally reaches for the module-level functions, every test
still sees the same stream, and the differential/scoring suites stay
deterministic instead of flaking.
"""

from __future__ import annotations

import random

import pytest

WORKLOAD_TEST_SEED = 0x5EED


@pytest.fixture(autouse=True)
def seeded_global_random():
    """Pin the global RNG for the duration of each workload test."""
    state = random.getstate()
    random.seed(WORKLOAD_TEST_SEED)
    yield
    random.setstate(state)
