"""Data generation invariants and corruption injection."""

import pytest

from repro.dependencies.inference import fd_satisfied_in
from repro.dependencies.ind_inference import ind_satisfied
from repro.workloads.corruption import CorruptionInjector
from repro.workloads.data_generator import DataConfig, DataGenerator
from repro.workloads.denormalizer import DenormalizationPlan, Denormalizer
from repro.workloads.er_generator import ERGenerator, GeneratorConfig
from repro.workloads.mapping import map_er_to_relational


@pytest.fixture(scope="module")
def truth():
    spec = ERGenerator(GeneratorConfig(seed=5, n_entities=6, n_one_to_many=5)).generate()
    mapping = map_er_to_relational(spec)
    return Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=2))


@pytest.fixture
def clean_db(truth):
    return DataGenerator(truth, DataConfig(seed=3, parent_rows=15)).generate()


class TestDataGeneratorInvariants:
    def test_declared_constraints_hold(self, clean_db):
        clean_db.validate()

    def test_ground_truth_fds_hold(self, truth, clean_db):
        for fd in truth.true_fds:
            assert fd_satisfied_in(clean_db, fd), f"{fd!r} broken by generator"

    def test_ground_truth_inds_hold(self, truth, clean_db):
        for ind in truth.true_inds:
            assert ind_satisfied(clean_db, ind), f"{ind!r} broken by generator"

    def test_children_strictly_bigger_than_parents(self, truth, clean_db):
        """Depth-based sizing: every child outnumbers each of its parents
        (otherwise a covering foreign key would be spuriously unique)."""
        spec = truth.er
        merged = {m.parent for m in truth.merges}
        anchor = {m.child: m for m in truth.merges}

        def size_of(name):
            if name in merged:
                m = next(m for m in truth.merges if m.parent == name)
                return clean_db.count_distinct(m.child, (m.fk_attr,))
            return len(clean_db.table(name))

        for rel in spec.one_to_many:
            assert size_of(rel.child) > size_of(rel.parent), (
                rel.child, rel.parent,
            )

    def test_no_spurious_fk_to_own_attr_fd(self, truth, clean_db):
        """The anchoring fk must not accidentally determine the child's
        own attributes (children repeat parents)."""
        from repro.dependencies.fd import FunctionalDependency

        for merge in truth.merges:
            child = truth.denormalized_schema.relation(merge.child)
            own = [
                a for a in child.attribute_names
                if a.startswith(merge.child + "_") and not a.endswith("_id")
            ]
            if not own:
                continue
            fd = FunctionalDependency(merge.child, (merge.fk_attr,), (own[0],))
            assert not fd_satisfied_in(clean_db, fd)

    def test_deterministic(self, truth):
        a = DataGenerator(truth, DataConfig(seed=3)).generate()
        b = DataGenerator(truth, DataConfig(seed=3)).generate()
        for table_a, table_b in zip(a.tables(), b.tables()):
            assert [r.values for r in table_a] == [r.values for r in table_b]


class TestCorruption:
    def test_breaks_chosen_inds(self, truth, clean_db):
        injector = CorruptionInjector(seed=1, ind_rate=1.0, row_rate=0.2)
        report = injector.corrupt(clean_db, truth.true_inds)
        assert report.corrupted_inds
        assert report.rows_touched > 0
        for ind in report.corrupted_inds:
            assert not ind_satisfied(clean_db, ind)

    def test_intersection_stays_nonempty(self, truth, clean_db):
        # corruption creates NEIs, not empty intersections
        injector = CorruptionInjector(seed=1, ind_rate=1.0, row_rate=0.2)
        report = injector.corrupt(clean_db, truth.true_inds)
        for ind in report.corrupted_inds:
            common = clean_db.join_count(
                ind.lhs_relation, ind.lhs_attrs, ind.rhs_relation, ind.rhs_attrs
            )
            assert common > 0

    def test_zero_rate_touches_nothing(self, truth, clean_db):
        injector = CorruptionInjector(seed=1, ind_rate=0.0)
        report = injector.corrupt(clean_db, truth.true_inds)
        assert report.rows_touched == 0
        for ind in truth.true_inds:
            assert ind_satisfied(clean_db, ind)

    def test_deterministic_per_seed(self, truth):
        a = DataGenerator(truth, DataConfig(seed=3)).generate()
        b = DataGenerator(truth, DataConfig(seed=3)).generate()
        CorruptionInjector(seed=7, ind_rate=1.0).corrupt(a, truth.true_inds)
        CorruptionInjector(seed=7, ind_rate=1.0).corrupt(b, truth.true_inds)
        for table_a, table_b in zip(a.tables(), b.tables()):
            assert [r.values for r in table_a] == [r.values for r in table_b]
