"""ER generation, mapping, denormalization: structure and ground truth."""

import pytest

from repro.dependencies.ind import InclusionDependency as IND
from repro.workloads.denormalizer import DenormalizationPlan, Denormalizer
from repro.workloads.er_generator import ERGenerator, GeneratorConfig
from repro.workloads.mapping import map_er_to_relational


@pytest.fixture
def spec():
    return ERGenerator(GeneratorConfig(seed=5, n_entities=6, n_one_to_many=5)).generate()


class TestERGenerator:
    def test_deterministic_per_seed(self):
        a = ERGenerator(GeneratorConfig(seed=9)).generate()
        b = ERGenerator(GeneratorConfig(seed=9)).generate()
        assert [e.name for e in a.entities] == [e.name for e in b.entities]
        assert a.one_to_many == b.one_to_many

    def test_different_seeds_differ(self):
        a = ERGenerator(GeneratorConfig(seed=1)).generate()
        b = ERGenerator(GeneratorConfig(seed=2)).generate()
        assert [e.name for e in a.entities] != [e.name for e in b.entities]

    def test_attribute_names_globally_prefixed(self, spec):
        for entity in spec.entities:
            for attr in entity.all_attrs:
                assert attr.startswith(entity.name)

    def test_reference_graph_acyclic(self, spec):
        order = {e.name: i for i, e in enumerate(spec.entities)}
        for rel in spec.one_to_many:
            assert order[rel.parent] < order[rel.child]

    def test_requested_counts(self, spec):
        assert len(spec.entities) == 6
        assert len(spec.one_to_many) == 5

    def test_to_eer_is_valid(self, spec):
        eer = spec.to_eer()
        eer.validate()
        assert len(eer.entities) == 6


class TestMapping:
    def test_one_relation_per_entity_plus_links(self, spec):
        mapping = map_er_to_relational(spec)
        expected = len(spec.entities) + len(spec.many_to_many)
        assert len(mapping.schema) == expected

    def test_fk_attributes_and_ric(self, spec):
        mapping = map_er_to_relational(spec)
        for rel in spec.one_to_many:
            parent_key = spec.entity(rel.parent).key_attr
            assert (
                IND(rel.child, (rel.fk_attr,), rel.parent, (parent_key,))
                in mapping.ric
            )
            assert mapping.fk_edges[rel.fk_attr] == (rel.child, rel.parent)

    def test_keys_declared(self, spec):
        mapping = map_er_to_relational(spec)
        for entity in spec.entities:
            assert mapping.schema.relation(entity.name).is_key([entity.key_attr])

    def test_link_relations_have_composite_keys(self, spec):
        mapping = map_er_to_relational(spec)
        for link in spec.many_to_many:
            rel = mapping.schema.relation(link.name)
            assert len(tuple(rel.primary_key().names)) == 2


class TestDenormalizer:
    def test_merge_embeds_payload_and_drops_parent(self, spec):
        mapping = map_er_to_relational(spec)
        truth = Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=2))
        assert len(truth.merges) == 2
        for merge in truth.merges:
            assert merge.parent not in truth.denormalized_schema
            child = truth.denormalized_schema.relation(merge.child)
            for attr in merge.payload:
                assert child.has_attribute(attr)
                assert child.attribute(attr).nullable

    def test_ground_truth_fd_or_hidden_per_merge(self, spec):
        mapping = map_er_to_relational(spec)
        truth = Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=2))
        assert len(truth.true_fds) + len(truth.true_hidden) == len(truth.merges)
        for fd in truth.true_fds:
            merge = next(m for m in truth.merges if m.child == fd.relation)
            assert tuple(fd.lhs) == (merge.fk_attr,)
            assert set(fd.rhs) == set(merge.payload)

    def test_explicit_merge_plan(self, spec):
        mapping = map_er_to_relational(spec)
        edge = spec.one_to_many[0]
        truth = Denormalizer(spec, mapping).run(
            DenormalizationPlan(explicit=((edge.parent, edge.child),))
        )
        assert truth.merges[0].parent == edge.parent

    def test_join_edges_avoid_dropped_relations(self, spec):
        mapping = map_er_to_relational(spec)
        truth = Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=2))
        live = set(truth.denormalized_schema.relation_names)
        for edge in truth.join_edges:
            assert edge.left_relation in live
            assert edge.right_relation in live
        for ind in truth.true_inds:
            assert ind.lhs_relation in live and ind.rhs_relation in live

    def test_object_names_recorded(self, spec):
        mapping = map_er_to_relational(spec)
        truth = Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=1))
        merge = truth.merges[0]
        assert truth.object_names[(merge.child, merge.fk_attr)] == merge.parent
