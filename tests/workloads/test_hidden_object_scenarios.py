"""Synthetic scenarios with genuine hidden objects (empty-RHS case).

A merged parent that carried *no* payload (only its key) leaves nothing
for RHS-Discovery to find: the identifier has an empty right-hand side
and only the expert's conceptualization (step iv) recovers the object —
the paper's HEmployee/Employee situation, generated synthetically.
"""

import pytest

from repro.core import DBREPipeline
from repro.evaluation.metrics import score_refs
from repro.evaluation.schema_match import score_schema_recovery
from repro.relational.attribute import AttributeRef
from repro.workloads.data_generator import DataConfig, DataGenerator
from repro.workloads.denormalizer import DenormalizationPlan, Denormalizer
from repro.workloads.er_generator import (
    EntitySpec,
    ERSpec,
    GeneratorConfig,
    OneToManySpec,
)
from repro.workloads.mapping import map_er_to_relational
from repro.workloads.oracle import OracleExpert
from repro.workloads.query_generator import QueryWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def hidden_object_scenario():
    """Hand-built spec: `badge` is a bare identifier (no attributes),
    referenced by two children; merging it into `guard` leaves a hidden
    object behind."""
    spec = ERSpec(
        entities=[
            EntitySpec("badge", "badge_id", ()),              # no payload!
            EntitySpec("guard", "guard_id", ("guard_name",)),
            EntitySpec("visit", "visit_id", ("visit_note",)),
        ],
        one_to_many=[
            OneToManySpec("guard", "badge", "guard_badge_id"),
            OneToManySpec("visit", "badge", "visit_badge_id"),
        ],
    )
    mapping = map_er_to_relational(spec)
    truth = Denormalizer(spec, mapping).run(
        DenormalizationPlan(explicit=(("badge", "guard"),))
    )
    database = DataGenerator(truth, DataConfig(seed=5, parent_rows=12)).generate()
    corpus = QueryWorkloadGenerator(WorkloadConfig(seed=6)).generate(
        truth.join_edges
    )
    return truth, database, corpus


class TestGroundTruth:
    def test_merge_left_a_hidden_object(self, hidden_object_scenario):
        truth, _db, _corpus = hidden_object_scenario
        assert truth.true_fds == []
        assert truth.true_hidden == [AttributeRef("guard", "guard_badge_id")]

    def test_sibling_edge_points_at_anchor(self, hidden_object_scenario):
        truth, _db, _corpus = hidden_object_scenario
        assert any(
            edge.involves("visit") and edge.involves("guard")
            for edge in truth.join_edges
        )


class TestRecovery:
    @pytest.fixture(scope="class")
    def result(self, hidden_object_scenario):
        truth, database, corpus = hidden_object_scenario
        return DBREPipeline(database, OracleExpert(truth)).run(corpus=corpus)

    def test_hidden_object_conceptualized(self, hidden_object_scenario, result):
        truth, _db, _corpus = hidden_object_scenario
        pr = score_refs(result.hidden, truth.true_hidden)
        assert pr.recall == 1.0 and pr.precision == 1.0

    def test_badge_relation_materialized(self, hidden_object_scenario, result):
        # the oracle names the recovered object after the original entity
        assert "Badge" in result.restructured.schema
        badge = result.restructured.schema.relation("Badge")
        assert badge.is_key(["guard_badge_id"])

    def test_schema_recovery_full(self, hidden_object_scenario, result):
        truth, _db, _corpus = hidden_object_scenario
        recovery = score_schema_recovery(truth, result.restructured)
        assert recovery.recovery_rate == 1.0

    def test_rics_anchor_on_the_new_object(self, hidden_object_scenario, result):
        lhs_relations = {
            (ind.lhs_relation, ind.rhs_relation) for ind in result.ric
        }
        assert ("guard", "Badge") in lhs_relations
        assert ("visit", "Badge") in lhs_relations


class TestGeneratorSupportsBareEntities:
    def test_min_attrs_zero(self):
        from repro.workloads.er_generator import ERGenerator

        spec = ERGenerator(
            GeneratorConfig(seed=3, n_entities=6, min_attrs=0, max_attrs=1)
        ).generate()
        assert any(not e.attrs for e in spec.entities)
