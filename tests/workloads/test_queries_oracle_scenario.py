"""Query workload rendering, the oracle expert, and full scenarios."""

import pytest

from repro.core.expert import FDContext, ForceInclusion, IgnoreIntersection, NEIContext
from repro.dependencies.fd import FunctionalDependency as FD
from repro.programs.equijoin import EquiJoin
from repro.programs.extractor import extract_equijoins
from repro.relational.attribute import AttributeRef
from repro.workloads.query_generator import QueryWorkloadGenerator, WorkloadConfig
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig(seed=7))


class TestQueryWorkload:
    def test_every_edge_recoverable_from_programs(self, scenario):
        report = extract_equijoins(
            scenario.corpus, scenario.truth.denormalized_schema
        )
        assert set(report.joins) == set(scenario.truth.join_edges)
        assert not report.skipped

    def test_coverage_reduces_edges(self, scenario):
        generator = QueryWorkloadGenerator(WorkloadConfig(seed=1, coverage=0.5))
        corpus = generator.generate(scenario.truth.join_edges)
        report = extract_equijoins(corpus, scenario.truth.denormalized_schema)
        full = len(scenario.truth.join_edges)
        assert 0 < len(report.joins) <= max(1, full // 2) + 1

    def test_all_five_forms_rendered(self):
        generator = QueryWorkloadGenerator()
        edge = EquiJoin("A", ("x",), "B", ("y",))
        forms = {generator.render_query(edge, i) for i in range(5)}
        assert len(forms) == 5
        joined = " ".join(forms).upper()
        assert "IN (" in joined and "EXISTS" in joined and "INTERSECT" in joined
        assert "JOIN" in joined

    def test_multi_attribute_edge_falls_back_to_intersect(self):
        generator = QueryWorkloadGenerator()
        edge = EquiJoin("A", ("x", "y"), "B", ("u", "v"))
        sql = generator.render_query(edge, form=2)   # IN needs one column
        assert "INTERSECT" in sql.upper()
        # and the fallback still extracts to the same edge
        from repro.programs.extractor import EquiJoinExtractor
        from repro.relational import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema.build("A", ["x", "y"], key=["x", "y"]),
                RelationSchema.build("B", ["u", "v"], key=["u", "v"]),
            ]
        )
        joins = EquiJoinExtractor(schema).extract_from_sql(sql)
        assert joins == [edge]

    def test_mixed_languages_emitted(self):
        generator = QueryWorkloadGenerator(WorkloadConfig(queries_per_program=1))
        edges = [EquiJoin("A", (f"x{i}",), "B", (f"y{i}",)) for i in range(10)]
        corpus = generator.generate(edges)
        extensions = {name.rsplit(".", 1)[1] for name in corpus.names}
        assert {"sql", "cob", "pc"} <= extensions


class TestOracleExpert:
    def test_nei_forced_in_true_direction(self, scenario):
        oracle = scenario.expert
        ind = scenario.truth.true_inds[0]
        join = EquiJoin(
            ind.lhs_relation, ind.lhs_attrs, ind.rhs_relation, ind.rhs_attrs
        )
        decision = oracle.decide_nei(NEIContext(join, 10, 10, 5))
        assert isinstance(decision, ForceInclusion)
        (left_rel, left_attrs), _ = join.sides()
        expected = (
            "left_in_right"
            if (ind.lhs_relation, tuple(ind.lhs_attrs)) == (left_rel, tuple(left_attrs))
            else "right_in_left"
        )
        assert decision.direction == expected

    def test_unknown_join_ignored(self, scenario):
        decision = scenario.expert.decide_nei(
            NEIContext(EquiJoin("X", ("a",), "Y", ("b",)), 5, 5, 2)
        )
        assert isinstance(decision, IgnoreIntersection)

    def test_validates_only_true_payload(self, scenario):
        oracle = scenario.expert
        true_fd = scenario.truth.true_fds[0]
        assert oracle.validate_fd(true_fd)
        single = FD(true_fd.relation, tuple(true_fd.lhs), (tuple(true_fd.rhs)[0],))
        assert oracle.validate_fd(single)
        assert not oracle.validate_fd(FD("ghost", ("a",), ("b",)))

    def test_enforces_only_true_payload(self, scenario):
        oracle = scenario.expert
        true_fd = scenario.truth.true_fds[0]
        ctx = FDContext(true_fd, 0.8)
        assert oracle.enforce_fd(ctx)
        assert not oracle.enforce_fd(FDContext(FD("ghost", ("a",), ("b",)), 0.8))

    def test_hidden_objects_from_truth(self, scenario):
        oracle = scenario.expert
        for ref in scenario.truth.true_hidden:
            assert oracle.conceptualize_hidden_object(ref)
        assert not oracle.conceptualize_hidden_object(AttributeRef("nope", "x"))

    def test_names_restored_from_entities(self, scenario):
        oracle = scenario.expert
        merge = scenario.truth.merges[0]
        fd = next(
            (f for f in scenario.truth.true_fds if f.relation == merge.child),
            None,
        )
        if fd is not None:
            name = oracle.name_fd_relation(fd, ())
            assert name.lower() == merge.parent.lower()


class TestScenario:
    def test_summary_mentions_sizes(self, scenario):
        text = scenario.summary()
        assert "relations" in text and "merges" in text

    def test_deterministic(self):
        a = build_scenario(ScenarioConfig(seed=7))
        b = build_scenario(ScenarioConfig(seed=7))
        assert a.truth.join_edges == b.truth.join_edges
        assert a.corpus.names == b.corpus.names

    def test_corruption_option(self):
        dirty = build_scenario(
            ScenarioConfig(seed=7, corruption_ind_rate=1.0, corruption_row_rate=0.2)
        )
        assert dirty.corruption.corrupted_inds
