"""Link merges: the 1NF-producing denormalization operator.

Folding a parent into an M:N link relation puts the payload behind a
*proper subset of the composite key* — a partial dependency, so the link
drops to 1NF exactly like the paper's Assignment relation.
"""

import pytest

from repro.core import DBREPipeline
from repro.dependencies.inference import fd_satisfied_in
from repro.evaluation.metrics import score_fds
from repro.evaluation.schema_match import score_schema_recovery
from repro.normalization import NormalForm, schema_normal_forms
from repro.workloads.denormalizer import DenormalizationPlan, Denormalizer
from repro.workloads.er_generator import ERGenerator, GeneratorConfig
from repro.workloads.mapping import map_er_to_relational
from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def scenario():
    # seed chosen so a link merge is actually available (asserted below)
    return build_scenario(
        ScenarioConfig(
            seed=4, n_entities=7, n_one_to_many=6, n_many_to_many=2,
            merges=1, link_merges=1,
        )
    )


@pytest.fixture(scope="module")
def link_merge(scenario):
    merges = [m for m in scenario.truth.merges if m.kind == "link"]
    assert merges, "fixture seed must yield a link merge"
    return merges[0]


class TestLinkMergeStructure:
    def test_link_relation_drops_to_1nf(self, scenario, link_merge):
        forms = schema_normal_forms(
            scenario.truth.denormalized_schema, scenario.truth.true_fds
        )
        assert forms[link_merge.child] == NormalForm.FIRST

    def test_anchor_fk_is_part_of_composite_key(self, scenario, link_merge):
        relation = scenario.truth.denormalized_schema.relation(link_merge.child)
        key = set(relation.primary_key().names)
        assert link_merge.fk_attr in key
        assert not relation.is_key([link_merge.fk_attr])

    def test_parent_dropped_and_payload_embedded(self, scenario, link_merge):
        assert link_merge.parent not in scenario.truth.denormalized_schema
        relation = scenario.truth.denormalized_schema.relation(link_merge.child)
        for attr in link_merge.payload:
            assert relation.has_attribute(attr)

    def test_ground_truth_fd_is_partial_dependency(self, scenario, link_merge):
        fd = next(
            f for f in scenario.truth.true_fds
            if f.relation == link_merge.child
        )
        assert tuple(fd.lhs) == (link_merge.fk_attr,)
        assert fd_satisfied_in(scenario.database, fd)

    def test_anchor_fk_not_accidentally_unique(self, scenario, link_merge):
        table = scenario.database.table(link_merge.child)
        distinct = scenario.database.count_distinct(
            link_merge.child, (link_merge.fk_attr,)
        )
        assert distinct < len(table)


class TestLinkMergeRecovery:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )

    def test_partial_dependency_recovered(self, scenario, result, link_merge):
        pr = score_fds(result.fds, scenario.truth.true_fds)
        assert pr.recall == 1.0 and pr.precision == 1.0

    def test_parent_relation_recovered(self, scenario, result, link_merge):
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        assert link_merge.parent in recovery.recovered

    def test_output_is_3nf(self, scenario, result):
        forms = schema_normal_forms(result.restructured.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())

    def test_link_keeps_its_composite_key(self, scenario, result, link_merge):
        relation = result.restructured.schema.relation(link_merge.child)
        original = scenario.truth.normalized.schema.relation(link_merge.child)
        assert set(relation.primary_key().names) == set(
            original.primary_key().names
        )


class TestPlanValidation:
    def test_explicit_link_merge(self):
        spec = ERGenerator(
            GeneratorConfig(seed=4, n_entities=7, n_one_to_many=6,
                            n_many_to_many=2)
        ).generate()
        mapping = map_er_to_relational(spec)
        link = spec.many_to_many[0]
        truth = Denormalizer(spec, mapping).run(
            DenormalizationPlan(explicit=((link.left, link.name),))
        )
        assert truth.merges[0].kind == "link"
        assert truth.merges[0].parent == link.left

    def test_link_must_reference_parent(self):
        spec = ERGenerator(
            GeneratorConfig(seed=4, n_entities=7, n_one_to_many=6,
                            n_many_to_many=2)
        ).generate()
        mapping = map_er_to_relational(spec)
        link = spec.many_to_many[0]
        outsider = next(
            e.name for e in spec.entities
            if e.name not in (link.left, link.right)
        )
        from repro.exceptions import ProcessError

        with pytest.raises(ProcessError):
            Denormalizer(spec, mapping).run(
                DenormalizationPlan(explicit=((outsider, link.name),))
            )
