"""The command-line interface."""

import json

import pytest

from repro.cli import load_database, main

SCHEMA_SQL = """
CREATE TABLE city (cid INT PRIMARY KEY, cname VARCHAR(20));
CREATE TABLE person (pid INT PRIMARY KEY, pname VARCHAR(20),
                     home INT, home_name VARCHAR(20));
INSERT INTO city VALUES (1, 'Lyon'), (2, 'Paris'), (3, 'Nice');
INSERT INTO person VALUES
    (10, 'a', 1, 'Lyon'), (11, 'b', 1, 'Lyon'), (12, 'c', 2, 'Paris'),
    (13, 'd', 3, 'Nice'), (14, 'e', 1, 'Lyon'), (15, 'f', 2, 'Paris');
"""

PROGRAM_SQL = "SELECT pname FROM person, city WHERE home = cid;\n"


@pytest.fixture
def workspace(tmp_path):
    schema = tmp_path / "schema.sql"
    schema.write_text(SCHEMA_SQL)
    programs = tmp_path / "programs"
    programs.mkdir()
    (programs / "report.sql").write_text(PROGRAM_SQL)
    return tmp_path


@pytest.fixture
def sqlite_workspace(workspace):
    """The same workspace, with the database saved as a SQLite file."""
    from repro.storage.sqlite_io import save_sqlite

    db = load_database(str(workspace / "schema.sql"))
    save_sqlite(db, str(workspace / "legacy.db"))
    return workspace


class TestLoadDatabase:
    def test_sql_script(self, workspace):
        db = load_database(str(workspace / "schema.sql"))
        assert len(db.table("person")) == 6

    def test_json_document(self, workspace, tmp_path):
        from repro.storage.serialize import database_to_dict, save_json

        db = load_database(str(workspace / "schema.sql"))
        path = str(tmp_path / "db.json")
        save_json(database_to_dict(db), path)
        restored = load_database(path)
        assert len(restored.table("city")) == 3

    def test_sqlite_file_uses_pushdown_backend(self, sqlite_workspace):
        from repro.backends import SQLiteBackend

        db = load_database(str(sqlite_workspace / "legacy.db"))
        assert isinstance(db.backend, SQLiteBackend)
        assert len(db.table("person")) == 6
        # K comes from the data dictionary, not from any .sql declaration
        assert {k.relation for k in db.schema.key_set()} == {"city", "person"}
        db.close()

    def test_backend_memory_materializes_sqlite_input(self, sqlite_workspace):
        from repro.backends import MemoryBackend

        db = load_database(str(sqlite_workspace / "legacy.db"), backend="memory")
        assert isinstance(db.backend, MemoryBackend)
        assert db.count_distinct("person", ("home",)) == 3

    def test_backend_sqlite_lifts_sql_script(self, workspace):
        from repro.backends import SQLiteBackend

        db = load_database(str(workspace / "schema.sql"), backend="sqlite")
        assert isinstance(db.backend, SQLiteBackend)
        assert db.count_distinct("city", ("cid",)) == 3
        db.close()


class TestCommands:
    def test_inspect(self, workspace, capsys):
        code = main(["inspect", str(workspace / "schema.sql"), "--statistics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "city.{cid}" in out
        assert "Statistics" in out

    def test_extract(self, workspace, capsys):
        code = main(
            ["extract", str(workspace / "schema.sql"), str(workspace / "programs")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "city[cid] >< person[home]" in out
        assert "report.sql" in out

    def test_run_with_outputs(self, workspace, capsys):
        report = workspace / "session.md"
        dot = workspace / "eer.dot"
        deps = workspace / "deps.json"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--report", str(report),
                "--dot", str(dot),
                "--dependencies", str(deps),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Restructured schema" in out
        assert "home -> home_name" in report.read_text()
        assert dot.read_text().startswith("graph")
        document = json.loads(deps.read_text())
        assert document["format"] == "repro/dependencies@1"
        assert document["functional"]

    def test_run_emits_migration_sql(self, workspace, capsys):
        sql_path = workspace / "migration.sql"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--sql", str(sql_path),
                "--sql-data",
            ]
        )
        assert code == 0
        script = sql_path.read_text()
        assert "CREATE TABLE" in script
        assert "FOREIGN KEY" in script
        assert "INSERT INTO" in script

    def test_inspect_sqlite_file(self, sqlite_workspace, capsys):
        code = main(["inspect", str(sqlite_workspace / "legacy.db")])
        assert code == 0
        out = capsys.readouterr().out
        assert "city.{cid}" in out            # K recovered from the dictionary
        assert "person.{pid}" in out

    def test_run_on_sqlite_file_matches_sql_script(self, sqlite_workspace, capsys):
        programs = str(sqlite_workspace / "programs")
        assert main(["run", str(sqlite_workspace / "schema.sql"), programs]) == 0
        from_script = capsys.readouterr().out
        assert main(["run", str(sqlite_workspace / "legacy.db"), programs]) == 0
        from_sqlite = capsys.readouterr().out

        def section(out, title):
            return out.split(title)[1]

        assert section(from_sqlite, "Restructured schema") == section(
            from_script, "Restructured schema"
        )

    def test_run_with_forced_memory_backend(self, sqlite_workspace, capsys):
        code = main(
            [
                "run",
                str(sqlite_workspace / "legacy.db"),
                str(sqlite_workspace / "programs"),
                "--backend", "memory",
            ]
        )
        assert code == 0
        assert "Restructured schema" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Ass-Dept" in out
        assert "Manager" in out

    def test_missing_file_is_an_error_not_a_traceback(self, capsys):
        code = main(["inspect", "/nonexistent/schema.sql"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_extract_reports_skipped_statements(self, workspace, capsys):
        (workspace / "programs" / "broken.sql").write_text(
            "SELECT FROM WHERE;;"
        )
        code = main(
            ["extract", str(workspace / "schema.sql"), str(workspace / "programs")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped" in captured.err
        # the good program's join is still reported
        assert "city[cid] >< person[home]" in captured.out

    def test_bad_sql_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("CREATE GARBAGE;")
        code = main(["inspect", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_programs_dir_is_an_error_not_a_traceback(
        self, workspace, capsys
    ):
        for command in ("extract", "run"):
            code = main(
                [command, str(workspace / "schema.sql"), str(workspace / "missing")]
            )
            assert code == 1
            err = capsys.readouterr().err
            assert "error:" in err
            assert "programs directory not found" in err


class TestObservabilityOutputs:
    def test_run_writes_trace_and_metrics(self, workspace, capsys):
        from repro.obs import METRICS_FORMAT, PHASE_NAMES, read_trace_jsonl

        trace_path = workspace / "run.trace.jsonl"
        metrics_path = workspace / "run.metrics.json"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        assert f"metrics written to {metrics_path}" in out

        records = read_trace_jsonl(str(trace_path))
        phase_names = [
            r["name"] for r in records
            if r.get("type") == "span" and r["kind"] == "phase"
        ]
        assert phase_names == list(PHASE_NAMES)
        assert any(r.get("type") == "event" for r in records)

        metrics = json.loads(metrics_path.read_text())
        assert metrics["format"] == METRICS_FORMAT
        assert set(metrics["phases"]) == set(PHASE_NAMES)
        assert metrics["totals"]["queries"] > 0
        # the metrics document is derived from the very same records
        from repro.obs import metrics_from_records

        assert metrics == metrics_from_records(records)

    def test_demo_accepts_observability_options(self, tmp_path, capsys):
        trace_path = tmp_path / "demo.trace.jsonl"
        assert main(["demo", "--trace", str(trace_path)]) == 0
        assert trace_path.exists()

    def test_trace_summarize_renders_the_span_tree(self, workspace, capsys):
        trace_path = workspace / "run.trace.jsonl"
        assert main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--trace", str(trace_path),
            ]
        ) == 0
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "- pipeline [pipeline]" in out
        assert "IND-Discovery [phase]" in out
        assert "# Primitives" in out

    def test_trace_summarize_rejects_a_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"hello": "world"}\n')
        assert main(["trace", "summarize", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_summarize_rejects_an_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_trace_summarize_rejects_a_truncated_file(self, workspace, capsys):
        trace_path = workspace / "run.trace.jsonl"
        assert main(["demo", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        lines = trace_path.read_text().splitlines()
        trace_path.write_text("\n".join(lines[:-1] + [lines[-1][:10]]))
        assert main(["trace", "summarize", str(trace_path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "invalid JSON" in err
        assert "Traceback" not in err

    def test_trace_summarize_rejects_a_wrong_schema_file(self, tmp_path, capsys):
        other = tmp_path / "metrics-as-trace.jsonl"
        other.write_text('{"type": "provenance", "format": "repro/provenance@1"}\n')
        assert main(["trace", "summarize", str(other)]) == 1
        assert "repro/trace@1" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_prints_the_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestProfileCommand:
    @pytest.fixture
    def demo_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "demo.trace.jsonl"
        assert main(["demo", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        return trace_path

    def test_profile_prints_hotspots_and_phase_breakdown(
        self, demo_trace, capsys
    ):
        assert main(["profile", str(demo_trace)]) == 0
        out = capsys.readouterr().out
        assert "# Hotspots" in out
        assert "self ms" in out
        assert "# Primitives by phase" in out
        assert "IND-Discovery" in out

    def test_profile_writes_flamegraph_exports(self, demo_trace, tmp_path, capsys):
        flame = tmp_path / "demo.collapsed"
        speedscope = tmp_path / "demo.speedscope.json"
        assert main(
            [
                "profile", str(demo_trace),
                "--flame", str(flame),
                "--speedscope", str(speedscope),
            ]
        ) == 0
        for line in flame.read_text().splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 0
        assert any(
            line.startswith("pipeline;") for line in flame.read_text().splitlines()
        )
        document = json.loads(speedscope.read_text())
        assert document["exporter"] == "repro/profile@1"
        assert document["profiles"][0]["events"]

    def test_profile_rejects_a_metrics_file_with_one_line(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "demo.metrics.json"
        assert main(["demo", "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        assert main(["profile", str(metrics_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repro/metrics@1" in err
        assert "repro/trace@1" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_trace_summarize_rejects_a_metrics_file_with_one_line(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "demo.metrics.json"
        assert main(["demo", "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(metrics_path)]) == 1
        err = capsys.readouterr().err
        assert "repro/metrics@1" in err
        assert len(err.strip().splitlines()) == 1

    def test_profile_rejects_a_missing_file(self, capsys):
        assert main(["profile", "/nonexistent/trace.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_memory_records_peaks_in_the_trace(
        self, tmp_path, capsys
    ):
        from repro.obs import read_trace_jsonl

        trace_path = tmp_path / "demo.mem.trace.jsonl"
        assert main(
            ["demo", "--trace", str(trace_path), "--profile-memory"]
        ) == 0
        capsys.readouterr()
        spans = [
            r for r in read_trace_jsonl(str(trace_path))
            if r.get("type") == "span" and r["kind"] == "phase"
        ]
        assert spans
        for span in spans:
            assert span["attributes"]["mem_peak_kb"] >= 0.0
            assert span["attributes"]["mem_current_kb"] >= 0.0


class TestProvenanceOutputs:
    def run_with_provenance(self, workspace):
        prov_path = workspace / "run.prov.jsonl"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--provenance", str(prov_path),
            ]
        )
        return code, prov_path

    def test_run_writes_a_provenance_export(self, workspace, capsys):
        from repro.obs import read_provenance_jsonl

        code, prov_path = self.run_with_provenance(workspace)
        assert code == 0
        assert f"provenance written to {prov_path}" in capsys.readouterr().out
        records = read_provenance_jsonl(str(prov_path))
        kinds = {r["kind"] for r in records if r.get("type") == "node"}
        assert {"query", "equijoin", "classification", "ind"} <= kinds

    def test_run_writes_a_lineage_dot_graph(self, workspace, capsys):
        dot_path = workspace / "lineage.dot"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--provenance-dot", str(dot_path),
            ]
        )
        assert code == 0
        assert dot_path.read_text().startswith("digraph provenance")

    def test_explain_walks_a_ric_back_to_query_and_decision(
        self, workspace, capsys
    ):
        from repro.obs import read_provenance_jsonl

        code, prov_path = self.run_with_provenance(workspace)
        assert code == 0
        capsys.readouterr()
        records = read_provenance_jsonl(str(prov_path))
        rics = [
            r for r in records
            if r.get("type") == "node" and r["kind"] == "ric"
        ]
        assert rics, "the workspace run must derive at least one RIC"
        chains = []
        for ric in rics:
            assert main(["explain", str(prov_path), ric["id"]]) == 0
            out = capsys.readouterr().out
            assert out.startswith("referential integrity constraint:")
            # every chain bottoms out at the query that motivated it
            assert "source query: report.sql, statement 0" in out
            assert "trace event #" in out
            chains.append(out)
        # the hidden-object constraint was blessed by the expert
        assert any("expert decision:" in chain for chain in chains)

    def test_explain_unknown_artifact_is_an_error(self, workspace, capsys):
        code, prov_path = self.run_with_provenance(workspace)
        assert code == 0
        capsys.readouterr()
        assert main(["explain", str(prov_path), "no-such-artifact"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_rejects_a_non_provenance_file(self, workspace, capsys):
        trace_path = workspace / "t.jsonl"
        assert main(["demo", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["explain", str(trace_path), "anything"]) == 1
        assert "repro/provenance@1" in capsys.readouterr().err

    def test_report_combines_trace_and_provenance(self, workspace, capsys):
        trace_path = workspace / "t.jsonl"
        prov_path = workspace / "p.jsonl"
        html_path = workspace / "report.html"
        assert main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--trace", str(trace_path),
                "--provenance", str(prov_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "report",
                "--trace", str(trace_path),
                "--provenance", str(prov_path),
                "--output", str(html_path),
            ]
        ) == 0
        assert f"audit report written to {html_path}" in capsys.readouterr().out
        document = html_path.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "Expert dialogue" in document
        assert "Derivation chains" in document
        assert "IND-Discovery" in document

    def test_report_without_inputs_is_an_error(self, tmp_path, capsys):
        out = tmp_path / "r.html"
        assert main(["report", "--output", str(out)]) == 1
        assert "provide --trace and/or --provenance" in capsys.readouterr().err
        assert not out.exists()


class TestJobsWatchExitCodes:
    """A watch that never sees a done sentinel must not exit 0."""

    def _watch(self, monkeypatch, records, extra=()):
        import repro.service.stream as stream_mod

        monkeypatch.setattr(
            stream_mod,
            "sse_events",
            lambda url, last_event_id=None, timeout=None: iter(records),
        )
        return main(["jobs", "watch", "job-1", *extra])

    def test_done_sentinel_exits_zero(self, monkeypatch):
        records = [
            {"type": "progress", "seq": 1, "message": "x"},
            {"type": "end", "seq": 2, "state": "done"},
        ]
        assert self._watch(monkeypatch, records) == 0

    def test_failed_sentinel_exits_nonzero(self, monkeypatch):
        records = [{"type": "end", "seq": 1, "state": "failed"}]
        assert self._watch(monkeypatch, records) == 1
        assert self._watch(monkeypatch, records, ("--json",)) == 1

    def test_truncated_stream_exits_nonzero(self, monkeypatch, capsys):
        # a server crash mid-run closes the stream with no sentinel at
        # all — that must be distinguishable from success in scripts
        records = [{"type": "progress", "seq": 1, "message": "x"}]
        assert self._watch(monkeypatch, records) == 1
        assert "without an end sentinel" in capsys.readouterr().err
        assert self._watch(monkeypatch, records, ("--json",)) == 1
