"""The command-line interface."""

import json
import os

import pytest

from repro.cli import load_database, main

SCHEMA_SQL = """
CREATE TABLE city (cid INT PRIMARY KEY, cname VARCHAR(20));
CREATE TABLE person (pid INT PRIMARY KEY, pname VARCHAR(20),
                     home INT, home_name VARCHAR(20));
INSERT INTO city VALUES (1, 'Lyon'), (2, 'Paris'), (3, 'Nice');
INSERT INTO person VALUES
    (10, 'a', 1, 'Lyon'), (11, 'b', 1, 'Lyon'), (12, 'c', 2, 'Paris'),
    (13, 'd', 3, 'Nice'), (14, 'e', 1, 'Lyon'), (15, 'f', 2, 'Paris');
"""

PROGRAM_SQL = "SELECT pname FROM person, city WHERE home = cid;\n"


@pytest.fixture
def workspace(tmp_path):
    schema = tmp_path / "schema.sql"
    schema.write_text(SCHEMA_SQL)
    programs = tmp_path / "programs"
    programs.mkdir()
    (programs / "report.sql").write_text(PROGRAM_SQL)
    return tmp_path


class TestLoadDatabase:
    def test_sql_script(self, workspace):
        db = load_database(str(workspace / "schema.sql"))
        assert len(db.table("person")) == 6

    def test_json_document(self, workspace, tmp_path):
        from repro.storage.serialize import database_to_dict, save_json

        db = load_database(str(workspace / "schema.sql"))
        path = str(tmp_path / "db.json")
        save_json(database_to_dict(db), path)
        restored = load_database(path)
        assert len(restored.table("city")) == 3


class TestCommands:
    def test_inspect(self, workspace, capsys):
        code = main(["inspect", str(workspace / "schema.sql"), "--statistics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "city.{cid}" in out
        assert "Statistics" in out

    def test_extract(self, workspace, capsys):
        code = main(
            ["extract", str(workspace / "schema.sql"), str(workspace / "programs")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "city[cid] >< person[home]" in out
        assert "report.sql" in out

    def test_run_with_outputs(self, workspace, capsys):
        report = workspace / "session.md"
        dot = workspace / "eer.dot"
        deps = workspace / "deps.json"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--report", str(report),
                "--dot", str(dot),
                "--dependencies", str(deps),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Restructured schema" in out
        assert "home -> home_name" in report.read_text()
        assert dot.read_text().startswith("graph")
        document = json.loads(deps.read_text())
        assert document["format"] == "repro/dependencies@1"
        assert document["functional"]

    def test_run_emits_migration_sql(self, workspace, capsys):
        sql_path = workspace / "migration.sql"
        code = main(
            [
                "run",
                str(workspace / "schema.sql"),
                str(workspace / "programs"),
                "--sql", str(sql_path),
                "--sql-data",
            ]
        )
        assert code == 0
        script = sql_path.read_text()
        assert "CREATE TABLE" in script
        assert "FOREIGN KEY" in script
        assert "INSERT INTO" in script

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Ass-Dept" in out
        assert "Manager" in out

    def test_missing_file_is_an_error_not_a_traceback(self, capsys):
        code = main(["inspect", "/nonexistent/schema.sql"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_extract_reports_skipped_statements(self, workspace, capsys):
        (workspace / "programs" / "broken.sql").write_text(
            "SELECT FROM WHERE;;"
        )
        code = main(
            ["extract", str(workspace / "schema.sql"), str(workspace / "programs")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped" in captured.err
        # the good program's join is still reported
        assert "city[cid] >< person[home]" in captured.out

    def test_bad_sql_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("CREATE GARBAGE;")
        code = main(["inspect", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err
