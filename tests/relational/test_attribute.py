"""Attributes, attribute sets and qualified references."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.attribute import Attribute, AttributeRef, AttributeSet
from repro.relational.domain import INTEGER, TEXT


class TestAttribute:
    def test_defaults(self):
        a = Attribute("name")
        assert a.dtype == TEXT
        assert a.nullable

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("1bad")
        with pytest.raises(SchemaError):
            Attribute("-leading")

    def test_hyphenated_names_allowed(self):
        assert Attribute("project-name").name == "project-name"

    def test_with_nullable_copies(self):
        a = Attribute("x", INTEGER, nullable=True)
        b = a.with_nullable(False)
        assert not b.nullable
        assert a.nullable
        assert b.dtype == INTEGER

    def test_equality_and_hash(self):
        assert Attribute("x", INTEGER) == Attribute("x", INTEGER)
        assert Attribute("x", INTEGER) != Attribute("x", TEXT)
        assert hash(Attribute("x")) == hash(Attribute("x"))


class TestAttributeSet:
    def test_preserves_order_dedupes(self):
        s = AttributeSet(["b", "a", "b", "c"])
        assert s.names == ("b", "a", "c")

    def test_set_equality_ignores_order(self):
        assert AttributeSet(["a", "b"]) == AttributeSet(["b", "a"])
        assert hash(AttributeSet(["a", "b"])) == hash(AttributeSet(["b", "a"]))

    def test_membership_and_len(self):
        s = AttributeSet.of("x", "y")
        assert "x" in s
        assert "z" not in s
        assert len(s) == 2

    def test_union_difference_intersection(self):
        s = AttributeSet.of("a", "b")
        assert s.union(AttributeSet.of("c")).names == ("a", "b", "c")
        assert s.difference(["a"]).names == ("b",)
        assert s.intersection(["b", "c"]).names == ("b",)

    def test_subset_and_disjoint(self):
        s = AttributeSet.of("a", "b")
        assert s.issubset(["a", "b", "c"])
        assert not s.issubset(["a"])
        assert s.isdisjoint(["c", "d"])
        assert not s.isdisjoint(["b"])


class TestAttributeRef:
    def test_single_accessor(self):
        r = AttributeRef.single("R", "a")
        assert r.is_single()
        assert r.attribute == "a"

    def test_multi_attribute_rejects_single_accessor(self):
        r = AttributeRef("R", ("a", "b"))
        assert not r.is_single()
        with pytest.raises(SchemaError):
            _ = r.attribute

    def test_string_attrs_wrapped(self):
        assert AttributeRef("R", "a") == AttributeRef.single("R", "a")

    def test_empty_attrs_rejected(self):
        with pytest.raises(SchemaError):
            AttributeRef("R", ())

    def test_equality_is_set_based(self):
        assert AttributeRef("R", ("a", "b")) == AttributeRef("R", ("b", "a"))
        assert AttributeRef("R", "a") != AttributeRef("S", "a")

    def test_repr_matches_paper_notation(self):
        assert repr(AttributeRef("HEmployee", "no")) == "HEmployee.{no}"
