"""NULL semantics and data-type membership."""

import datetime

import pytest

from repro.exceptions import TypingError
from repro.relational.domain import (
    BOOLEAN,
    DATE,
    INTEGER,
    NULL,
    NullType,
    REAL,
    TEXT,
    comparable,
    is_null,
    type_named,
    value_in_domain,
)


class TestNull:
    def test_null_is_singleton(self):
        assert NullType() is NULL
        assert NullType() is NullType()

    def test_is_null_accepts_none_and_sentinel(self):
        assert is_null(NULL)
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(False)

    def test_null_has_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(NULL)

    def test_null_is_hashable_and_self_equal(self):
        assert {NULL: 1}[NULL] == 1
        assert NULL == NULL
        assert not (NULL == 0)

    def test_null_repr(self):
        assert repr(NULL) == "NULL"


class TestDataTypes:
    def test_integer_membership(self):
        assert INTEGER.contains(3)
        assert not INTEGER.contains(3.5)
        assert not INTEGER.contains(True)   # bool is not an INTEGER
        assert not INTEGER.contains("3")

    def test_real_accepts_ints_and_floats(self):
        assert REAL.contains(3)
        assert REAL.contains(3.5)
        assert not REAL.contains(True)

    def test_text_membership(self):
        assert TEXT.contains("abc")
        assert not TEXT.contains(3)

    def test_date_accepts_iso_strings_and_dates(self):
        assert DATE.contains("2020-01-31")
        assert DATE.contains(datetime.date(2020, 1, 31))
        assert not DATE.contains("31/01/2020")
        assert not DATE.contains("2020-1-1")

    def test_boolean_membership(self):
        assert BOOLEAN.contains(True)
        assert not BOOLEAN.contains(1)

    def test_null_in_every_domain(self):
        for dtype in (INTEGER, REAL, TEXT, DATE, BOOLEAN):
            assert dtype.contains(NULL)
            assert value_in_domain(None, dtype)

    def test_coerce_normalizes_dates(self):
        assert DATE.coerce(datetime.date(2020, 1, 2)) == "2020-01-02"

    def test_coerce_rejects_foreign_values(self):
        with pytest.raises(TypingError):
            INTEGER.coerce("nope")

    def test_coerce_null_returns_sentinel(self):
        assert INTEGER.coerce(None) is NULL

    def test_equality_is_by_name(self):
        assert INTEGER == type_named("int")
        assert INTEGER != REAL
        assert hash(INTEGER) == hash(type_named("BIGINT"))


class TestTypeNames:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("INT", INTEGER), ("integer", INTEGER), ("SMALLINT", INTEGER),
            ("NUMBER", REAL), ("decimal", REAL), ("FLOAT", REAL),
            ("VARCHAR", TEXT), ("char", TEXT), ("VARCHAR2", TEXT),
            ("date", DATE), ("BOOL", BOOLEAN),
        ],
    )
    def test_sql_aliases(self, alias, expected):
        assert type_named(alias) == expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypingError):
            type_named("BLOB")


class TestComparability:
    def test_numeric_types_interjoin(self):
        assert comparable(INTEGER, REAL)
        assert comparable(REAL, INTEGER)

    def test_text_only_with_itself(self):
        assert comparable(TEXT, TEXT)
        assert not comparable(TEXT, INTEGER)
        assert not comparable(DATE, TEXT)
