"""Declared constraints and the §4 K/N derivation rules."""

import pytest

from repro.exceptions import ConstraintViolationError
from repro.relational.attribute import AttributeRef
from repro.relational.constraints import (
    KeyConstraint,
    NotNullConstraint,
    UniqueConstraint,
    key_attribute_sets,
    not_null_attributes,
)
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Table


@pytest.fixture
def table():
    schema = RelationSchema.build("R", ["a", "b"], types={"a": INTEGER})
    return Table(schema)


class TestUniqueConstraint:
    def test_detects_duplicates(self, table):
        table.insert([1, "x"])
        table.insert([1, "y"])
        with pytest.raises(ConstraintViolationError):
            UniqueConstraint("R", ["a"]).check(table)

    def test_null_violates_unique(self, table):
        # §4: unique implies not null
        table.insert([NULL, "x"])
        with pytest.raises(ConstraintViolationError):
            UniqueConstraint("R", ["a"]).check(table)

    def test_composite_unique(self, table):
        table.insert([1, "x"])
        table.insert([1, "y"])
        UniqueConstraint("R", ["a", "b"]).check(table)   # pairs differ

    def test_equality(self):
        assert UniqueConstraint("R", ["a", "b"]) == UniqueConstraint("R", ["b", "a"])


class TestNotNullConstraint:
    def test_detects_null(self, table):
        table.insert([1, NULL])
        with pytest.raises(ConstraintViolationError):
            NotNullConstraint("R", "b").check(table)

    def test_passes_on_values(self, table):
        table.insert([1, "x"])
        NotNullConstraint("R", "b").check(table)


class TestDerivedSets:
    def test_k_from_uniques(self):
        uniques = [
            UniqueConstraint("Person", ["id"]),
            UniqueConstraint("HEmployee", ["no", "date"]),
        ]
        k = key_attribute_sets(uniques)
        assert AttributeRef("Person", "id") in k
        assert AttributeRef("HEmployee", ("no", "date")) in k
        assert len(k) == 2

    def test_k_dedupes(self):
        uniques = [UniqueConstraint("R", ["a"]), UniqueConstraint("R", ["a"])]
        assert len(key_attribute_sets(uniques)) == 1

    def test_n_unions_declared_and_key_attributes(self):
        n = not_null_attributes(
            [NotNullConstraint("Department", "location")],
            [UniqueConstraint("HEmployee", ["no", "date"])],
        )
        assert AttributeRef("Department", "location") in n
        assert AttributeRef("HEmployee", "no") in n
        assert AttributeRef("HEmployee", "date") in n
        assert len(n) == 3

    def test_key_constraint_ref(self):
        kc = KeyConstraint("R", ["a", "b"])
        assert kc.as_ref() == AttributeRef("R", ("a", "b"))
