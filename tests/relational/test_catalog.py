"""The data dictionary: entries, K/N views, statistics."""

import pytest



class TestEntries:
    def test_entries_cover_every_attribute(self, paper_db):
        catalog = paper_db.catalog
        entries = catalog.entries()
        total_attrs = sum(
            len(r.attribute_names) for r in paper_db.schema
        )
        assert len(entries) == total_attrs

    def test_entry_flags(self, paper_db):
        catalog = paper_db.catalog
        dep = catalog.entry("Department", "dep")
        assert dep.in_key and not dep.nullable
        loc = catalog.entry("Department", "location")
        assert not loc.in_key and not loc.nullable
        emp = catalog.entry("Department", "emp")
        assert not emp.in_key and emp.nullable
        assert emp.position == 1

    def test_key_and_not_null_views(self, paper_db):
        catalog = paper_db.catalog
        assert catalog.key_set() == paper_db.schema.key_set()
        assert catalog.not_null_set() == paper_db.schema.not_null_set()


class TestStatistics:
    def test_analyze_populates_stats(self, paper_db):
        catalog = paper_db.catalog
        catalog.analyze(paper_db)
        stats = catalog.statistics("Person", "id")
        assert stats.row_count == 22
        assert stats.distinct_count == 22
        assert stats.null_count == 0

    def test_null_fraction(self, paper_db):
        catalog = paper_db.catalog
        catalog.analyze(paper_db)
        emp = catalog.statistics("Department", "emp")
        assert emp.null_count == 2
        assert emp.null_fraction == pytest.approx(2 / 8)

    def test_unknown_statistics_is_none(self, paper_db):
        assert paper_db.catalog.statistics("Person", "id") is None  # before analyze

    def test_all_statistics_sorted(self, paper_db):
        catalog = paper_db.catalog
        catalog.analyze(paper_db)
        keys = [(s.relation, s.attribute) for s in catalog.all_statistics()]
        assert keys == sorted(keys)
