"""The database triple: schema surgery, instrumented queries, copies."""

import pytest

from repro.exceptions import UnknownRelationError
from repro.relational.schema import RelationSchema


class TestSchemaManagement:
    def test_create_and_drop(self, tiny_db):
        tiny_db.create_relation(
            RelationSchema.build("extra", ["x"], key=["x"])
        )
        assert "extra" in tiny_db.schema
        tiny_db.drop_relation("extra")
        assert "extra" not in tiny_db.schema
        with pytest.raises(UnknownRelationError):
            tiny_db.table("extra")

    def test_replace_projects_extension(self, tiny_db):
        narrowed = tiny_db.schema.relation("person").without_attributes(
            ["person_city_id"]
        )
        tiny_db.replace_relation(narrowed)
        table = tiny_db.table("person")
        assert table.schema.attribute_names == ("person_id", "person_name")
        assert len(table) == 4

    def test_tables_iterates_sorted(self, tiny_db):
        assert [t.name for t in tiny_db.tables()] == ["city", "person"]


class TestInstrumentedQueries:
    def test_count_distinct_counts_calls(self, tiny_db):
        tiny_db.counter.reset()
        assert tiny_db.count_distinct("person", ("person_city_id",)) == 2
        assert tiny_db.counter.count_distinct == 1

    def test_join_count(self, tiny_db):
        assert (
            tiny_db.join_count("person", ("person_city_id",), "city", ("city_id",))
            == 2
        )
        assert tiny_db.counter.join_count == 1

    def test_fd_holds(self, tiny_db):
        assert tiny_db.fd_holds("city", ("city_id",), ("city_name",))
        assert not tiny_db.fd_holds("person", ("person_city_id",), ("person_name",))
        assert tiny_db.counter.fd_checks == 2

    def test_inclusion_holds_ignores_null_lhs(self, tiny_db):
        # dave has NULL city; the remaining values {1, 2} are included
        assert tiny_db.inclusion_holds(
            "person", ("person_city_id",), "city", ("city_id",)
        )
        assert not tiny_db.inclusion_holds(
            "city", ("city_id",), "person", ("person_city_id",)
        )

    def test_counter_total_and_reset(self, tiny_db):
        tiny_db.counter.reset()
        tiny_db.count_distinct("city", ("city_id",))
        tiny_db.join_count("person", ("person_city_id",), "city", ("city_id",))
        assert tiny_db.counter.total() == 2
        tiny_db.counter.reset()
        assert tiny_db.counter.total() == 0


class TestCopy:
    def test_copy_is_independent(self, tiny_db):
        clone = tiny_db.copy()
        clone.insert("city", [9, "Metz"])
        assert len(tiny_db.table("city")) == 3
        assert len(clone.table("city")) == 4

    def test_copy_preserves_rows_and_keys(self, tiny_db):
        clone = tiny_db.copy()
        assert [r.values for r in clone.table("person")] == [
            r.values for r in tiny_db.table("person")
        ]
        assert clone.schema.relation("person").is_key(["person_id"])


class TestValidation:
    def test_validate_passes_on_clean(self, tiny_db):
        tiny_db.validate()
        assert tiny_db.violations() == []

    def test_violations_reported(self, tiny_db):
        tiny_db.insert("city", [1, "Dup"])
        assert tiny_db.violations()
