"""The paper's query primitives: count distinct, join counts, FD checks."""

import pytest

from repro.exceptions import ArityError
from repro.relational.algebra import (
    count_distinct,
    distinct_values,
    equijoin_match_count,
    fd_violation_pairs,
    functional_maps,
    group_by,
    missing_values,
    natural_intersection,
    project,
    select_equal,
    values_subset,
)
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Table


@pytest.fixture
def orders():
    schema = RelationSchema.build(
        "orders",
        ["oid", "cust", "city", "amount"],
        key=["oid"],
        types={"oid": INTEGER, "cust": INTEGER, "amount": INTEGER},
    )
    t = Table(schema)
    t.insert_many(
        [
            [1, 10, "Lyon", 5],
            [2, 10, "Lyon", 7],
            [3, 11, "Paris", 5],
            [4, NULL, "Paris", 5],
            [5, 12, NULL, 9],
        ]
    )
    return t


@pytest.fixture
def customers():
    schema = RelationSchema.build(
        "customers", ["cid", "name"], key=["cid"], types={"cid": INTEGER}
    )
    t = Table(schema)
    t.insert_many([[10, "a"], [11, "b"], [13, "c"]])
    return t


class TestCountDistinct:
    def test_nulls_excluded(self, orders):
        # ||orders[cust]|| skips the NULL row: {10, 11, 12}
        assert count_distinct(orders, ("cust",)) == 3

    def test_multi_attribute(self, orders):
        # (cust, city) pairs with no NULL: (10,Lyon)x2, (11,Paris)
        assert count_distinct(orders, ("cust", "city")) == 2

    def test_projection_keeps_duplicates(self, orders):
        assert len(project(orders, ("city",))) == 5

    def test_distinct_values_content(self, orders):
        assert distinct_values(orders, ("city",)) == {("Lyon",), ("Paris",)}


class TestJoinCounts:
    def test_match_count_is_intersection_cardinality(self, orders, customers):
        # shared cust values: {10, 11}
        assert equijoin_match_count(orders, ("cust",), customers, ("cid",)) == 2

    def test_natural_intersection_values(self, orders, customers):
        assert natural_intersection(orders, ("cust",), customers, ("cid",)) == {
            (10,), (11,),
        }

    def test_arity_mismatch_raises(self, orders, customers):
        with pytest.raises(ArityError):
            equijoin_match_count(orders, ("cust", "city"), customers, ("cid",))

    def test_missing_values_witnesses(self, orders, customers):
        assert missing_values(orders, ("cust",), customers, ("cid",)) == {(12,)}

    def test_values_subset_ignores_null_lhs(self, orders, customers):
        # {10, 11, 12} is not within {10, 11, 13}
        assert not values_subset(orders, ("cust",), customers, ("cid",))
        # but {10, 11} (customers' view of used ids) fails the other way too
        assert not values_subset(customers, ("cid",), orders, ("cust",))


class TestSelection:
    def test_select_equal(self, orders):
        assert len(select_equal(orders, "cust", 10)) == 2

    def test_select_null_matches_nothing(self, orders):
        assert select_equal(orders, "cust", NULL) == []


class TestFunctionalMaps:
    def test_fd_holds(self, orders):
        # cust -> city holds on non-NULL groups (10->Lyon, 11->Paris, 12->NULL)
        assert functional_maps(orders, ("cust",), ("city",))

    def test_fd_fails(self, orders):
        assert not functional_maps(orders, ("city",), ("amount",))

    def test_null_lhs_rows_skipped(self, orders):
        # the NULL-cust row maps to Paris; it must not clash with anything
        assert functional_maps(orders, ("cust",), ("city",))

    def test_null_rhs_values_agree_with_themselves(self):
        schema = RelationSchema.build("r", ["a", "b"], types={"a": INTEGER})
        t = Table(schema)
        t.insert_many([[1, NULL], [1, NULL]])
        assert functional_maps(t, ("a",), ("b",))

    def test_null_vs_value_rhs_conflict(self):
        schema = RelationSchema.build("r", ["a", "b"], types={"a": INTEGER})
        t = Table(schema)
        t.insert_many([[1, NULL], [1, "x"]])
        assert not functional_maps(t, ("a",), ("b",))

    def test_violation_pairs_reports_witnesses(self, orders):
        pairs = fd_violation_pairs(orders, ("city",), ("amount",))
        assert pairs
        left, right = pairs[0]
        assert left["city"] == right["city"]
        assert left["amount"] != right["amount"]

    def test_violation_pairs_respects_limit(self):
        schema = RelationSchema.build("r", ["a", "b"], types={"a": INTEGER, "b": INTEGER})
        t = Table(schema)
        t.insert_many([[1, i] for i in range(10)])
        assert len(fd_violation_pairs(t, ("a",), ("b",), limit=3)) == 3


class TestGroupBy:
    def test_groups_exclude_null_keys(self, orders):
        groups = group_by(orders, ("cust",))
        assert set(groups) == {(10,), (11,), (12,)}
        assert len(groups[(10,)]) == 2
