"""The version-guarded distinct-value cache."""

import pytest

from repro.exceptions import ArityError
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.domain import INTEGER, NULL


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [
            RelationSchema.build("r", ["a", "b"], types={"a": INTEGER, "b": INTEGER}),
            RelationSchema.build("s", ["x"], types={"x": INTEGER}),
        ]
    )
    database = Database(schema)
    database.insert_many("r", [[1, 10], [2, 10], [2, 20]])
    database.insert_many("s", [[1], [2], [3]])
    return database


class TestCacheCorrectness:
    def test_repeated_queries_consistent(self, db):
        assert db.count_distinct("r", ("a",)) == 2
        assert db.count_distinct("r", ("a",)) == 2
        assert db.counter.count_distinct == 2      # logical count unaffected

    def test_insert_invalidates(self, db):
        assert db.count_distinct("r", ("a",)) == 2
        db.insert("r", [9, 90])
        assert db.count_distinct("r", ("a",)) == 3

    def test_replace_rows_invalidates(self, db):
        assert db.count_distinct("s", ("x",)) == 3
        db.table("s").replace_rows([[7]])
        assert db.count_distinct("s", ("x",)) == 1

    def test_delete_invalidates(self, db):
        assert db.count_distinct("s", ("x",)) == 3
        db.table("s").delete_where(lambda row: row["x"] == 1)
        assert db.count_distinct("s", ("x",)) == 2

    def test_noop_delete_keeps_version(self, db):
        before = db.table("s").version
        db.table("s").delete_where(lambda row: False)
        assert db.table("s").version == before

    def test_join_count_uses_fresh_values(self, db):
        assert db.join_count("r", ("a",), "s", ("x",)) == 2
        db.insert("s", [99])
        db.insert("r", [99, 0])
        assert db.join_count("r", ("a",), "s", ("x",)) == 3

    def test_inclusion_after_mutation(self, db):
        assert db.inclusion_holds("r", ("a",), "s", ("x",))
        db.insert("r", [42, 0])
        assert not db.inclusion_holds("r", ("a",), "s", ("x",))

    def test_null_rows_excluded_through_cache(self, db):
        db.insert("r", [NULL, 5])
        assert db.count_distinct("r", ("a",)) == 2

    def test_arity_checked_at_database_level(self, db):
        with pytest.raises(ArityError):
            db.join_count("r", ("a", "b"), "s", ("x",))
        with pytest.raises(ArityError):
            db.inclusion_holds("r", ("a", "b"), "s", ("x",))

    def test_multi_attribute_keys_distinct(self, db):
        assert db.count_distinct("r", ("a", "b")) == 3
        assert db.count_distinct("r", ("b", "a")) == 3   # separate cache key


class TestSchemaMutationInvalidation:
    """Regression: create/drop/replace_relation must purge the relation's
    cache entries — version counters alone cannot be trusted across a
    relation's lifetimes."""

    def test_drop_and_recreate_does_not_serve_stale_distincts(self, db):
        assert db.count_distinct("s", ("x",)) == 3      # cache primed, version 3
        db.drop_relation("s")
        db.create_relation(RelationSchema.build("s", ["x"], types={"x": INTEGER}))
        db.insert_many("s", [[7], [7], [7]])            # version 3 again
        assert db.count_distinct("s", ("x",)) == 1

    def test_replace_relation_invalidates(self, db):
        assert db.count_distinct("r", ("a",)) == 2      # cache primed
        db.replace_relation(
            RelationSchema.build("r", ["a"], types={"a": INTEGER})
        )
        db.table("r").replace_rows([[5]])
        assert db.count_distinct("r", ("a",)) == 1

    def test_recreate_empty_relation_reads_empty(self, db):
        assert db.count_distinct("s", ("x",)) == 3
        db.drop_relation("s")
        db.create_relation(RelationSchema.build("s", ["x"], types={"x": INTEGER}))
        assert db.count_distinct("s", ("x",)) == 0
