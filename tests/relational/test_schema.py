"""Relation schemas, database schemas, and the K/N computation of §4."""

import pytest

from repro.exceptions import (
    DuplicateRelationError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.attribute import Attribute, AttributeRef
from repro.relational.schema import DatabaseSchema, RelationSchema


def make_department() -> RelationSchema:
    return RelationSchema.build(
        "Department",
        ["dep", "emp", "skill", "location", "proj"],
        key=["dep"],
        not_null=["location"],
    )


class TestRelationSchema:
    def test_build_sets_key_and_not_null(self):
        r = make_department()
        assert r.is_key(["dep"])
        assert not r.attribute("dep").nullable     # unique implies not null
        assert not r.attribute("location").nullable
        assert r.attribute("emp").nullable

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a"), Attribute("a")])

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_unknown_unique_attribute_rejected(self):
        r = make_department()
        with pytest.raises(UnknownAttributeError):
            r.declare_unique(["ghost"])

    def test_is_key_is_exact_set_match(self):
        r = RelationSchema.build("H", ["no", "date", "salary"], key=["no", "date"])
        assert r.is_key(["date", "no"])       # order-insensitive
        assert not r.is_key(["no"])           # proper subset is not the key
        assert not r.is_key(["no", "date", "salary"])

    def test_primary_key_is_first_declared(self):
        r = RelationSchema.build("R", ["a", "b", "c"], key=["a"])
        r.declare_unique(["b"])
        assert tuple(r.primary_key().names) == ("a",)

    def test_position_and_attribute_lookup(self):
        r = make_department()
        assert r.position("skill") == 2
        with pytest.raises(UnknownAttributeError):
            r.position("nope")
        with pytest.raises(UnknownAttributeError):
            r.attribute("nope")

    def test_without_attributes_drops_and_keeps_key(self):
        r = make_department()
        narrowed = r.without_attributes(["skill", "proj"])
        assert narrowed.attribute_names == ("dep", "emp", "location")
        assert narrowed.is_key(["dep"])

    def test_without_attributes_drops_broken_uniques(self):
        r = RelationSchema.build("R", ["a", "b", "c"], key=["a", "b"])
        narrowed = r.without_attributes(["b"])
        assert narrowed.uniques == ()

    def test_cannot_drop_everything(self):
        r = RelationSchema.build("R", ["a"], key=["a"])
        with pytest.raises(SchemaError):
            r.without_attributes(["a"])

    def test_ref_validates_attributes(self):
        r = make_department()
        assert r.ref("emp") == AttributeRef("Department", "emp")
        with pytest.raises(UnknownAttributeError):
            r.ref(["emp", "ghost"])

    def test_renamed_keeps_structure(self):
        r = make_department()
        s = r.renamed("Dept2")
        assert s.name == "Dept2"
        assert s.attribute_names == r.attribute_names
        assert s.is_key(["dep"])


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema([make_department()])
        assert "Department" in schema
        assert schema.relation("Department").name == "Department"
        with pytest.raises(UnknownRelationError):
            schema.relation("Nope")

    def test_duplicate_rejected(self):
        schema = DatabaseSchema([make_department()])
        with pytest.raises(DuplicateRelationError):
            schema.add(make_department())

    def test_replace_requires_existing(self):
        schema = DatabaseSchema()
        with pytest.raises(UnknownRelationError):
            schema.replace(make_department())

    def test_iteration_is_sorted(self):
        schema = DatabaseSchema(
            [
                RelationSchema.build("Zeta", ["a"], key=["a"]),
                RelationSchema.build("Alpha", ["a"], key=["a"]),
            ]
        )
        assert [r.name for r in schema] == ["Alpha", "Zeta"]

    def test_key_set_matches_paper_definition(self, paper_db):
        refs = paper_db.schema.key_set()
        assert AttributeRef("Person", "id") in refs
        assert AttributeRef("HEmployee", ("no", "date")) in refs
        assert AttributeRef("Assignment", ("emp", "dep", "proj")) in refs
        assert len(refs) == 4

    def test_not_null_set_includes_key_attributes(self, paper_db):
        refs = paper_db.schema.not_null_set()
        # declared not-null
        assert AttributeRef("Department", "location") in refs
        # implied by the composite unique declaration
        assert AttributeRef("HEmployee", "no") in refs
        assert AttributeRef("HEmployee", "date") in refs
        # nullable attributes are absent
        assert AttributeRef("Department", "emp") not in refs

    def test_copy_is_deep_for_schemas(self):
        schema = DatabaseSchema([make_department()])
        clone = schema.copy()
        clone.remove("Department")
        assert "Department" in schema
