"""Tables, rows, and constraint validation over dirty data."""

import pytest

from repro.exceptions import (
    ArityError,
    ConstraintViolationError,
    TypingError,
    UnknownAttributeError,
)
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Row, Table


@pytest.fixture
def person_schema():
    return RelationSchema.build(
        "Person", ["id", "name", "city"], key=["id"], types={"id": INTEGER}
    )


@pytest.fixture
def person_table(person_schema):
    t = Table(person_schema)
    t.insert([1, "alice", "Lyon"])
    t.insert([2, "bob", NULL])
    return t


class TestRow:
    def test_access_by_name_and_position(self, person_table):
        row = person_table[0]
        assert row["name"] == "alice"
        assert row[1] == "alice"

    def test_project_and_null_check(self, person_table):
        assert person_table[1].project(("name", "city")) == ("bob", NULL)
        assert person_table[1].has_null(("city",))
        assert not person_table[0].has_null(("id", "name"))

    def test_arity_enforced(self, person_schema):
        with pytest.raises(ArityError):
            Row(person_schema, [1, "too-short"])

    def test_typing_enforced(self, person_schema):
        with pytest.raises(TypingError):
            Row(person_schema, ["not-int", "x", "y"])

    def test_as_dict(self, person_table):
        assert person_table[0].as_dict() == {
            "id": 1, "name": "alice", "city": "Lyon",
        }


class TestTableInsert:
    def test_insert_by_mapping_defaults_to_null(self, person_schema):
        t = Table(person_schema)
        t.insert({"id": 5, "name": "eve"})
        assert t[0]["city"] is NULL

    def test_insert_unknown_attribute_rejected(self, person_schema):
        t = Table(person_schema)
        with pytest.raises(UnknownAttributeError):
            t.insert({"id": 5, "ghost": 1})

    def test_insert_many_and_len(self, person_schema):
        t = Table(person_schema)
        t.insert_many([[i, f"p{i}", "x"] for i in range(5)])
        assert len(t) == 5

    def test_replace_rows(self, person_table):
        person_table.replace_rows([[9, "zoe", "Nice"]])
        assert len(person_table) == 1
        assert person_table[0]["id"] == 9

    def test_delete_where(self, person_table):
        removed = person_table.delete_where(lambda r: r["name"] == "bob")
        assert removed == 1
        assert len(person_table) == 1


class TestValidation:
    def test_clean_table_validates(self, person_table):
        person_table.validate()

    def test_duplicate_key_detected(self, person_schema):
        t = Table(person_schema)
        t.insert([1, "a", "x"])
        t.insert([1, "b", "y"])
        with pytest.raises(ConstraintViolationError):
            t.validate()

    def test_null_in_key_detected(self, person_schema):
        t = Table(person_schema)
        t.insert([NULL, "a", "x"])
        with pytest.raises(ConstraintViolationError):
            t.validate()

    def test_not_null_detected(self):
        schema = RelationSchema.build(
            "R", ["a", "b"], key=["a"], not_null=["b"], types={"a": INTEGER}
        )
        t = Table(schema)
        t.insert([1, NULL])
        with pytest.raises(ConstraintViolationError):
            t.validate()

    def test_violations_lists_without_raising(self, person_schema):
        t = Table(person_schema)
        t.insert([1, "a", "x"])
        t.insert([1, "b", "y"])
        problems = t.violations()
        assert len(problems) == 1
        assert "duplicate" in problems[0]

    def test_dirty_data_is_storable(self, person_schema):
        # the engine must HOLD corrupt data; validation is explicit
        t = Table(person_schema)
        t.insert([1, "a", "x"])
        t.insert([1, "b", "y"])
        assert len(t) == 2


class TestWithSchema:
    def test_projection_to_narrower_schema(self, person_table):
        narrow = person_table.schema.without_attributes(["city"])
        projected = person_table.with_schema(narrow)
        assert projected.schema.attribute_names == ("id", "name")
        assert [r.values for r in projected] == [(1, "alice"), (2, "bob")]

    def test_projection_carries_the_version_forward(self, person_table):
        """Regression: with_schema used to restart the mutation counter
        at the row count, so a projected table could re-reach a version
        its source had already published to version-guarded caches."""
        narrow = person_table.schema.without_attributes(["city"])
        projected = person_table.with_schema(narrow)
        assert projected.version >= person_table.version + len(person_table)

    def test_every_table_has_a_distinct_generation(self, person_table):
        narrow = person_table.schema.without_attributes(["city"])
        projected = person_table.with_schema(narrow)
        assert projected.generation != person_table.generation
        assert Table(person_table.schema).generation > projected.generation
