"""Equi-join extraction: every syntactic form of §4."""

import pytest

from repro.programs.corpus import ProgramCorpus
from repro.programs.equijoin import EquiJoin
from repro.programs.extractor import EquiJoinExtractor, extract_equijoins
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema.build("R", ["a", "b", "c"], key=["a"]),
            RelationSchema.build("S", ["x", "y"], key=["x"]),
            RelationSchema.build("T", ["p", "q"], key=["p"]),
        ]
    )


@pytest.fixture
def extractor(schema):
    return EquiJoinExtractor(schema)


def joins_of(extractor, sql):
    return extractor.extract_from_sql(sql)


class TestWhereClauseJoins:
    def test_qualified_equality(self, extractor):
        joins = joins_of(extractor, "SELECT 1 FROM R, S WHERE R.b = S.x")
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_unqualified_resolved_through_schema(self, extractor):
        joins = joins_of(extractor, "SELECT 1 FROM R, S WHERE b = x")
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_aliases(self, extractor):
        joins = joins_of(extractor, "SELECT 1 FROM R r1, S s1 WHERE r1.b = s1.x")
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_multi_attribute_grouped(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT 1 FROM R, S WHERE R.a = S.x AND R.b = S.y",
        )
        assert joins == [EquiJoin("R", ("a", "b"), "S", ("x", "y"))]

    def test_three_way_join(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT 1 FROM R, S, T WHERE R.b = S.x AND S.y = T.p",
        )
        assert EquiJoin("R", ("b",), "S", ("x",)) in joins
        assert EquiJoin("S", ("y",), "T", ("p",)) in joins

    def test_self_join_via_aliases(self, extractor):
        joins = joins_of(
            extractor, "SELECT 1 FROM R r1, R r2 WHERE r1.b = r2.c"
        )
        assert joins == [EquiJoin("R", ("b",), "R", ("c",))]

    def test_literal_filters_are_not_joins(self, extractor):
        assert joins_of(extractor, "SELECT 1 FROM R WHERE R.b = 'x'") == []

    def test_intra_tuple_equality_not_a_join(self, extractor):
        assert joins_of(extractor, "SELECT 1 FROM R WHERE R.b = R.c") == []

    def test_join_on_clause(self, extractor):
        joins = joins_of(extractor, "SELECT 1 FROM R JOIN S ON R.b = S.x")
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_negated_equality_not_a_join(self, extractor):
        assert joins_of(extractor, "SELECT 1 FROM R, S WHERE NOT R.b = S.x") == []

    def test_or_branches_each_extracted(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT 1 FROM R, S, T WHERE R.b = S.x OR R.c = T.p",
        )
        assert EquiJoin("R", ("b",), "S", ("x",)) in joins
        assert EquiJoin("R", ("c",), "T", ("p",)) in joins


class TestNestedQueries:
    def test_in_subquery(self, extractor):
        joins = joins_of(
            extractor, "SELECT a FROM R WHERE b IN (SELECT x FROM S)"
        )
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_not_in_is_not_a_join(self, extractor):
        assert (
            joins_of(extractor, "SELECT a FROM R WHERE b NOT IN (SELECT x FROM S)")
            == []
        )

    def test_scalar_equality_subquery(self, extractor):
        joins = joins_of(
            extractor, "SELECT a FROM R WHERE b = (SELECT x FROM S)"
        )
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_correlated_exists(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT a FROM R WHERE EXISTS (SELECT * FROM S WHERE S.x = R.b)",
        )
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_joins_inside_subquery_also_found(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT a FROM R WHERE b IN "
            "(SELECT x FROM S, T WHERE S.y = T.p)",
        )
        assert EquiJoin("R", ("b",), "S", ("x",)) in joins
        assert EquiJoin("S", ("y",), "T", ("p",)) in joins

    def test_deeply_nested(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT a FROM R WHERE b IN "
            "(SELECT x FROM S WHERE y IN (SELECT p FROM T))",
        )
        assert EquiJoin("R", ("b",), "S", ("x",)) in joins
        assert EquiJoin("S", ("y",), "T", ("p",)) in joins


class TestIntersect:
    def test_intersect_join(self, extractor):
        joins = joins_of(
            extractor, "SELECT b FROM R INTERSECT SELECT x FROM S"
        )
        assert joins == [EquiJoin("R", ("b",), "S", ("x",))]

    def test_multi_column_intersect(self, extractor):
        joins = joins_of(
            extractor,
            "SELECT b, c FROM R INTERSECT SELECT x, y FROM S",
        )
        assert joins == [EquiJoin("R", ("b", "c"), "S", ("x", "y"))]

    def test_same_relation_intersect_ignored(self, extractor):
        assert (
            joins_of(extractor, "SELECT b FROM R INTERSECT SELECT b FROM R") == []
        )


class TestResolutionFailures:
    def test_unknown_alias_warned_and_skipped(self, extractor):
        report_joins = joins_of(
            extractor, "SELECT 1 FROM R WHERE ghost.a = R.b"
        )
        assert report_joins == []

    def test_ambiguous_unqualified_column(self, schema):
        schema2 = DatabaseSchema(
            [
                RelationSchema.build("U", ["k", "shared"], key=["k"]),
                RelationSchema.build("V", ["m", "shared"], key=["m"]),
            ]
        )
        ex = EquiJoinExtractor(schema2)
        report = ex.extract_from_corpus(
            _corpus("SELECT 1 FROM U, V WHERE shared = m")
        )
        assert report.joins == []
        assert any("ambiguous" in w for w in report.warnings)

    def test_no_schema_means_unqualified_unresolvable(self):
        ex = EquiJoinExtractor(schema=None)
        report = ex.extract_from_corpus(_corpus("SELECT 1 FROM R, S WHERE b = x"))
        assert report.joins == []
        assert report.warnings


def _corpus(sql: str) -> ProgramCorpus:
    corpus = ProgramCorpus()
    corpus.add_source("t.sql", sql + ";")
    return corpus


class TestCorpusLevel:
    def test_provenance_and_dedup(self, schema):
        corpus = ProgramCorpus()
        corpus.add_source("a.sql", "SELECT 1 FROM R, S WHERE R.b = S.x;")
        corpus.add_source("b.sql", "SELECT b FROM R WHERE b IN (SELECT x FROM S);")
        report = extract_equijoins(corpus, schema)
        assert len(report.joins) == 1
        join = report.joins[0]
        assert len(report.provenance[join]) == 2
        assert report.statements_seen == 2

    def test_parse_failures_recorded_not_fatal(self, schema):
        corpus = ProgramCorpus()
        corpus.add_source("bad.sql", "SELECT FROM WHERE;")
        corpus.add_source("good.sql", "SELECT 1 FROM R, S WHERE R.b = S.x;")
        report = extract_equijoins(corpus, schema)
        assert len(report.joins) == 1
        assert len(report.skipped) == 1

    def test_paper_corpus_yields_paper_q(self, paper_db, paper_corpus, paper_q):
        report = extract_equijoins(paper_corpus, paper_db.schema)
        assert set(report.joins) == set(paper_q)
        assert not report.skipped
        assert not report.warnings
