"""The equi-join value object: symmetry, canonical form, parsing."""

import pytest

from repro.exceptions import SchemaError
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import AttributeRef


class TestCanonicalForm:
    def test_symmetric_equality(self):
        a = EquiJoin("HEmployee", ("no",), "Person", ("id",))
        b = EquiJoin("Person", ("id",), "HEmployee", ("no",))
        assert a == b
        assert hash(a) == hash(b)

    def test_canonical_left_is_smaller_name(self):
        j = EquiJoin("Zeta", ("z",), "Alpha", ("a",))
        assert j.left_relation == "Alpha"
        assert j.right_relation == "Zeta"

    def test_pairing_preserved_under_reorder(self):
        # (a<->x, b<->y) must stay paired however stated
        a = EquiJoin("R", ("a", "b"), "S", ("x", "y"))
        b = EquiJoin("R", ("b", "a"), "S", ("y", "x"))
        c = EquiJoin("R", ("a", "b"), "S", ("y", "x"))
        assert a == b
        assert a != c

    def test_self_join_allowed(self):
        j = EquiJoin("R", ("a",), "R", ("b",))
        assert j.is_self_join()

    def test_involves(self):
        j = EquiJoin("R", ("a",), "S", ("b",))
        assert j.involves("R") and j.involves("S")
        assert not j.involves("T")


class TestValidation:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            EquiJoin("R", ("a", "b"), "S", ("x",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            EquiJoin("R", (), "S", ())

    def test_string_attrs_accepted(self):
        j = EquiJoin("R", "a", "S", "b")
        assert j.left_attrs == ("a",)


class TestParsing:
    def test_parse_paper_notation(self):
        j = EquiJoin.parse("HEmployee[no] >< Person[id]")
        assert j == EquiJoin("HEmployee", ("no",), "Person", ("id",))

    def test_parse_multi_attribute(self):
        j = EquiJoin.parse("R[a, b] >< S[x, y]")
        assert j.left_attrs == ("a", "b")

    def test_parse_rejects_garbage(self):
        with pytest.raises(SchemaError):
            EquiJoin.parse("not a join")
        with pytest.raises(SchemaError):
            EquiJoin.parse("R[a >< S[b]")

    def test_repr_parses_back(self):
        j = EquiJoin("Assignment", ("dep",), "Department", ("dep",))
        assert EquiJoin.parse(repr(j)) == j


class TestRefs:
    def test_refs(self):
        j = EquiJoin("R", ("a",), "S", ("b",))
        assert j.left_ref() == AttributeRef("R", "a")
        assert j.right_ref() == AttributeRef("S", "b")

    def test_sides(self):
        j = EquiJoin("S", ("b",), "R", ("a",))
        assert j.sides() == (("R", ("a",)), ("S", ("b",)))
