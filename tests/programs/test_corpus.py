"""Program corpus: languages, loading, iteration."""

import os

import pytest

from repro.exceptions import ExtractionError
from repro.programs.corpus import ApplicationProgram, ProgramCorpus


class TestApplicationProgram:
    def test_basic(self):
        p = ApplicationProgram("x.sql", "sql", "SELECT 1 FROM R;\n")
        assert p.line_count == 2

    def test_unknown_language_rejected(self):
        with pytest.raises(ExtractionError):
            ApplicationProgram("x.xyz", "fortran", "")


class TestProgramCorpus:
    def test_add_source_infers_language(self):
        corpus = ProgramCorpus()
        assert corpus.add_source("a.sql", "").language == "sql"
        assert corpus.add_source("b.cob", "").language == "cobol"
        assert corpus.add_source("c.cbl", "").language == "cobol"
        assert corpus.add_source("d.pc", "").language == "c"
        assert corpus.add_source("e.rpt", "").language == "report"
        assert corpus.add_source("f.frm", "").language == "form"

    def test_unknown_extension_needs_explicit_language(self):
        corpus = ProgramCorpus()
        with pytest.raises(ExtractionError):
            corpus.add_source("weird.xyz", "")
        corpus.add_source("weird.xyz", "", language="sql")
        assert "weird.xyz" in corpus

    def test_duplicate_name_rejected(self):
        corpus = ProgramCorpus()
        corpus.add_source("a.sql", "")
        with pytest.raises(ExtractionError):
            corpus.add_source("a.sql", "")

    def test_iteration_sorted_by_name(self):
        corpus = ProgramCorpus()
        corpus.add_source("z.sql", "")
        corpus.add_source("a.sql", "")
        assert [p.name for p in corpus] == ["a.sql", "z.sql"]

    def test_lookup(self):
        corpus = ProgramCorpus()
        corpus.add_source("a.sql", "SELECT 1 FROM R")
        assert corpus.program("a.sql").language == "sql"
        with pytest.raises(ExtractionError):
            corpus.program("ghost.sql")

    def test_total_lines(self):
        corpus = ProgramCorpus()
        corpus.add_source("a.sql", "x\ny\n")
        corpus.add_source("b.sql", "z")
        assert corpus.total_lines() == 4

    def test_from_directory(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.sql").write_text("SELECT 1 FROM R;")
        (tmp_path / "sub" / "b.cob").write_text("EXEC SQL SELECT 1 FROM R END-EXEC.")
        (tmp_path / "ignore.txt").write_text("not code")
        corpus = ProgramCorpus.from_directory(str(tmp_path))
        assert len(corpus) == 2
        assert "a.sql" in corpus
        assert os.path.join("sub", "b.cob") in corpus
