"""Embedded-SQL extraction: EXEC SQL blocks, host variables, cursors."""

from repro.programs.corpus import ApplicationProgram
from repro.programs.embedded import (
    HOST_VARIABLE_MARKER,
    extract_sql_units,
    normalize_embedded,
)


class TestNormalize:
    def test_host_variables_become_markers(self):
        out = normalize_embedded("SELECT a FROM R WHERE b = :host")
        assert ":host" not in out
        assert HOST_VARIABLE_MARKER in out

    def test_into_clause_removed(self):
        out = normalize_embedded("SELECT a INTO :x, :y FROM R")
        assert "INTO" not in out.upper()

    def test_cursor_prefix_removed(self):
        out = normalize_embedded("DECLARE c1 CURSOR FOR SELECT a FROM R")
        assert out.upper().startswith("SELECT")

    def test_leading_comments_removed(self):
        out = normalize_embedded("-- header\nSELECT a FROM R")
        assert out.startswith("SELECT")

    def test_trailing_semicolon_stripped(self):
        assert normalize_embedded("SELECT a FROM R;").endswith("R")


class TestSQLFiles:
    def test_statements_split_on_semicolons(self):
        program = ApplicationProgram(
            "r.sql", "sql",
            "SELECT a FROM R;\n-- note\nSELECT b FROM S;",
        )
        units = extract_sql_units(program)
        assert len(units) == 2
        assert units[0].index == 0
        assert units[1].index == 1

    def test_comment_before_statement_kept(self):
        program = ApplicationProgram(
            "r.sql", "sql", "-- report header\nSELECT a FROM R;"
        )
        units = extract_sql_units(program)
        assert len(units) == 1

    def test_non_queries_skipped(self):
        program = ApplicationProgram(
            "r.sql", "sql", "COMMIT; SELECT a FROM R; WHENEVER SQLERROR STOP;"
        )
        units = extract_sql_units(program)
        assert len(units) == 1


class TestCobol:
    SOURCE = """
       IDENTIFICATION DIVISION.
       PROCEDURE DIVISION.
           EXEC SQL
             SELECT no INTO :no FROM HEmployee WHERE no = :target
           END-EXEC.
           EXEC SQL
             OPEN some_cursor
           END-EXEC.
           EXEC SQL
             DECLARE c CURSOR FOR SELECT dep FROM Department
           END-EXEC.
    """

    def test_blocks_extracted_and_filtered(self):
        program = ApplicationProgram("p.cob", "cobol", self.SOURCE)
        units = extract_sql_units(program)
        texts = [u.text.upper() for u in units]
        assert len(units) == 2                      # OPEN block filtered out
        assert all(t.startswith("SELECT") for t in texts)

    def test_provenance_recorded(self):
        program = ApplicationProgram("p.cob", "cobol", self.SOURCE)
        units = extract_sql_units(program)
        assert units[0].program == "p.cob"


class TestProC:
    SOURCE = """
    void f(void) {
        EXEC SQL SELECT a FROM R WHERE x = :v;
        EXEC SQL COMMIT;
    }
    """

    def test_c_blocks_end_at_semicolon(self):
        program = ApplicationProgram("p.pc", "c", self.SOURCE)
        units = extract_sql_units(program)
        assert len(units) == 1
        assert units[0].text.upper().startswith("SELECT")
