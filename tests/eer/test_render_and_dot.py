"""DOT export and text rendering of EER schemas."""

import pytest

from repro.eer.dot import to_dot
from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType
from repro.eer.render import render_text


@pytest.fixture
def schema():
    eer = EERSchema()
    eer.add_entity(EntityType("Person", ("id",), ("id",)))
    eer.add_entity(EntityType("Employee", ("no",), ("no",)))
    eer.add_entity(
        EntityType(
            "HEmployee", ("no", "date"), ("no", "date"),
            weak=True, owners=("Employee",), discriminator=("date",),
        )
    )
    eer.add_relationship(
        RelationshipType(
            "Assignment",
            (Participation("Person", "N"), Participation("Employee", "N")),
            attributes=("date",),
        )
    )
    eer.add_isa("Employee", "Person")
    return eer


class TestDot:
    def test_valid_structure(self, schema):
        dot = to_dot(schema)
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")

    def test_entities_are_boxes_weak_doubled(self, schema):
        dot = to_dot(schema)
        assert '"Person" [shape=box, peripheries=1' in dot
        assert '"HEmployee" [shape=box, peripheries=2' in dot

    def test_relationship_is_diamond_with_legs(self, schema):
        dot = to_dot(schema)
        assert "shape=diamond" in dot
        assert '"Assignment" -- "Person"' in dot
        assert '"Assignment" -- "Employee"' in dot

    def test_isa_edge_labelled(self, schema):
        dot = to_dot(schema)
        assert '"Employee" -- "Person"' in dot
        assert 'label="is-a"' in dot

    def test_names_quoted(self):
        eer = EERSchema()
        eer.add_entity(EntityType("Ass-Dept"))
        assert '"Ass-Dept"' in to_dot(eer)


class TestRenderText:
    def test_sections_present(self, schema):
        text = render_text(schema)
        assert "Entity-types:" in text
        assert "Weak entity-types:" in text
        assert "Relationship-types:" in text
        assert "Specializations:" in text

    def test_weak_entity_line(self, schema):
        text = render_text(schema)
        assert "[[HEmployee]] of Employee discriminator(date)" in text

    def test_relationship_line_with_cardinalities(self, schema):
        text = render_text(schema)
        assert "Person(N)" in text and "Employee(N)" in text
        assert "carrying [date]" in text

    def test_isa_line(self, schema):
        assert "Employee --|> Person" in render_text(schema)

    def test_empty_sections_omitted(self):
        eer = EERSchema()
        eer.add_entity(EntityType("Solo"))
        text = render_text(eer)
        assert "Relationship-types:" not in text
        assert "Weak entity-types:" not in text
