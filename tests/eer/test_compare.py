"""Structural EER comparison: signatures and diffs."""


from repro.eer.compare import diff_schemas, schemas_equivalent
from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType


def base_schema(rel_name="WorksIn") -> EERSchema:
    eer = EERSchema()
    eer.add_entity(EntityType("A", key=("a",)))
    eer.add_entity(EntityType("B", key=("b",)))
    eer.add_relationship(
        RelationshipType(
            rel_name, (Participation("A", "N"), Participation("B", "1"))
        )
    )
    return eer


class TestEquivalence:
    def test_identical_schemas_equivalent(self):
        assert schemas_equivalent(base_schema(), base_schema())

    def test_relationship_names_irrelevant(self):
        assert schemas_equivalent(base_schema("R1"), base_schema("R2"))

    def test_cardinality_matters(self):
        left = base_schema()
        right = EERSchema()
        right.add_entity(EntityType("A", key=("a",)))
        right.add_entity(EntityType("B", key=("b",)))
        right.add_relationship(
            RelationshipType(
                "WorksIn", (Participation("A", "N"), Participation("B", "N"))
            )
        )
        assert not schemas_equivalent(left, right)

    def test_weak_flag_matters(self):
        left = EERSchema()
        left.add_entity(EntityType("A", key=("a",)))
        right = EERSchema()
        right.add_entity(EntityType("Owner"))
        right.add_entity(EntityType("A", weak=True, owners=("Owner",)))
        assert not schemas_equivalent(left, right)

    def test_relationship_multiset_counted(self):
        # two identical binary relationships vs one
        one = base_schema()
        two = base_schema()
        two.add_relationship(
            RelationshipType(
                "Also", (Participation("A", "N"), Participation("B", "1"))
            )
        )
        assert not schemas_equivalent(one, two)


class TestDiff:
    def test_empty_diff(self):
        diff = diff_schemas(base_schema(), base_schema())
        assert diff.is_empty()
        assert "equivalent" in diff.summary()

    def test_missing_entity_reported(self):
        expected = base_schema()
        actual = EERSchema()
        actual.add_entity(EntityType("A", key=("a",)))
        actual.add_entity(EntityType("B", key=("b",)))
        actual.add_entity(EntityType("C"))
        diff = diff_schemas(expected, actual)
        assert diff.extra_entities == ["C"]
        assert diff.missing_relationships
        assert not diff.is_empty()

    def test_isa_diff(self):
        expected = EERSchema()
        expected.add_entity(EntityType("Sub"))
        expected.add_entity(EntityType("Sup"))
        expected.add_isa("Sub", "Sup")
        actual = EERSchema()
        actual.add_entity(EntityType("Sub"))
        actual.add_entity(EntityType("Sup"))
        diff = diff_schemas(expected, actual)
        assert diff.missing_isa == ["Sub is-a Sup"]

    def test_summary_mentions_kinds(self):
        expected = base_schema()
        actual = EERSchema()
        actual.add_entity(EntityType("A", key=("a",)))
        diff = diff_schemas(expected, actual)
        text = diff.summary()
        assert "missing entities" in text
        assert "missing relationships" in text
