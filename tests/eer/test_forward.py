"""EER → relational forward mapping and the Translate round-trip."""

import pytest

from repro.dependencies.ind import InclusionDependency as IND
from repro.eer.forward import eer_to_relational
from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType
from repro.exceptions import SchemaError


def small_eer() -> EERSchema:
    eer = EERSchema()
    eer.add_entity(EntityType("customer", ("cid", "cname"), ("cid",)))
    eer.add_entity(EntityType("product", ("pid", "plabel"), ("pid",)))
    eer.add_relationship(
        RelationshipType(
            "buys",
            (
                Participation("customer", "N", via=("cid",)),
                Participation("product", "N", via=("pid",)),
            ),
            attributes=("qty",),
        )
    )
    return eer


class TestEntityMapping:
    def test_entity_relation_keyed(self):
        schema, _ric = eer_to_relational(small_eer())
        customer = schema.relation("customer")
        assert customer.attribute_names == ("cid", "cname")
        assert customer.is_key(["cid"])
        assert not customer.attribute("cid").nullable

    def test_entity_without_key_rejected(self):
        eer = EERSchema()
        eer.add_entity(EntityType("bad", ("x",)))
        with pytest.raises(SchemaError):
            eer_to_relational(eer)


class TestRelationshipMapping:
    def test_mn_relationship_becomes_relation(self):
        schema, ric = eer_to_relational(small_eer())
        buys = schema.relation("buys")
        assert buys.attribute_names == ("cid", "pid", "qty")
        assert buys.is_key(["cid", "pid"])
        assert IND("buys", ("cid",), "customer", ("cid",)) in ric
        assert IND("buys", ("pid",), "product", ("pid",)) in ric

    def test_binary_n1_maps_to_fk_constraint_only(self):
        eer = EERSchema()
        eer.add_entity(EntityType("dept", ("dep", "mgr"), ("dep",)))
        eer.add_entity(EntityType("manager", ("emp",), ("emp",)))
        eer.add_relationship(
            RelationshipType(
                "headed-by",
                (
                    Participation("dept", "N", via=("mgr",)),
                    Participation("manager", "1"),
                ),
            )
        )
        schema, ric = eer_to_relational(eer)
        assert "headed-by" not in schema
        assert ric == [IND("dept", ("mgr",), "manager", ("emp",))]

    def test_binary_without_via_rejected(self):
        eer = EERSchema()
        eer.add_entity(EntityType("a", ("x",), ("x",)))
        eer.add_entity(EntityType("b", ("y",), ("y",)))
        eer.add_relationship(
            RelationshipType(
                "r", (Participation("a", "N"), Participation("b", "1"))
            )
        )
        with pytest.raises(SchemaError):
            eer_to_relational(eer)


class TestLegResolution:
    def test_mn_without_via_uses_owner_keys(self):
        eer = EERSchema()
        eer.add_entity(EntityType("a", ("aid",), ("aid",)))
        eer.add_entity(EntityType("b", ("bid",), ("bid",)))
        eer.add_relationship(
            RelationshipType(
                "ab", (Participation("a", "N"), Participation("b", "N"))
            )
        )
        schema, ric = eer_to_relational(eer)
        ab = schema.relation("ab")
        assert ab.is_key(["aid", "bid"])
        assert IND("ab", ("aid",), "a", ("aid",)) in ric

    def test_via_arity_mismatch_rejected(self):
        eer = EERSchema()
        eer.add_entity(EntityType("a", ("aid",), ("aid",)))
        eer.add_entity(EntityType("b", ("b1", "b2"), ("b1", "b2")))
        eer.add_relationship(
            RelationshipType(
                "ab",
                (
                    Participation("a", "N", via=("aid",)),
                    Participation("b", "N", via=("b1",)),   # key has 2 attrs
                ),
            )
        )
        with pytest.raises(SchemaError):
            eer_to_relational(eer)


class TestWeakAndIsA:
    def test_weak_entity_owner_ric(self):
        eer = EERSchema()
        eer.add_entity(EntityType("employee", ("no",), ("no",)))
        eer.add_entity(
            EntityType(
                "hist", ("no", "date", "pay"), ("no", "date"),
                weak=True, owners=("employee",), discriminator=("date",),
            )
        )
        _schema, ric = eer_to_relational(eer)
        assert IND("hist", ("no",), "employee", ("no",)) in ric

    def test_isa_ric_positional(self):
        eer = EERSchema()
        eer.add_entity(EntityType("person", ("id",), ("id",)))
        eer.add_entity(EntityType("employee", ("no",), ("no",)))
        eer.add_isa("employee", "person")
        _schema, ric = eer_to_relational(eer)
        assert IND("employee", ("no",), "person", ("id",)) in ric

    def test_isa_arity_mismatch_rejected(self):
        eer = EERSchema()
        eer.add_entity(EntityType("a", ("x", "y"), ("x", "y")))
        eer.add_entity(EntityType("b", ("z",), ("z",)))
        eer.add_isa("a", "b")
        with pytest.raises(SchemaError):
            eer_to_relational(eer)


class TestRoundTrip:
    def test_paper_figure1_round_trips(self, paper_db, paper_corpus, paper_expert):
        """forward(Translate(S, RIC)) recovers (S, RIC) on the paper run."""
        from repro.core import DBREPipeline

        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        schema, ric = eer_to_relational(result.eer)

        original = result.restructured.schema
        assert schema.relation_names == original.relation_names
        for name in original.relation_names:
            assert set(schema.relation(name).attribute_names) == set(
                original.relation(name).attribute_names
            ), name
            assert tuple(schema.relation(name).primary_key().names) == tuple(
                original.relation(name).primary_key().names
            ), name
        assert set(ric) == set(result.ric)

    def test_synthetic_round_trip(self):
        from repro.core import DBREPipeline
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        scenario = build_scenario(ScenarioConfig(seed=7))
        result = DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )
        schema, ric = eer_to_relational(result.eer)
        assert schema.relation_names == result.restructured.schema.relation_names
        assert set(ric) == set(result.ric)
