"""Data-driven cardinality refinement."""

import pytest

from repro.core import DBREPipeline, ScriptedExpert
from repro.eer import refine_cardinalities
from repro.relational import Database, DatabaseSchema, NULL, RelationSchema
from repro.relational.domain import INTEGER


@pytest.fixture(scope="module")
def paper_run():
    from repro.workloads.paper_example import (
        build_paper_database,
        paper_expert_script,
        paper_program_corpus,
    )

    pipeline = DBREPipeline(
        build_paper_database(), ScriptedExpert(paper_expert_script())
    )
    return pipeline.run(corpus=paper_program_corpus())


class TestRefinementOnPaperExample:
    def test_department_manager_becomes_one_to_one(self, paper_run):
        """Each department row carries a distinct manager (or NULL): the
        data proves Department-Manager is 1:1, not N:1."""
        refined = refine_cardinalities(paper_run.eer, paper_run.restructured)
        rel = next(
            r for r in refined.relationships
            if set(r.entity_names) == {"Department", "Manager"}
        )
        cards = {p.entity: p.cardinality for p in rel.participants}
        assert cards == {"Department": "1", "Manager": "1"}

    def test_assignment_stays_many(self, paper_run):
        """Assignment's emp values repeat: the ternary legs stay N."""
        refined = refine_cardinalities(paper_run.eer, paper_run.restructured)
        ternary = refined.relationship("Assignment")
        legs = {p.entity: p.cardinality for p in ternary.participants}
        assert legs["Employee"] == "N"

    def test_entities_and_isa_untouched(self, paper_run):
        refined = refine_cardinalities(paper_run.eer, paper_run.restructured)
        assert [e.name for e in refined.entities] == [
            e.name for e in paper_run.eer.entities
        ]
        assert refined.isa_links == paper_run.eer.isa_links

    def test_original_schema_not_mutated(self, paper_run):
        before = {
            r.name: tuple(p.cardinality for p in r.participants)
            for r in paper_run.eer.relationships
        }
        refine_cardinalities(paper_run.eer, paper_run.restructured)
        after = {
            r.name: tuple(p.cardinality for p in r.participants)
            for r in paper_run.eer.relationships
        }
        assert before == after


class TestConservativeness:
    def test_duplicates_block_narrowing(self):
        from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType

        schema = DatabaseSchema(
            [
                RelationSchema.build(
                    "orders", ["oid", "cust"], key=["oid"],
                    types={"oid": INTEGER, "cust": INTEGER},
                ),
                RelationSchema.build(
                    "customer", ["cid"], key=["cid"], types={"cid": INTEGER},
                ),
            ]
        )
        db = Database(schema)
        db.insert_many("orders", [[1, 10], [2, 10], [3, NULL]])
        db.insert_many("customer", [[10]])
        eer = EERSchema()
        eer.add_entity(EntityType("orders", ("oid", "cust"), ("oid",)))
        eer.add_entity(EntityType("customer", ("cid",), ("cid",)))
        eer.add_relationship(
            RelationshipType(
                "places",
                (
                    Participation("orders", "N", via=("cust",)),
                    Participation("customer", "1"),
                ),
            )
        )
        refined = refine_cardinalities(eer, db)
        cards = {
            p.entity: p.cardinality
            for p in refined.relationship("places").participants
        }
        assert cards["orders"] == "N"      # cust repeats: stays many

    def test_nulls_do_not_count_as_duplicates(self):
        from repro.eer.model import EERSchema, EntityType, Participation, RelationshipType

        schema = DatabaseSchema(
            [
                RelationSchema.build(
                    "a", ["k", "f"], key=["k"], types={"k": INTEGER, "f": INTEGER},
                ),
                RelationSchema.build("b", ["x"], key=["x"], types={"x": INTEGER}),
            ]
        )
        db = Database(schema)
        db.insert_many("a", [[1, 5], [2, NULL], [3, NULL]])
        db.insert_many("b", [[5]])
        eer = EERSchema()
        eer.add_entity(EntityType("a", ("k", "f"), ("k",)))
        eer.add_entity(EntityType("b", ("x",), ("x",)))
        eer.add_relationship(
            RelationshipType(
                "r",
                (
                    Participation("a", "N", via=("f",)),
                    Participation("b", "1"),
                ),
            )
        )
        refined = refine_cardinalities(eer, db)
        cards = {
            p.entity: p.cardinality
            for p in refined.relationship("r").participants
        }
        assert cards["a"] == "1"           # the two NULLs are not duplicates
