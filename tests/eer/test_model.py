"""EER model objects and schema-level validation."""

import pytest

from repro.eer.model import (
    EERSchema,
    EntityType,
    IsALink,
    Participation,
    RelationshipType,
)
from repro.exceptions import SchemaError


def simple_schema() -> EERSchema:
    eer = EERSchema()
    eer.add_entity(EntityType("Person", ("id", "name"), ("id",)))
    eer.add_entity(EntityType("Dept", ("dep",), ("dep",)))
    return eer


class TestEntityType:
    def test_weak_needs_owner(self):
        with pytest.raises(SchemaError):
            EntityType("W", weak=True)

    def test_strong_cannot_have_owner(self):
        with pytest.raises(SchemaError):
            EntityType("S", owners=("O",))

    def test_weak_entity_ok(self):
        e = EntityType(
            "H", ("no", "date"), ("no", "date"),
            weak=True, owners=("Employee",), discriminator=("date",),
        )
        assert e.weak and e.owners == ("Employee",)


class TestRelationshipType:
    def test_needs_two_participants(self):
        with pytest.raises(SchemaError):
            RelationshipType("R", (Participation("A"),))

    def test_cardinality_validated(self):
        with pytest.raises(SchemaError):
            Participation("A", "many")

    def test_many_to_many_detection(self):
        rel = RelationshipType(
            "R", (Participation("A", "N"), Participation("B", "N"))
        )
        assert rel.is_many_to_many()
        rel2 = RelationshipType(
            "R", (Participation("A", "N"), Participation("B", "1"))
        )
        assert not rel2.is_many_to_many()


class TestSchemaOperations:
    def test_duplicate_names_rejected_across_kinds(self):
        eer = simple_schema()
        with pytest.raises(SchemaError):
            eer.add_entity(EntityType("Person"))
        with pytest.raises(SchemaError):
            eer.add_relationship(
                RelationshipType(
                    "Person", (Participation("Person"), Participation("Dept"))
                )
            )

    def test_relationship_needs_known_entities(self):
        eer = simple_schema()
        with pytest.raises(SchemaError):
            eer.add_relationship(
                RelationshipType(
                    "R", (Participation("Person"), Participation("Ghost"))
                )
            )

    def test_isa_endpoints_checked(self):
        eer = simple_schema()
        with pytest.raises(SchemaError):
            eer.add_isa("Person", "Ghost")
        with pytest.raises(SchemaError):
            eer.add_isa("Person", "Person")

    def test_isa_dedup_and_queries(self):
        eer = simple_schema()
        eer.add_entity(EntityType("Employee", key=("no",)))
        eer.add_isa("Employee", "Person")
        eer.add_isa("Employee", "Person")
        assert eer.isa_links == [IsALink("Employee", "Person")]
        assert eer.subtypes("Person") == ["Employee"]
        assert eer.supertypes("Employee") == ["Person"]

    def test_remove_entity_guarded(self):
        eer = simple_schema()
        eer.add_relationship(
            RelationshipType(
                "WorksIn", (Participation("Person"), Participation("Dept"))
            )
        )
        with pytest.raises(SchemaError):
            eer.remove_entity("Dept")

    def test_relationships_of(self):
        eer = simple_schema()
        eer.add_relationship(
            RelationshipType(
                "WorksIn", (Participation("Person"), Participation("Dept"))
            )
        )
        assert [r.name for r in eer.relationships_of("Person")] == ["WorksIn"]


class TestValidate:
    def test_isa_cycle_detected(self):
        eer = simple_schema()
        eer.add_entity(EntityType("A"))
        eer.add_entity(EntityType("B"))
        eer._isa.append(IsALink("A", "B"))
        eer._isa.append(IsALink("B", "A"))
        with pytest.raises(SchemaError):
            eer.validate()

    def test_weak_owner_must_exist(self):
        eer = EERSchema()
        eer.add_entity(
            EntityType("W", weak=True, owners=("Missing",))
        )
        with pytest.raises(SchemaError):
            eer.validate()

    def test_clean_schema_validates(self):
        eer = simple_schema()
        eer.validate()
