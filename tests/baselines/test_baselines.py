"""The four baselines: behaviour and the contrasts the paper draws."""


from repro.baselines import (
    ExhaustiveINDBaseline,
    KnownConstraintsBaseline,
    NaiveFDBaseline,
    NamingConventionBaseline,
)
from repro.core import DBREPipeline
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.paper_example import PAPER_EXPECTED


class TestExhaustiveIND:
    def test_finds_true_inclusions(self, paper_db):
        result = ExhaustiveINDBaseline(paper_db).run()
        assert IND("HEmployee", ("no",), "Person", ("id",)) in result.inds
        assert IND("Department", ("emp",), "HEmployee", ("no",)) in result.inds

    def test_candidate_space_far_exceeds_workload(self, paper_db, paper_q):
        baseline = ExhaustiveINDBaseline(paper_db)
        # the method examines |Q| = 5 candidates; the baseline over 100
        assert baseline.candidate_count() > 20 * len(paper_q)

    def test_counts_and_timing_reported(self, paper_db):
        result = ExhaustiveINDBaseline(paper_db).run()
        assert result.candidates_examined == 142
        assert result.elapsed_seconds >= 0


class TestNaiveFD:
    def test_finds_true_and_spurious_fds(self, paper_db):
        result = NaiveFDBaseline(paper_db, max_lhs_size=1).run()
        # true embedded dependency found...
        assert FD("Assignment", ("proj",), ("project-name",)) in result.fds
        # ...but so is the §5 integrity-constraint-only dependency
        assert FD("Person", ("zip-code",), ("state",)) in result.fds

    def test_non_key_filter(self, paper_db):
        result = NaiveFDBaseline(paper_db, max_lhs_size=1).run()
        non_key = result.non_key_fds(paper_db)
        assert len(non_key) < len(result.fds)
        assert all(
            not paper_db.schema.relation(fd.relation).is_key(tuple(fd.lhs))
            for fd in non_key
        )

    def test_relation_subset(self, paper_db):
        result = NaiveFDBaseline(paper_db, max_lhs_size=1).run(["Person"])
        assert set(fd.relation for fd in result.fds) == {"Person"}

    def test_candidate_counts_accumulated(self, paper_db):
        result = NaiveFDBaseline(paper_db, max_lhs_size=2).run()
        assert result.candidates_examined == sum(result.per_relation.values())
        assert result.candidates_examined > 50


class TestNamingConvention:
    def test_blind_to_renamed_references(self, paper_db):
        # HEmployee.no references Person.id under a different name: invisible
        result = NamingConventionBaseline(paper_db.schema).run()
        assert result.inds == []

    def test_sees_same_named_keys(self):
        schema = DatabaseSchema(
            [
                RelationSchema.build("city", ["cid", "name"], key=["cid"]),
                RelationSchema.build("person", ["pid", "cid"], key=["pid"]),
            ]
        )
        result = NamingConventionBaseline(schema).run()
        assert result.inds == [IND("person", ("cid",), "city", ("cid",))]

    def test_composite_keys_ignored(self):
        schema = DatabaseSchema(
            [
                RelationSchema.build("h", ["no", "date"], key=["no", "date"]),
                RelationSchema.build("x", ["k", "no"], key=["k"]),
            ]
        )
        # `no` is only part of a composite key: not proposed
        assert NamingConventionBaseline(schema).run().inds == []


class TestKnownConstraints:
    def test_matches_method_given_perfect_knowledge(
        self, paper_db, paper_corpus, paper_expert
    ):
        """Fed the method's own elicited sets, the restructuring tail
        produces the same RIC — isolating elicitation as the contribution."""
        method = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)

        from repro.core import ScriptedExpert
        from repro.workloads.paper_example import paper_expert_script

        baseline = KnownConstraintsBaseline(
            _with_s(paper_db, paper_corpus, paper_expert),
            ScriptedExpert(paper_expert_script()),
        ).run(
            list(method.fds),
            list(method.hidden),
            list(method.inds),
        )
        assert set(baseline.restruct.ric) == set(PAPER_EXPECTED.ric)
        assert set(method.ric) == set(baseline.restruct.ric)

    def test_original_untouched(self, paper_db, paper_expert):
        baseline = KnownConstraintsBaseline(paper_db, paper_expert)
        baseline.run([], [], [])
        assert "Employee" not in paper_db.schema


def _with_s(paper_db, paper_corpus, paper_expert):
    """A copy of the paper database including the S relation (Ass-Dept),
    since the known-constraints baseline starts after IND-Discovery."""
    from repro.core.ind_discovery import INDDiscovery
    from repro.core import ScriptedExpert
    from repro.workloads.paper_example import paper_expert_script, paper_equijoins

    db = paper_db.copy()
    INDDiscovery(db, ScriptedExpert(paper_expert_script())).run(paper_equijoins())
    return db
