"""Utility helpers: naming, ordering, text."""


from repro.util.naming import is_valid_identifier, merge_name, singularize, unique_name
from repro.util.ordering import stable_sorted
from repro.util.text import format_table, indent_block, pluralize


class TestNaming:
    def test_identifiers(self):
        assert is_valid_identifier("Ass-Dept")
        assert is_valid_identifier("project-name")
        assert is_valid_identifier("_x1")
        assert not is_valid_identifier("1x")
        assert not is_valid_identifier("-lead")
        assert not is_valid_identifier("")

    def test_unique_name_suffixes(self):
        assert unique_name("Manager", []) == "Manager"
        assert unique_name("Manager", ["Manager"]) == "Manager_2"
        assert unique_name("Manager", ["Manager", "Manager_2"]) == "Manager_3"

    def test_unique_name_case_insensitive(self):
        assert unique_name("manager", ["MANAGER"]) == "manager_2"

    def test_merge_name_paper_style(self):
        assert merge_name("Assignment", "Department") == "Assi-Depa"

    def test_singularize(self):
        assert singularize("employees") == "employee"
        assert singularize("categories") == "category"
        assert singularize("boxes") == "box"
        assert singularize("staff") == "staff"


class TestOrderingAndText:
    def test_stable_sorted(self):
        assert stable_sorted([3, 1, 2]) == [1, 2, 3]

    def test_indent_block_skips_empty_lines(self):
        assert indent_block("a\n\nb", "  ") == "  a\n\n  b"

    def test_pluralize(self):
        assert pluralize(1, "relation") == "1 relation"
        assert pluralize(3, "relation") == "3 relations"
        assert pluralize(2, "query", "queries") == "2 queries"

    def test_format_table_aligns(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 20]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
