"""The certified synthesis engine and its machine-checkable certificates."""

import dataclasses

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.exceptions import ProcessError
from repro.normalization.bcnf import bcnf_decompose
from repro.normalization.certificate import (
    certificate_from_dict,
    certificate_to_dict,
    read_certificates_jsonl,
    verify_certificate,
    write_certificates_jsonl,
)
from repro.normalization.engine import certify_decomposition, normalize
from repro.normalization.normal_forms import NormalForm, diagnose_normal_form
from repro.normalization.synthesis import (
    SynthesisOutcome,
    SynthesizedRelation,
    _references,
    _remove_avoidable_attributes,
    bernstein_synthesis,
    canonical_cover,
)
from repro.util.jsonl import load_jsonl, save_jsonl


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestCanonicalCover:
    def test_merges_same_lhs(self):
        cover = canonical_cover(fds("a -> b", "a -> c"))
        assert cover == [FD("", ("a",), ("b", "c"))]

    def test_each_lhs_appears_once(self):
        cover = canonical_cover(fds("a -> b", "b -> c", "a -> c", "a, b -> c"))
        lhss = [fd.lhs for fd in cover]
        assert len(lhss) == len(set(lhss))

    def test_deterministic(self):
        deps = fds("b -> a", "a -> c", "a -> b")
        assert canonical_cover(deps) == canonical_cover(list(reversed(deps)))


class TestBernsteinSynthesis:
    def test_equivalent_lhs_merge_keeps_both_keys(self):
        # a <-> b: one scheme, two candidate keys
        outcome = bernstein_synthesis(["a", "b", "c"], fds("a -> b, c", "b -> a"))
        assert len(outcome.relations) == 1
        relation = outcome.relations[0]
        assert set(relation.attributes) == {"a", "b", "c"}
        assert (("a",) in relation.keys) and (("b",) in relation.keys)

    def test_repair_relation_when_chase_lossy(self):
        outcome = bernstein_synthesis(["a", "b", "c"], fds("b -> c"))
        repair = [r for r in outcome.relations if r.origin == "repair"]
        assert outcome.repaired
        assert len(repair) == 1
        assert set(repair[0].attributes) == {"a", "b"}

    def test_no_repair_when_a_scheme_is_a_key(self):
        outcome = bernstein_synthesis(["a", "b", "c"], fds("a -> b", "b -> c"))
        assert not outcome.repaired
        assert all(r.origin == "synthesis" for r in outcome.relations)

    def test_avoidable_attribute_removed(self):
        # Handcrafted redundant overlap: c rides along in (a, b, c)
        # although (b, c) already holds it, and b -> c keeps every
        # invariant alive after the removal — so the refinement fires.
        cover = fds("a -> b", "b -> c")
        outcome = SynthesisOutcome(universe=("a", "b", "c"))
        outcome.relations = [
            SynthesizedRelation("R1", ("a", "b", "c"), ("a",), keys=(("a",),)),
            SynthesizedRelation("R2", ("b", "c"), ("b",), keys=(("b",),)),
        ]
        _remove_avoidable_attributes(outcome, cover, ["a", "b", "c"])
        assert outcome.relations[0].attributes == ("a", "b")
        assert ("R1", "c") in outcome.removed
        assert any(s.action == "remove-avoidable" for s in outcome.steps)

    def test_avoidable_removal_never_breaks_the_invariants(self):
        # removal must refuse when dropping the attribute would lose
        # the only materialization of a dependency
        deps = fds("a -> b, c", "b -> a", "d -> c")
        outcome = bernstein_synthesis(["a", "b", "c", "d"], deps)
        assert outcome.removed == []
        fragments = outcome.fragments()
        assert {a for f in fragments for a in f} == {"a", "b", "c", "d"}

    def test_steps_record_the_run(self):
        outcome = bernstein_synthesis(["a", "b", "c"], fds("a -> b", "b -> c"))
        actions = [s.action for s in outcome.steps]
        assert actions[0] == "canonical-cover"
        assert "group" in actions


class TestReferences:
    def _parent_child(self):
        parent = SynthesizedRelation(
            "P", ("a", "b"), ("a",), keys=(("a",), ("b",))
        )
        child = SynthesizedRelation(
            "C", ("a", "b", "x"), ("x",), keys=(("x",),)
        )
        return [parent, child]

    def test_single_reference_pruning(self):
        refs = _references(self._parent_child(), single_ref=True)
        pairs = [(r.child, r.parent) for r in refs]
        assert pairs.count(("C", "P")) == 1

    def test_all_references_without_pruning(self):
        refs = _references(self._parent_child(), single_ref=False)
        pairs = [(r.child, r.parent) for r in refs]
        assert pairs.count(("C", "P")) == 2


class TestBCNFDecomposition:
    def test_zip_example_reaches_bcnf_losing_a_dependency(self):
        deps = fds("street, city -> zip", "zip -> city")
        fragments, steps = bcnf_decompose(["city", "street", "zip"], deps)
        for fragment in fragments:
            local = [
                fd for fd in deps
                if set(fd.lhs) | set(fd.rhs) <= set(fragment)
            ]
            assert diagnose_normal_form(list(fragment), local).at_least(
                NormalForm.BOYCE_CODD
            )
        assert any(s.action == "bcnf-split" for s in steps)

    def test_bcnf_input_is_returned_whole(self):
        fragments, _steps = bcnf_decompose(["a", "b"], fds("a -> b"))
        assert fragments == [("a", "b")]


class TestNormalizeEngine:
    def test_unknown_target_rejected(self):
        with pytest.raises(ProcessError):
            normalize(["a", "b"], fds("a -> b"), target_nf="2nf")

    def test_3nf_result_is_certified(self):
        result = normalize(
            ["a", "b", "c", "d"], fds("a -> b", "b -> c"), target_nf="3nf"
        )
        assert result.certificate.lossless
        assert result.certificate.lost == ()
        assert verify_certificate(result.certificate) == []
        assert result.meta["algorithm"] == "bernstein-3nf"

    def test_bcnf_records_the_lost_dependency(self):
        result = normalize(
            ["city", "street", "zip"],
            fds("street, city -> zip", "zip -> city"),
            target_nf="bcnf",
        )
        certificate = result.certificate
        assert certificate.lossless
        assert certificate.lost == ("street, city -> zip",)
        assert not certificate.dependency_preserving
        assert all(s.normal_form == "BCNF" for s in certificate.relations)
        assert verify_certificate(certificate) == []

    def test_schemes_classical_view(self):
        result = normalize(["a", "b", "c"], fds("a -> b", "b -> c"))
        assert (("a", "b"), ("a",)) in result.schemes()
        assert (("b", "c"), ("b",)) in result.schemes()


class TestCertifyDecomposition:
    def test_lossy_decomposition_detected_and_repaired(self):
        # (a, b) + (b, c) under a -> b only: the chase finds it lossy;
        # the repair relation (a, c) — the global candidate key — fixes
        # it, and the pre-repair verdict is recorded.
        certificate = certify_decomposition(
            "Src",
            ["a", "b", "c"],
            [("L", ("a", "b"), ("a",)), ("R", ("b", "c"), ("b", "c"))],
            fds("a -> b"),
            repair=True,
        )
        assert certificate.repaired
        assert certificate.lossless
        assert certificate.meta["pre_repair_lossless"] is False
        repair = [s for s in certificate.relations if s.origin == "repair"]
        assert len(repair) == 1
        assert set(repair[0].attributes) == {"a", "c"}
        assert any(s.action == "repair" for s in certificate.steps)
        assert verify_certificate(certificate) == []

    def test_lossy_without_repair_is_recorded_honestly(self):
        certificate = certify_decomposition(
            "Src",
            ["a", "b", "c"],
            [("L", ("a", "b"), ("a",)), ("R", ("b", "c"), ("b", "c"))],
            fds("a -> b"),
            repair=False,
        )
        assert not certificate.lossless
        assert not certificate.repaired

    def test_lost_dependency_recorded(self):
        certificate = certify_decomposition(
            "Addr",
            ["city", "street", "zip"],
            [
                ("A", ("street", "zip"), ("street", "zip")),
                ("B", ("zip", "city"), ("zip",)),
            ],
            fds("street, city -> zip", "zip -> city"),
        )
        assert certificate.lossless
        assert certificate.lost == ("street, city -> zip",)
        assert "zip -> city" in certificate.preserved


class TestCertificateRoundTrip:
    def _certificate(self):
        return normalize(
            ["a", "b", "c", "d"], fds("a -> b", "b -> c")
        ).certificate

    def test_dict_round_trip(self, tmp_path):
        certificate = self._certificate()
        rebuilt = certificate_from_dict(certificate_to_dict(certificate))
        assert rebuilt == certificate

    def test_jsonl_round_trip(self, tmp_path):
        certificate = self._certificate()
        path = str(tmp_path / "certs.jsonl")
        write_certificates_jsonl([certificate], path)
        read = read_certificates_jsonl(path)
        assert read == [certificate]
        assert verify_certificate(read[0]) == []

    def test_bad_header_rejected(self, tmp_path):
        path = str(tmp_path / "certs.jsonl")
        write_certificates_jsonl([self._certificate()], path)
        records = load_jsonl(path)
        records[0]["count"] = 7
        save_jsonl(records, path)
        with pytest.raises(ValueError):
            read_certificates_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "certs.jsonl")
        save_jsonl([{"type": "certificates", "format": "nope@9"}], path)
        with pytest.raises(ValueError):
            read_certificates_jsonl(path)


class TestVerifierRejectsMutations:
    def _certificate(self):
        return normalize(
            ["a", "b", "c", "d"], fds("a -> b", "b -> c")
        ).certificate

    def _claims(self, certificate):
        return {v.claim for v in verify_certificate(certificate)}

    def test_accepts_the_emitted_certificate(self):
        assert verify_certificate(self._certificate()) == []

    def test_rejects_flipped_chase_verdict(self):
        certificate = self._certificate()
        certificate.lossless = not certificate.lossless
        assert "lossless" in self._claims(certificate)

    def test_rejects_tampered_preservation(self):
        certificate = self._certificate()
        moved = certificate.preserved[0]
        certificate.preserved = certificate.preserved[1:]
        certificate.lost = certificate.lost + (moved,)
        claims = self._claims(certificate)
        assert "preserved" in claims and "lost" in claims

    def test_rejects_wrong_key(self):
        certificate = self._certificate()
        schemes = list(certificate.relations)
        schemes[0] = dataclasses.replace(schemes[0], key=())
        certificate.relations = tuple(schemes)
        assert "keys" in self._claims(certificate)

    def test_rejects_wrong_normal_form_claim(self):
        certificate = self._certificate()
        schemes = list(certificate.relations)
        schemes[0] = dataclasses.replace(schemes[0], normal_form="1NF")
        certificate.relations = tuple(schemes)
        assert "normal_form" in self._claims(certificate)

    def test_rejects_uncovered_universe(self):
        certificate = self._certificate()
        certificate.universe = certificate.universe + ("zz",)
        assert "relations" in self._claims(certificate)

    def test_rejects_unknown_target(self):
        certificate = self._certificate()
        certificate.target = "4nf"
        assert "target" in self._claims(certificate)

    def test_non_strict_accepts_understated_forms(self):
        certificate = self._certificate()
        schemes = list(certificate.relations)
        # claim less than the diagnosis; strict rejects, lenient accepts
        schemes[0] = dataclasses.replace(schemes[0], normal_form="3NF")
        certificate.relations = tuple(schemes)
        if verify_certificate(certificate, strict_forms=True):
            assert not verify_certificate(certificate, strict_forms=False)
