"""Bernstein synthesis + chase-based audits."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.normalization.chase import dependency_preserving, lossless_join
from repro.normalization.decomposition import Decomposition, decompose_relation
from repro.normalization.normal_forms import NormalForm, diagnose_normal_form
from repro.normalization.synthesis import synthesize_3nf
from repro.exceptions import ProcessError


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestLosslessJoin:
    def test_classic_lossless(self):
        deps = fds("a -> b")
        assert lossless_join(["a", "b", "c"], [["a", "b"], ["a", "c"]], deps)

    def test_classic_lossy(self):
        # no FD connecting the fragments through their intersection
        assert not lossless_join(["a", "b", "c"], [["a", "b"], ["b", "c"]], [])

    def test_lossy_becomes_lossless_with_fd(self):
        deps = fds("b -> c")
        assert lossless_join(["a", "b", "c"], [["a", "b"], ["b", "c"]], deps)

    def test_full_fragment_always_lossless(self):
        assert lossless_join(["a", "b"], [["a", "b"]], [])


class TestDependencyPreservation:
    def test_preserved(self):
        deps = fds("a -> b", "b -> c")
        assert dependency_preserving([["a", "b"], ["b", "c"]], deps)

    def test_not_preserved(self):
        # classic: city-street-zip split losing street,city -> zip
        deps = fds("street, city -> zip", "zip -> city")
        assert not dependency_preserving([["street", "zip"], ["zip", "city"]], deps)

    def test_iterated_closure_catches_indirect(self):
        deps = fds("a -> b", "b -> c", "c -> a")
        assert dependency_preserving([["a", "b"], ["b", "c"], ["c", "a"]], deps)


class TestDecomposition:
    def test_must_cover_universe(self):
        with pytest.raises(ProcessError):
            Decomposition(("a", "b", "c"), (("a", "b"),))

    def test_restruct_split_is_lossless(self):
        fd = FD("R", ("f",), ("p", "q"))
        deps = [fd, FD("R", ("k",), ("f", "p", "q"))]
        decomposition = decompose_relation(["k", "f", "p", "q"], fd)
        assert decomposition.fragments == (("f", "p", "q"), ("k", "f"))
        assert decomposition.is_lossless(deps)
        assert decomposition.preserves(deps)

    def test_split_requires_applicable_fd(self):
        with pytest.raises(ProcessError):
            decompose_relation(["a", "b"], FD("R", ("x",), ("b",)))


class TestSynthesis:
    def test_groups_by_lhs(self):
        schemes = synthesize_3nf(["a", "b", "c"], fds("a -> b", "a -> c"))
        assert (("a", "b", "c"), ("a",)) in schemes

    def test_key_relation_added_when_missing(self):
        # b -> c gives scheme (b, c); key {a, b} must be added
        schemes = synthesize_3nf(["a", "b", "c"], fds("b -> c"))
        assert any(set(attrs) == {"a", "b"} for attrs, _ in schemes)

    def test_all_schemes_are_3nf(self):
        deps = fds("a -> b", "b -> c", "c, d -> e")
        for attrs, _key in synthesize_3nf(["a", "b", "c", "d", "e"], deps):
            local = [
                fd for fd in deps
                if set(fd.lhs) <= set(attrs) and set(fd.rhs) <= set(attrs)
            ]
            assert diagnose_normal_form(attrs, local).at_least(NormalForm.THIRD)

    def test_synthesis_is_lossless_and_preserving(self):
        deps = fds("a -> b", "b -> c")
        universe = ["a", "b", "c", "d"]
        schemes = synthesize_3nf(universe, deps)
        fragments = [list(attrs) for attrs, _ in schemes]
        assert lossless_join(universe, fragments, deps)
        assert dependency_preserving(fragments, deps)

    def test_subset_schemes_dropped(self):
        schemes = synthesize_3nf(["a", "b", "c"], fds("a -> b", "a -> b, c"))
        attr_sets = [set(attrs) for attrs, _ in schemes]
        assert len(attr_sets) == len({frozenset(s) for s in attr_sets})
