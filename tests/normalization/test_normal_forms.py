"""Normal-form diagnosis, including the §5 annotations."""


from repro.dependencies.fd import FunctionalDependency as FD
from repro.normalization.normal_forms import (
    NormalForm,
    diagnose_normal_form,
    is_2nf,
    is_3nf,
    is_bcnf,
    schema_normal_forms,
)


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestClassics:
    def test_partial_dependency_breaks_2nf(self):
        # key {a, b}; b -> c is a partial dependency
        deps = fds("a, b -> c, d", "b -> c")
        assert not is_2nf(["a", "b", "c", "d"], deps)
        assert diagnose_normal_form(["a", "b", "c", "d"], deps) == NormalForm.FIRST

    def test_transitive_dependency_breaks_3nf(self):
        deps = fds("a -> b", "b -> c")
        assert is_2nf(["a", "b", "c"], deps)
        assert not is_3nf(["a", "b", "c"], deps)
        assert diagnose_normal_form(["a", "b", "c"], deps) == NormalForm.SECOND

    def test_3nf_but_not_bcnf(self):
        # classic: key {street, city}; zip -> city; zip is not a superkey
        # but city is prime
        deps = fds("street, city -> zip", "zip -> city")
        universe = ["street", "city", "zip"]
        assert is_3nf(universe, deps)
        assert not is_bcnf(universe, deps)
        assert diagnose_normal_form(universe, deps) == NormalForm.THIRD

    def test_key_only_fds_are_bcnf(self):
        deps = fds("a -> b, c")
        assert diagnose_normal_form(["a", "b", "c"], deps) == NormalForm.BOYCE_CODD

    def test_no_fds_is_bcnf(self):
        assert diagnose_normal_form(["a", "b"], []) == NormalForm.BOYCE_CODD

    def test_at_least_ordering(self):
        assert NormalForm.BOYCE_CODD.at_least(NormalForm.THIRD)
        assert not NormalForm.FIRST.at_least(NormalForm.SECOND)


class TestPaperAnnotations:
    """§5 annotates: HEmployee 3NF, Department 2NF, Assignment 1NF."""

    def test_paper_schema_forms(self, paper_db):
        deps = [
            FD("Department", ("emp",), ("skill", "proj")),
            FD("Assignment", ("proj",), ("project-name",)),
        ]
        forms = schema_normal_forms(paper_db.schema, deps)
        assert forms["Assignment"] == NormalForm.FIRST      # partial dep
        assert forms["Department"] == NormalForm.SECOND     # transitive dep
        assert forms["HEmployee"].at_least(NormalForm.THIRD)
        assert forms["Person"].at_least(NormalForm.THIRD)

    def test_person_with_zip_fd_drops_to_2nf(self, paper_db):
        # §5: "keeping the relation Person in 2NF does not imply update
        # anomalies" — with zip-code -> state, Person is 2NF
        deps = [FD("Person", ("zip-code",), ("state",))]
        forms = schema_normal_forms(paper_db.schema, deps)
        assert forms["Person"] == NormalForm.SECOND

    def test_restructured_schema_is_3nf(self, paper_db, paper_corpus, paper_expert):
        from repro.core import DBREPipeline

        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        forms = schema_normal_forms(result.restructured.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())


class TestMultiKeyDiagnosis:
    """Regression: prime attributes must come from *all* candidate keys.

    The old key search stopped early, so on schemas whose minimal keys
    have different sizes some prime attributes were missed and legal
    3NF relations were misdiagnosed as 2NF.
    """

    def test_two_key_counterexample(self):
        # classic two-key schema: keys {a, b} and {a, c}; c -> b has a
        # prime RHS, so the relation is 3NF (not BCNF)
        deps = fds("a, b -> c", "c -> b")
        universe = ["a", "b", "c"]
        assert is_3nf(universe, deps)
        assert not is_bcnf(universe, deps)
        assert diagnose_normal_form(universe, deps) == NormalForm.THIRD

    def test_keys_of_different_sizes(self):
        # keys {a}, {b, c, d} and {c, d, e}: every attribute is prime, so
        # d, e -> b (non-superkey LHS, prime RHS) leaves the relation in
        # 3NF; the old single-size key search diagnosed 2NF
        deps = fds("a -> b, c, d, e", "b, c, d -> a", "d, e -> b")
        universe = ["a", "b", "c", "d", "e"]
        assert is_2nf(universe, deps)
        assert is_3nf(universe, deps)
        assert not is_bcnf(universe, deps)
        assert diagnose_normal_form(universe, deps) == NormalForm.THIRD
