"""Fleet federation: merge semantics, live /fleet/metrics, status view."""

import threading
import urllib.request

import pytest

from repro.service.fleet import (
    fleet_status,
    instance_label,
    merge_expositions,
    metrics_url,
    parse_exposition,
    scrape_fleet,
)
from repro.service.jobs import JobManager
from repro.service.metrics import lint_exposition
from repro.service.server import build_server
from repro.workloads.paper_example import build_paper_database, paper_equijoins

EXPOSITION_A = """\
# HELP repro_jobs_total Jobs in the ledger, by state.
# TYPE repro_jobs_total gauge
repro_jobs_total{state="done"} 3
repro_jobs_total{state="queued"} 1
# HELP repro_live_dropped_total Live records dropped.
# TYPE repro_live_dropped_total counter
repro_live_dropped_total 7
"""

EXPOSITION_B = """\
# HELP repro_jobs_total Jobs in the ledger, by state.
# TYPE repro_jobs_total gauge
repro_jobs_total{state="done"} 5
# HELP repro_build_info Build identity.
# TYPE repro_build_info gauge
repro_build_info{version="1.0.0"} 1
"""


class TestParse:
    def test_families_samples_and_labels(self):
        families = parse_exposition(EXPOSITION_A)
        assert [f.name for f in families] == [
            "repro_jobs_total", "repro_live_dropped_total",
        ]
        jobs = families[0]
        assert jobs.kind == "gauge"
        assert jobs.samples == [
            ({"state": "done"}, "3"), ({"state": "queued"}, "1"),
        ]

    def test_tolerates_garbage_lines(self):
        families = parse_exposition("not a sample !!\n" + EXPOSITION_A)
        assert len(families) == 2


class TestMerge:
    def test_per_instance_labels_and_verbatim_values(self):
        merged = merge_expositions({"a:1": EXPOSITION_A, "b:2": EXPOSITION_B})
        assert lint_exposition(merged) == []
        # values are never summed across instances — each series keeps
        # its own monotonic counter under its own instance label
        assert 'repro_jobs_total{instance="a:1",state="done"} 3' in merged
        assert 'repro_jobs_total{instance="b:2",state="done"} 5' in merged
        assert 'repro_live_dropped_total{instance="a:1"} 7' in merged
        assert "repro_fleet_instances 2" in merged

    def test_metadata_emitted_once_per_family(self):
        merged = merge_expositions({"a:1": EXPOSITION_A, "b:2": EXPOSITION_B})
        assert merged.count("# TYPE repro_jobs_total gauge") == 1
        assert merged.count("# HELP repro_jobs_total") == 1

    def test_down_peer_degrades_to_peer_up_zero(self):
        merged = merge_expositions(
            {"a:1": EXPOSITION_A}, peer_up={"dead:9": False}
        )
        assert lint_exposition(merged) == []
        assert 'repro_fleet_peer_up{instance="a:1"} 1' in merged
        assert 'repro_fleet_peer_up{instance="dead:9"} 0' in merged

    def test_merge_is_lossless(self):
        merged = merge_expositions({"a:1": EXPOSITION_A, "b:2": EXPOSITION_B})

        def census(text):
            return sum(len(f.samples) for f in parse_exposition(text))

        fleet_own = sum(
            len(f.samples) for f in parse_exposition(merged)
            if f.name.startswith("repro_fleet_")
        )
        assert census(merged) - fleet_own == (
            census(EXPOSITION_A) + census(EXPOSITION_B)
        )


class TestUrls:
    def test_instance_label_is_the_netloc(self):
        assert instance_label("http://127.0.0.1:8750") == "127.0.0.1:8750"
        assert instance_label("127.0.0.1:8750") == "127.0.0.1:8750"

    def test_metrics_url_is_implied(self):
        assert metrics_url("127.0.0.1:8750") == "http://127.0.0.1:8750/metrics"
        assert metrics_url("http://h:1/metrics") == "http://h:1/metrics"


@pytest.fixture
def two_servers():
    """Two live in-process servers; the second peers at the first."""
    managers = [JobManager(runners=1), JobManager(runners=1)]
    first = build_server(managers[0], port=0)
    first_base = f"http://{first.server_address[0]}:{first.server_address[1]}"
    second = build_server(managers[1], port=0, peers=[first_base])
    servers = [first, second]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield managers, servers
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()
        for manager in managers:
            manager.shutdown()
        for thread in threads:
            thread.join(timeout=10)


def base_url(server):
    return f"http://{server.server_address[0]}:{server.server_address[1]}"


class TestLiveFederation:
    def test_fleet_metrics_covers_both_instances(self, two_servers):
        managers, servers = two_servers
        job = managers[0].submit(
            build_paper_database(), equijoins=paper_equijoins()
        )
        managers[0].result(job.id, timeout=60)
        with urllib.request.urlopen(
            base_url(servers[1]) + "/fleet/metrics", timeout=10
        ) as response:
            merged = response.read().decode("utf-8")
        assert lint_exposition(merged) == []
        first_instance = instance_label(base_url(servers[0]))
        second_instance = instance_label(base_url(servers[1]))
        assert (
            f'repro_jobs_total{{instance="{first_instance}",state="done"}} 1'
            in merged
        )
        assert f'instance="{second_instance}"' in merged
        assert "repro_fleet_instances 2" in merged

    def test_client_side_scrape_matches(self, two_servers):
        _managers, servers = two_servers
        merged = scrape_fleet([base_url(s) for s in servers])
        assert lint_exposition(merged) == []
        assert "repro_fleet_instances 2" in merged

    def test_scrape_with_a_dead_peer_degrades(self, two_servers):
        _managers, servers = two_servers
        merged = scrape_fleet(
            [base_url(servers[0]), "http://127.0.0.1:9"], timeout=2.0
        )
        assert lint_exposition(merged) == []
        assert 'repro_fleet_peer_up{instance="127.0.0.1:9"} 0' in merged

    def test_fleet_status_renders_both(self, two_servers):
        _managers, servers = two_servers
        rendered = fleet_status([base_url(s) for s in servers])
        assert "2/2 up" in rendered
        for server in servers:
            assert instance_label(base_url(server)) in rendered

    def test_health_probes_carry_identity(self, two_servers):
        import json

        _managers, servers = two_servers
        for probe in ("/healthz", "/readyz"):
            with urllib.request.urlopen(
                base_url(servers[0]) + probe, timeout=10
            ) as response:
                body = json.loads(response.read())
            assert body["version"]
            assert body["uptime_seconds"] >= 0
