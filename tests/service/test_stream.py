"""The SSE endpoint: replay, heartbeats, slow clients, concurrent watchers."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.jobs import JobManager
from repro.service.server import build_server
from repro.service.stream import (
    format_comment,
    format_event,
    parse_sse,
    sse_events,
)
from repro.workloads.paper_example import build_paper_database, paper_equijoins

from tests.service.test_jobs import gated_database


@pytest.fixture
def service():
    """A live server + manager; yields (manager, base URL)."""
    manager = JobManager(runners=2)
    server = build_server(manager, port=0, heartbeat=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield manager, f"http://{host}:{port}", server
    server.shutdown()
    server.server_close()
    manager.shutdown()
    thread.join(timeout=5)


def submit_paper_job(manager):
    return manager.submit(build_paper_database(), equijoins=paper_equijoins())


class TestWireFormat:
    def test_format_and_parse_round_trip(self):
        record = {"type": "progress", "seq": 7, "ts_ms": 1.5, "message": "x"}
        wire = (
            format_comment("heartbeat")
            + format_event(record)
            + format_comment("heartbeat")
        )
        blocks = list(parse_sse(wire.decode("utf-8").splitlines(keepends=True)))
        assert len(blocks) == 1
        event, event_id, data = blocks[0]
        assert event == "progress"
        assert event_id == "7"
        assert json.loads(data) == record

    def test_parse_handles_multiline_data_and_missing_terminator(self):
        lines = ["event: end\n", "data: {\n", "data: }\n"]
        [(event, _id, data)] = list(parse_sse(lines))
        assert event == "end"
        assert data == "{\n}"


class TestStreaming:
    def test_full_run_streams_every_phase_boundary(self, service):
        manager, base, _server = service
        job = submit_paper_job(manager)
        records = list(sse_events(f"{base}/jobs/{job.id}/events", timeout=30))
        opens = [r["name"] for r in records
                 if r["type"] == "span-open" and r.get("kind") == "phase"]
        assert opens == [
            "IND-Discovery", "LHS-Discovery", "RHS-Discovery",
            "Restruct", "Translate",
        ]
        closes = {r["name"] for r in records
                  if r["type"] == "span-close" and r.get("kind") == "phase"}
        assert closes == set(opens)
        # >= 1 progress tick inside each discovery phase
        for phase in ("IND-Discovery", "LHS-Discovery", "RHS-Discovery"):
            assert any(
                r["type"] == "progress" and r.get("phase") == phase
                for r in records
            ), f"no progress event inside {phase}"
        assert records[-1]["type"] == "end"
        assert records[-1]["state"] == "done"

    def test_last_event_id_replays_exactly_the_tail(self, service):
        manager, base, _server = service
        job = submit_paper_job(manager)
        url = f"{base}/jobs/{job.id}/events"
        full = list(sse_events(url, timeout=30))
        cut = full[len(full) // 2]["seq"]
        resumed = list(sse_events(url, last_event_id=cut, timeout=30))
        assert [r["seq"] for r in resumed] == [
            r["seq"] for r in full if r["seq"] > cut
        ]

    def test_bad_last_event_id_is_a_400(self, service):
        manager, base, _server = service
        job = submit_paper_job(manager)
        manager.result(job.id, timeout=30)
        request = urllib.request.Request(
            f"{base}/jobs/{job.id}/events",
            headers={"Last-Event-ID": "banana"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_cached_job_streams_a_bare_end_sentinel(self, service):
        manager, base, _server = service
        first = submit_paper_job(manager)
        manager.result(first.id, timeout=30)
        twin = submit_paper_job(manager)
        assert twin.cached
        records = list(sse_events(f"{base}/jobs/{twin.id}/events", timeout=10))
        assert [r["type"] for r in records] == ["end"]
        assert records[0]["cached"] is True

    def test_concurrent_watchers_see_the_same_stream(self, service):
        manager, base, _server = service
        database, backend = gated_database()
        job = manager.submit(database, equijoins=paper_equijoins())
        url = f"{base}/jobs/{job.id}/events"
        captured = [[] for _ in range(3)]

        def watch(bucket):
            bucket.extend(sse_events(url, timeout=30))

        watchers = [
            threading.Thread(target=watch, args=(bucket,), daemon=True)
            for bucket in captured
        ]
        for thread in watchers:
            thread.start()
        assert backend.entered.wait(timeout=30)
        backend.release.set()
        for thread in watchers:
            thread.join(timeout=30)
            assert not thread.is_alive()
        sequences = [[r["seq"] for r in bucket] for bucket in captured]
        assert sequences[0] == sequences[1] == sequences[2]
        assert captured[0][-1]["type"] == "end"

    def test_heartbeats_flow_while_the_job_is_gated(self, service):
        manager, base, _server = service
        database, backend = gated_database()
        job = manager.submit(database, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=30)
        # the run is now parked inside IND-Discovery: the stream idles
        request = urllib.request.Request(
            f"{base}/jobs/{job.id}/events",
            headers={"Last-Event-ID": "1000000"},  # nothing to replay
        )
        response = urllib.request.urlopen(request, timeout=10)
        try:
            comments = 0
            for raw in response:
                if raw.decode("utf-8").startswith(":"):
                    comments += 1
                    if comments >= 2:
                        break
        finally:
            response.close()
            backend.release.set()
        assert comments >= 2
        manager.result(job.id, timeout=30)


class TestHistoryReplay:
    """Backlogs page from bus history, never through the bounded queue."""

    def test_replay_longer_than_the_queue_bound_completes(self, service):
        from repro.obs.live import DEFAULT_QUEUE_SIZE

        manager, base, _server = service
        database, backend = gated_database()
        job = manager.submit(database, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=30)
        # flood the stream far past the subscriber queue bound while the
        # run is parked inside IND-Discovery
        for tick in range(DEFAULT_QUEUE_SIZE + 500):
            job.trace.progress("flood", current=tick)
        backend.release.set()
        manager.result(job.id, timeout=30)

        # a watcher connecting after the fact must receive the whole
        # backlog and the end sentinel — the old queue-funnelled replay
        # delivered the first 1024 records and heartbeat forever
        captured = []

        def watch():
            captured.extend(
                sse_events(f"{base}/jobs/{job.id}/events", timeout=30)
            )

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        watcher.join(timeout=30)
        assert not watcher.is_alive(), (
            "the watcher hung: the replay backlog dropped the end sentinel"
        )
        assert len(captured) > DEFAULT_QUEUE_SIZE
        assert captured[-1]["type"] == "end"
        sequences = [r["seq"] for r in captured]
        assert sequences == list(
            range(sequences[0], sequences[0] + len(sequences))
        )

    def test_mid_tail_drops_are_refilled_from_history(self, service):
        manager, base, server = service
        server.stream_queue = 4  # mid-tail drops are certain
        database, backend = gated_database()
        job = manager.submit(database, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=30)
        captured = []

        def watch():
            captured.extend(
                sse_events(f"{base}/jobs/{job.id}/events", timeout=30)
            )

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        time.sleep(0.3)  # let the stream connect and enter tail mode
        for tick in range(800):
            job.trace.progress("burst", current=tick)
        backend.release.set()
        manager.result(job.id, timeout=30)
        watcher.join(timeout=30)
        assert not watcher.is_alive()
        assert captured[-1]["type"] == "end"
        # no silent gaps, no duplicates: every seq between the first
        # delivered record and the end sentinel arrived exactly once
        sequences = [r["seq"] for r in captured]
        assert sequences == list(
            range(sequences[0], sequences[0] + len(sequences))
        )


class TestSlowClients:
    def test_slow_subscriber_never_stalls_the_run(self, service):
        manager, base, _server = service
        job = submit_paper_job(manager)
        result = manager.result(job.id, timeout=30)
        assert result is not None
        # the job's own bus enforces the bound; a crawling SSE client
        # maps to a bounded subscription with a drop counter
        slow = job.live.subscribe(maxsize=2, replay_from=0)
        drained = slow.drain()
        assert len(drained) == 2
        assert slow.dropped == job.live.last_seq - 2
