"""Kill-and-restart durability: ``repro serve --archive`` survives SIGKILL."""

import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.service.fleet import instance_label
from repro.service.metrics import lint_exposition
from repro.service.stream import sse_events

pytestmark = pytest.mark.slow


REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def serve(*extra_args):
    """``repro serve`` as a real subprocess; returns (process, base URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--heartbeat", "0.2", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "listening on" in line, line + process.stderr.read()
    return process, line.split()[4]


def kill(process):
    if process.poll() is None:
        process.kill()
        process.communicate(timeout=10)


def submit_demo(base):
    request = urllib.request.Request(
        base + "/jobs",
        data=json.dumps({"demo": True}).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def wait_archived(base, job_id, seconds=60):
    """Poll the ledger until the run has been written through to disk."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        record = get_json(f"{base}/jobs/{job_id}")
        if record.get("archived") and record["state"] in ("done", "failed"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached the archive")


class TestKillAndRestart:
    def test_archive_survives_sigkill(self, tmp_path):
        archive_dir = str(tmp_path / "runs.archive")

        # first life: run a demo job to completion, confirm it is durable
        process, base = serve("--archive", archive_dir)
        second = peered = None
        try:
            job = submit_demo(base)
            record = wait_archived(base, job["id"])
            assert record["state"] == "done"

            # the unclean exit: no drain, no shutdown hook
            process.kill()
            process.communicate(timeout=10)

            # second life: same archive directory, new process
            second, base2 = serve("--archive", archive_dir)

            # (a) the same spec is answered from the restored cache
            resubmit = submit_demo(base2)
            assert resubmit["cached"] is True
            assert resubmit["state"] == "done"
            assert resubmit["summary"] == record["summary"]

            # the pre-restart job is in the ledger with its original id
            restored = get_json(f"{base2}/jobs/{job['id']}")
            assert restored["state"] == "done"
            assert restored["archived"] is True
            assert restored["summary"] == record["summary"]

            # (b) its event stream replays from the archive, end included
            events = list(
                sse_events(f"{base2}/jobs/{job['id']}/events", timeout=30)
            )
            assert events, "archived replay produced no events"
            assert events[-1]["type"] == "end"
            assert events[-1]["state"] == "done"
            phases = {e.get("phase") for e in events if e.get("phase")}
            assert phases, "archived replay lost the phase boundaries"
            # Last-Event-ID resume still works against the archived stream
            tail = list(
                sse_events(
                    f"{base2}/jobs/{job['id']}/events",
                    last_event_id=events[-2]["seq"],
                    timeout=30,
                )
            )
            assert [e["seq"] for e in tail] == [events[-1]["seq"]]

            # (c) a federated scrape over two instances lints clean
            peered, base3 = serve("--peers", base2)
            with urllib.request.urlopen(
                base3 + "/fleet/metrics", timeout=10
            ) as response:
                merged = response.read().decode("utf-8")
            assert lint_exposition(merged) == []
            restored_instance = instance_label(base2)
            assert (
                f'repro_jobs_restored_total{{instance="{restored_instance}"}} 1'
                in merged
            )
            assert f'instance="{instance_label(base3)}"' in merged
            assert "repro_fleet_instances 2" in merged
        finally:
            kill(process)
            for survivor in (second, peered):
                if survivor is not None:
                    kill(survivor)

    def test_restart_on_an_empty_archive_dir_is_clean(self, tmp_path):
        process, base = serve("--archive", str(tmp_path / "fresh.archive"))
        try:
            health = get_json(base + "/healthz")
            assert health["ok"] is True
            assert get_json(base + "/health")["jobs"] == 0
        finally:
            kill(process)
