"""The Prometheus exposition: rendering, aggregation, and the lint."""

import threading
import urllib.request

import pytest

from repro.service.jobs import JobManager
from repro.service.metrics import (
    METRICS_CONTENT_TYPE,
    lint_exposition,
    render_metrics,
)
from repro.service.server import build_server
from repro.workloads.paper_example import build_paper_database, paper_equijoins


@pytest.fixture
def manager():
    with JobManager(runners=1) as mgr:
        yield mgr


def run_one(manager):
    job = manager.submit(build_paper_database(), equijoins=paper_equijoins())
    manager.result(job.id, timeout=30)
    return job


def samples(text, name):
    """The exposition's samples for family *name* as {labels-line: value}."""
    out = {}
    for line in text.splitlines():
        if line.startswith(name + "{") or line.startswith(name + " "):
            left, _, value = line.rpartition(" ")
            out[left] = float(value)
    return out


class TestRendering:
    def test_empty_manager_renders_and_lints_clean(self, manager):
        text = render_metrics(manager)
        assert lint_exposition(text) == []
        jobs = samples(text, "repro_jobs_total")
        assert jobs['repro_jobs_total{state="done"}'] == 0
        assert jobs['repro_jobs_total{state="running"}'] == 0

    def test_finished_run_shows_in_every_family(self, manager):
        run_one(manager)
        text = render_metrics(manager, streams_active=2)
        assert lint_exposition(text) == []
        assert samples(text, "repro_jobs_total")[
            'repro_jobs_total{state="done"}'
        ] == 1
        phases = samples(text, "repro_phase_runs_total")
        assert phases['repro_phase_runs_total{phase="IND-Discovery"}'] == 1
        assert phases['repro_phase_runs_total{phase="Translate"}'] == 1
        latency = samples(text, "repro_phase_latency_ms_total")
        assert latency['repro_phase_latency_ms_total{phase="IND-Discovery"}'] > 0
        calls = samples(text, "repro_primitive_calls_total")
        assert calls['repro_primitive_calls_total{primitive="count_distinct"}'] > 0
        assert samples(text, "repro_sse_streams_active")[
            "repro_sse_streams_active"
        ] == 2

    def test_cache_hits_count_jobs_not_streams(self, manager):
        run_one(manager)
        twin = manager.submit(
            build_paper_database(), equijoins=paper_equijoins()
        )
        assert twin.cached
        text = render_metrics(manager)
        assert samples(text, "repro_jobs_cached_total")[
            "repro_jobs_cached_total"
        ] == 1
        # the cached job never ran: phase counters did not double
        assert samples(text, "repro_phase_runs_total")[
            'repro_phase_runs_total{phase="IND-Discovery"}'
        ] == 1


class TestAggregationSurvival:
    """Counters stay complete and monotonic past trimming and eviction."""

    def test_counters_survive_history_trimming(self, manager):
        job = run_one(manager)
        bus = job.live
        # shrink the retained history to almost nothing — the stats
        # (not the history) feed the exposition, so nothing is lost
        with bus._lock:
            while len(bus._history) > 1:
                bus._history.popleft()
                bus._trimmed += 1
        text = render_metrics(manager)
        assert lint_exposition(text) == []
        phases = samples(text, "repro_phase_runs_total")
        assert phases['repro_phase_runs_total{phase="IND-Discovery"}'] == 1
        assert phases['repro_phase_runs_total{phase="Translate"}'] == 1
        calls = samples(text, "repro_primitive_calls_total")
        assert calls['repro_primitive_calls_total{primitive="count_distinct"}'] > 0

    def test_counters_survive_ledger_eviction(self):
        from repro.workloads.paper_example import paper_program_corpus

        with JobManager(runners=1, keep_finished=1) as bounded:
            run_one(bounded)
            other = bounded.submit(
                build_paper_database(), corpus=paper_program_corpus()
            )
            bounded.result(other.id, timeout=30)  # evicts the first run
            assert len(bounded.jobs()) == 1
            text = render_metrics(bounded)
            assert lint_exposition(text) == []
            assert samples(text, "repro_jobs_evicted_total")[
                "repro_jobs_evicted_total"
            ] == 1
            # both runs' phases still count: the evicted job's totals
            # were folded forward, so the counter never moved backwards
            assert samples(text, "repro_phase_runs_total")[
                'repro_phase_runs_total{phase="IND-Discovery"}'
            ] == 2


class TestEndpoint:
    def test_metrics_route_serves_the_exposition(self, manager):
        server = build_server(manager, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            run_one(manager)
            host, port = server.server_address
            response = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            )
            assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
            assert lint_exposition(text) == []
            assert "repro_phase_runs_total" in text
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestLint:
    def test_accepts_a_well_formed_exposition(self):
        text = (
            "# HELP x_total A thing.\n"
            "# TYPE x_total counter\n"
            'x_total{a="b",c="d\\"e"} 4\n'
            "# HELP y A gauge.\n"
            "# TYPE y gauge\n"
            "y 1.5\n"
        )
        assert lint_exposition(text) == []

    def test_flags_missing_help_and_type(self):
        problems = lint_exposition("orphan_total 3\n")
        assert any("no TYPE" in p for p in problems)
        assert any("no HELP" in p for p in problems)

    def test_flags_bad_names_values_and_labels(self):
        text = (
            "# HELP ok A thing.\n"
            "# TYPE ok gauge\n"
            "ok notanumber\n"
            'ok{9bad="x"} 1\n'
        )
        problems = lint_exposition(text)
        assert any("bad sample value" in p for p in problems)
        assert any("bad label pair" in p for p in problems)

    def test_flags_unknown_type_and_duplicates(self):
        text = (
            "# TYPE z flavor\n"
            "# TYPE z gauge\n"
            "# HELP z A thing.\n"
            "# HELP z Again.\n"
        )
        problems = lint_exposition(text)
        assert any("unknown TYPE" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)
        assert any("duplicate HELP" in p for p in problems)

    def test_flags_missing_trailing_newline(self):
        assert any(
            "newline" in p
            for p in lint_exposition("# HELP a A.\n# TYPE a gauge\na 1")
        )
