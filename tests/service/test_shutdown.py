"""Graceful shutdown of ``repro serve``: signals, drain, exit 0."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.stream import sse_events

pytestmark = pytest.mark.slow


REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


@pytest.fixture
def served():
    """``repro serve`` as a real subprocess; yields (process, base URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--heartbeat", "0.2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "listening on" in line, line
    base = line.split()[4]
    yield process, base
    if process.poll() is None:
        process.kill()
        process.communicate(timeout=10)


def submit_demo(base):
    request = urllib.request.Request(
        base + "/jobs",
        data=json.dumps({"demo": True}).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestSignals:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_zero(self, served, signum):
        process, base = served
        submit_demo(base)
        process.send_signal(signum)
        out, err = process.communicate(timeout=20)
        assert process.returncode == 0, err
        assert "shutting down" in out

    def test_readyz_flips_before_exit(self, served):
        process, base = served
        assert urllib.request.urlopen(base + "/readyz", timeout=5).status == 200
        process.send_signal(signal.SIGTERM)
        process.communicate(timeout=20)
        assert process.returncode == 0

    def test_sse_watcher_is_drained_with_an_end_sentinel(self, served):
        process, base = served
        job = submit_demo(base)
        # wait until the job finished, then watch a *second* submission's
        # twin... simpler: watch the finished job but pretend to resume
        # past its end so the stream idles on heartbeats
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            record = json.loads(
                urllib.request.urlopen(
                    f"{base}/jobs/{job['id']}", timeout=5
                ).read()
            )
            if record["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        captured = []

        def watch():
            captured.extend(
                sse_events(
                    f"{base}/jobs/{job['id']}/events",
                    last_event_id=10_000,  # past the end: pure tail mode
                    timeout=30,
                )
            )

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        time.sleep(0.5)  # let the stream connect and idle
        process.send_signal(signal.SIGTERM)
        watcher.join(timeout=20)
        assert not watcher.is_alive()
        out, _err = process.communicate(timeout=20)
        assert process.returncode == 0
        assert captured, "the drained watcher never saw a record"
        assert captured[-1]["type"] == "end"
        assert captured[-1].get("reason") == "server shutting down"


@pytest.fixture
def served_evicting():
    """A server whose ledger keeps at most one finished job."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--heartbeat", "0.2", "--keep-finished", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "listening on" in line, line
    yield process, line.split()[4]
    if process.poll() is None:
        process.kill()
        process.communicate(timeout=10)


def submit_spec_json(base, spec):
    request = urllib.request.Request(
        base + "/jobs",
        data=json.dumps(spec).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def wait_state(base, job_id, seconds=30):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        record = json.loads(
            urllib.request.urlopen(f"{base}/jobs/{job_id}", timeout=5).read()
        )
        if record["state"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def wait_streams_active(base, seconds=30):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        exposition = urllib.request.urlopen(
            base + "/metrics", timeout=5
        ).read().decode("utf-8")
        for sample in exposition.splitlines():
            if sample.startswith("repro_sse_streams_active "):
                if int(sample.split()[1]) >= 1:
                    return
        time.sleep(0.05)
    raise AssertionError("the watcher never showed up in /metrics")


class TestEvictedWatchers:
    def test_watcher_on_an_evicted_job_still_gets_the_end_sentinel(
        self, served_evicting
    ):
        process, base = served_evicting
        # deterministic, no timing: with --keep-finished 1 the target
        # stays in the ledger until a *later* job finishes, so the
        # watcher attaches to a finished-but-retained job, and only
        # then is the eviction triggered underneath it
        job = submit_spec_json(base, {"demo": True})
        wait_state(base, job["id"])
        captured = []

        def watch():
            captured.extend(
                sse_events(
                    f"{base}/jobs/{job['id']}/events",
                    last_event_id=10_000,  # past the end: pure tail mode
                    timeout=30,
                )
            )

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        wait_streams_active(base)  # attached, idling on heartbeats
        # a distinct fresh job finishes -> the target is evicted
        evictor = submit_spec_json(
            base, {"demo": True, "config": {"nonce": "evictor"}}
        )
        wait_state(base, evictor["id"])
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                urllib.request.urlopen(f"{base}/jobs/{job['id']}", timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
                break  # evicted — and the watcher is still attached
            time.sleep(0.05)
        else:
            raise AssertionError("the job was never evicted")
        assert watcher.is_alive(), "the watcher died with the ledger entry"
        process.send_signal(signal.SIGTERM)
        watcher.join(timeout=20)
        assert not watcher.is_alive()
        _out, err = process.communicate(timeout=20)
        assert process.returncode == 0, err
        assert captured, "the evicted job's watcher was never drained"
        assert captured[-1]["type"] == "end"
        assert captured[-1].get("reason") == "server shutting down"
