"""Unit tests of the process pool: payload, scheduling, failure handling."""

import pytest

from repro.backends import create_backend
from repro.engine.probes import Probe
from repro.exceptions import WorkerPoolError
from repro.service.pool import ProcessProbeExecutor, worker_payload
from repro.workloads.paper_example import build_paper_database


@pytest.fixture(scope="module")
def payload():
    return worker_payload(build_paper_database())


def paper_probes():
    """A small mixed batch over the §5 extension."""
    return [
        Probe.distinct("Assignment", ("emp",)),
        Probe.distinct("Department", ("dep",)),
        Probe.join("Assignment", ("dep",), "Department", ("dep",)),
        Probe.inclusion("Assignment", ("dep",), "Department", ("dep",)),
        Probe.fd("Assignment", ("proj",), ("project-name",)),
    ]


def expected_values(probes):
    from repro.engine.executor import dispatch_probe

    db = build_paper_database()
    return [dispatch_probe(db.backend, p) for p in probes]


class TestWorkerPayload:
    def test_snapshot_is_rebuildable(self, payload):
        assert payload["backend"] == "memory"
        assert set(payload["rows"]) == {
            "Assignment", "Department", "HEmployee", "Person"
        }
        assert all(payload["rows"].values())
        # the whole payload must cross a process boundary
        import pickle

        pickle.dumps(payload)

    def test_backend_options_flow_through(self):
        db = build_paper_database()
        snapshot = worker_payload(db, options={"pool_pages": 4})
        assert snapshot["options"] == {"pool_pages": 4}

    def test_fault_spec_is_carried(self):
        snapshot = worker_payload(build_paper_database(), fault={"mode": "exit"})
        assert snapshot["fault"] == {"mode": "exit"}


class TestExecution:
    def test_answers_match_direct_dispatch(self, payload):
        probes = paper_probes()
        with ProcessProbeExecutor(payload, workers=2) as pool:
            [records] = pool.execute([probes])
        assert [r["value"] for r in records] == expected_values(probes)
        assert all(r["duration"] >= 0 for r in records)

    def test_batches_align_by_position(self, payload):
        probes = paper_probes()
        batches = [[p] for p in probes]
        with ProcessProbeExecutor(payload, workers=2) as pool:
            answered = pool.execute(batches)
        values = [records[0]["value"] for records in answered]
        assert values == expected_values(probes)

    def test_pool_survives_many_rounds(self, payload):
        probes = paper_probes()
        with ProcessProbeExecutor(payload, workers=2) as pool:
            for _ in range(3):
                [records] = pool.execute([probes])
                assert [r["value"] for r in records] == expected_values(probes)
            assert pool.stats.batches == 3
            # workers persist across execute() calls
            assert pool.stats.spawns <= 2

    def test_sqlite_workers_use_local_pushdown(self):
        db = build_paper_database(backend=create_backend("sqlite"))
        probes = paper_probes()
        with ProcessProbeExecutor(worker_payload(db), workers=2) as pool:
            [records] = pool.execute([probes])
        assert [r["value"] for r in records] == expected_values(probes)

    def test_paged_workers_rebuild_their_own_files(self):
        db = build_paper_database(
            backend=create_backend("paged", pool_pages=8, page_size=512)
        )
        payload = worker_payload(db, options={"pool_pages": 8, "page_size": 512})
        probes = paper_probes()
        with ProcessProbeExecutor(payload, workers=2) as pool:
            [records] = pool.execute([probes])
        assert [r["value"] for r in records] == expected_values(probes)
        # paged telemetry flows back through the counters channel
        assert any(r["counters"] for r in records)

    def test_closed_pool_refuses_work(self, payload):
        pool = ProcessProbeExecutor(payload, workers=1)
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.execute([paper_probes()])
        pool.close()  # idempotent


class TestFailureHandling:
    def test_crashed_worker_is_respawned(self, payload):
        crashing = dict(payload, fault={"mode": "exit", "spawns": 2})
        probes = paper_probes()
        with ProcessProbeExecutor(crashing, workers=2) as pool:
            [records] = pool.execute([probes])
            assert [r["value"] for r in records] == expected_values(probes)
            assert pool.stats.crashes >= 1
            assert pool.stats.retries >= 1
            assert pool.stats.spawns > 2

    def test_hung_worker_is_terminated(self, payload):
        hanging = dict(payload, fault={"mode": "hang", "seconds": 60, "spawns": 1})
        probes = paper_probes()
        with ProcessProbeExecutor(hanging, workers=1, batch_timeout=0.5) as pool:
            [records] = pool.execute([probes])
            assert [r["value"] for r in records] == expected_values(probes)
            assert pool.stats.timeouts >= 1

    def test_worker_error_is_retried_then_raises(self, payload):
        erroring = dict(payload, fault={"mode": "error", "spawns": 99})
        with ProcessProbeExecutor(erroring, workers=1, max_retries=1) as pool:
            with pytest.raises(WorkerPoolError):
                pool.execute([paper_probes()])
            assert pool.stats.worker_errors >= 2  # first try + retry

    def test_permanent_crash_exhausts_retries(self, payload):
        doomed = dict(payload, fault={"mode": "exit", "spawns": 99})
        with ProcessProbeExecutor(doomed, workers=1, max_retries=1) as pool:
            with pytest.raises(WorkerPoolError):
                pool.execute([paper_probes()])
            assert pool.stats.crashes >= 2

    def test_targeted_fault_spares_other_primitives(self, payload):
        targeted = dict(
            payload, fault={"mode": "exit", "primitive": "fd_holds", "spawns": 1}
        )
        only_counts = [
            Probe.distinct("Department", ("dep",)),
            Probe.distinct("Person", ("id",)),
        ]
        with ProcessProbeExecutor(targeted, workers=1) as pool:
            [records] = pool.execute([only_counts])
            assert pool.stats.crashes == 0
        assert [r["value"] for r in records] == expected_values(only_counts)
