"""Job-manager lifecycle edges: cancel, cache, invalidation, failure."""

import threading

import pytest

from repro.backends.memory import MemoryBackend
from repro.exceptions import RunCancelled, UnknownJobError
from repro.service.export import (
    JOBS_FORMAT,
    jobs_to_records,
    read_jobs_jsonl,
    write_jobs_jsonl,
)
from repro.service.jobs import (
    JobManager,
    database_fingerprint,
    workload_fingerprint,
)
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_program_corpus,
)


class GateBackend(MemoryBackend):
    """A memory backend whose first primitive call blocks on an event.

    ``entered`` fires when a run reaches the extension; the run then
    waits for ``release`` — the deterministic window the mid-run tests
    need for cancelling (or failing) a job *while it is running*.
    """

    def __init__(self, entered=None, release=None, poison=False):
        super().__init__()
        self.entered = entered if entered is not None else threading.Event()
        self.release = release if release is not None else threading.Event()
        self.poison = poison

    def spawn(self):
        # pipeline copies share the gate, so the copy still blocks
        return GateBackend(self.entered, self.release, self.poison)

    def count_distinct(self, relation, attrs):
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise AssertionError("gate never released")
        if self.poison:
            raise RuntimeError("poisoned extension")
        return super().count_distinct(relation, attrs)


def gated_database(poison=False):
    backend = GateBackend(poison=poison)
    return build_paper_database(backend=backend), backend


@pytest.fixture
def manager():
    with JobManager(runners=1) as mgr:
        yield mgr


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        job = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        result = manager.result(job.id, timeout=30)
        assert job.state == "done"
        assert job.finished
        assert not job.cached
        assert len(result.ric) > 0
        assert job.started_at and job.finished_at
        # inputs are released once the run is over
        assert job.database is None

    def test_status_reports_summary(self, manager):
        job = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        manager.result(job.id, timeout=30)
        record = manager.status(job.id)
        assert record["state"] == "done"
        assert record["summary"]["ric"] > 0
        assert record["database_fingerprint"] == job.key[0]

    def test_unknown_job_raises(self, manager):
        with pytest.raises(UnknownJobError):
            manager.status("job-999")
        with pytest.raises(UnknownJobError):
            manager.cancel("job-999")

    def test_submit_needs_exactly_one_workload(self, manager):
        with pytest.raises(ValueError):
            manager.submit(build_paper_database())
        with pytest.raises(ValueError):
            manager.submit(
                build_paper_database(),
                corpus=paper_program_corpus(),
                equijoins=paper_equijoins(),
            )

    def test_failed_job_carries_the_error(self, manager):
        db, backend = gated_database(poison=True)
        backend.release.set()  # never block, just poison
        job = manager.submit(db, equijoins=paper_equijoins())
        with pytest.raises(RuntimeError, match="poisoned extension"):
            manager.result(job.id, timeout=30)
        assert job.state == "failed"
        assert "poisoned extension" in job.error


class TestCancellation:
    def test_cancel_while_queued_never_runs(self, manager):
        # the single runner is pinned inside the gated job ...
        gated, backend = gated_database()
        running = manager.submit(gated, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=10)
        # ... so this one is still queued and cancellable
        queued = manager.submit(
            build_paper_database(), equijoins=paper_equijoins()
        )
        assert queued.state == "queued"
        assert manager.cancel(queued.id) is True
        assert queued.state == "cancelled"
        assert queued.started_at is None
        backend.release.set()
        assert manager.result(running.id, timeout=30) is not None
        with pytest.raises(RunCancelled):
            manager.result(queued.id, timeout=5)

    def test_cancel_mid_run_unwinds_at_phase_boundary(self, manager):
        db, backend = gated_database()
        job = manager.submit(db, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=10)
        assert job.state == "running"
        assert manager.cancel(job.id) is True
        backend.release.set()
        with pytest.raises(RunCancelled):
            manager.result(job.id, timeout=30)
        assert job.state == "cancelled"
        assert job.result is None

    def test_cancel_finished_job_is_a_noop(self, manager):
        job = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        manager.result(job.id, timeout=30)
        assert manager.cancel(job.id) is False
        assert job.state == "done"

    def test_shutdown_cancels_the_queue(self):
        mgr = JobManager(runners=1)
        gated, backend = gated_database()
        running = mgr.submit(gated, equijoins=paper_equijoins())
        assert backend.entered.wait(timeout=10)
        queued = mgr.submit(build_paper_database(), equijoins=paper_equijoins())
        threading.Timer(0.2, backend.release.set).start()
        mgr.shutdown()
        assert queued.state == "cancelled"
        assert running.finished
        with pytest.raises(RuntimeError):
            mgr.submit(build_paper_database(), equijoins=paper_equijoins())


class TestResultsCache:
    def test_duplicate_submission_hits_the_cache(self, manager):
        first = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        result = manager.result(first.id, timeout=30)
        second = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        assert second.cached
        assert second.state == "done"
        assert manager.result(second.id) is result
        assert second.key == first.key

    def test_database_fingerprint_invalidates(self, manager):
        first = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        manager.result(first.id, timeout=30)
        # one extra row changes the extension, so the content hash
        # differs and the cache must not serve the stale result
        touched = build_paper_database()
        row = list(next(iter(touched.backend.rows("Person"))))
        row[0] = 999_999
        touched.insert("Person", row)
        second = manager.submit(touched, equijoins=paper_equijoins())
        assert second.key[0] != first.key[0]
        assert not second.cached
        manager.result(second.id, timeout=30)
        assert second.state == "done"

    def test_config_change_misses_the_cache(self, manager):
        first = manager.submit(
            build_paper_database(), equijoins=paper_equijoins(),
            config={"engine": "serial"},
        )
        manager.result(first.id, timeout=30)
        second = manager.submit(
            build_paper_database(), equijoins=paper_equijoins(),
            config={"engine": "batched"},
        )
        assert not second.cached
        manager.result(second.id, timeout=30)
        # and the batched twin now caches independently
        third = manager.submit(
            build_paper_database(), equijoins=paper_equijoins(),
            config={"engine": "batched"},
        )
        assert third.cached

    def test_workload_fingerprint_separates_queries(self, manager):
        everything = paper_equijoins()
        first = manager.submit(build_paper_database(), equijoins=everything)
        manager.result(first.id, timeout=30)
        second = manager.submit(
            build_paper_database(), equijoins=everything[:-1]
        )
        assert second.key[1] != first.key[1]
        assert not second.cached
        manager.result(second.id, timeout=30)

    def test_queued_duplicate_is_served_at_dequeue(self, manager):
        # pin the single runner so two identical jobs queue up together
        gated, backend = gated_database()
        pin = manager.submit(
            gated, equijoins=paper_equijoins(), config={"gate": 1}
        )
        assert backend.entered.wait(timeout=10)
        first = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        second = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        assert not second.cached  # nothing done at submit time
        backend.release.set()
        manager.result(pin.id, timeout=30)
        result = manager.result(first.id, timeout=30)
        # the twin never runs: the runner serves it from the cache
        assert manager.result(second.id, timeout=30) is result
        assert second.cached
        assert second.started_at is None

    def test_cached_jobs_are_ledger_entries(self, manager):
        first = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        manager.result(first.id, timeout=30)
        second = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        records = jobs_to_records(manager)
        assert records[0]["jobs"] == 2
        assert records[0]["cached"] == 1
        assert records[2]["id"] == second.id
        assert records[2]["cached"] is True


class TestFingerprints:
    def test_database_fingerprint_is_content_addressed(self):
        assert database_fingerprint(build_paper_database()) == \
            database_fingerprint(build_paper_database())

    def test_workload_fingerprint_is_order_insensitive(self):
        joins = paper_equijoins()
        assert workload_fingerprint(equijoins=joins) == \
            workload_fingerprint(equijoins=list(reversed(joins)))

    def test_corpus_fingerprint_sees_source_changes(self):
        a = paper_program_corpus()
        b = paper_program_corpus()
        assert workload_fingerprint(corpus=a) == workload_fingerprint(corpus=b)
        b.add_source("extra.sql", "SELECT 1;")
        assert workload_fingerprint(corpus=a) != workload_fingerprint(corpus=b)


class TestExport:
    def test_round_trip(self, manager, tmp_path):
        job = manager.submit(build_paper_database(), equijoins=paper_equijoins())
        manager.result(job.id, timeout=30)
        manager.submit(build_paper_database(), equijoins=paper_equijoins())
        path = str(tmp_path / "jobs.jsonl")
        written = write_jobs_jsonl(manager, path)
        back = read_jobs_jsonl(path)
        assert back == written
        assert back[0]["format"] == JOBS_FORMAT

    def test_header_counts_are_validated(self, tmp_path):
        path = str(tmp_path / "broken.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                '{"type": "header", "format": "%s", "jobs": 2, '
                '"states": {}, "cached": 0}\n' % JOBS_FORMAT
            )
        with pytest.raises(ValueError, match="claims 2"):
            read_jobs_jsonl(path)

    def test_wrong_format_tag_is_rejected(self, tmp_path):
        path = str(tmp_path / "other.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "header", "format": "repro/trace@1"}\n')
        with pytest.raises(ValueError, match="not a repro/jobs@1"):
            read_jobs_jsonl(path)


class TestLedgerEviction:
    """keep_finished bounds the ledger; evicted totals fold forward."""

    def test_oldest_finished_jobs_are_retired(self):
        with JobManager(runners=1, keep_finished=2) as manager:
            first = manager.submit(
                build_paper_database(), equijoins=paper_equijoins()
            )
            manager.result(first.id, timeout=30)
            twin = manager.submit(
                build_paper_database(), equijoins=paper_equijoins()
            )
            assert twin.cached
            third = manager.submit(
                build_paper_database(), corpus=paper_program_corpus()
            )
            manager.result(third.id, timeout=30)
            ids = [job.id for job in manager.jobs()]
            assert len(ids) == 2
            assert first.id not in ids
            with pytest.raises(UnknownJobError):
                manager.status(first.id)
            evicted = manager.evicted()
            assert evicted["jobs"] == 1
            # the retired run's telemetry totals were folded forward
            assert evicted["stats"].phase_runs.get("IND-Discovery") == 1

    def test_evicting_a_cache_source_purges_its_cache_entry(self):
        with JobManager(runners=1, keep_finished=1) as manager:
            first = manager.submit(
                build_paper_database(), equijoins=paper_equijoins()
            )
            manager.result(first.id, timeout=30)
            other = manager.submit(
                build_paper_database(), corpus=paper_program_corpus()
            )
            manager.result(other.id, timeout=30)  # evicts first
            assert first.id not in [job.id for job in manager.jobs()]
            # the cache entry pointing at the evicted job is gone: the
            # same key re-runs instead of dangling
            again = manager.submit(
                build_paper_database(), equijoins=paper_equijoins()
            )
            result = manager.result(again.id, timeout=30)
            assert not again.cached
            assert result is not None

    def test_unbounded_manager_never_evicts(self, manager):
        job = manager.submit(
            build_paper_database(), equijoins=paper_equijoins()
        )
        manager.result(job.id, timeout=30)
        assert manager.evicted()["jobs"] == 0
        assert [j.id for j in manager.jobs()] == [job.id]
