"""The HTTP JSON API over the job manager (``repro serve``)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.export import JOBS_FORMAT
from repro.service.jobs import JobManager
from repro.service.server import build_server


@pytest.fixture
def api():
    manager = JobManager(runners=1)
    server = build_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    base = f"http://{host}:{port}"

    def call(method, path, body=None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(base + path, method=method, data=data)
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    yield call
    server.shutdown()
    server.server_close()
    manager.shutdown()
    thread.join(timeout=5)


def wait_done(call, job_id, tries=300):
    import time

    for _ in range(tries):
        status, record = call("GET", f"/jobs/{job_id}")
        assert status == 200
        if record["state"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"{job_id} never finished")


class TestRoutes:
    def test_health(self, api):
        status, body = api("GET", "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["jobs"] == 0

    def test_submit_poll_result(self, api):
        status, record = api(
            "POST", "/jobs", {"demo": True, "config": {"engine": "batched"}}
        )
        assert status == 201
        assert record["state"] in ("queued", "running", "done")
        final = wait_done(api, record["id"])
        assert final["state"] == "done"
        assert final["summary"]["ric"] > 0
        status, eer = api("GET", f"/jobs/{record['id']}/eer")
        assert status == 200
        assert "Person" in eer["eer"]

    def test_ledger_listing_matches_the_export_shape(self, api):
        _, record = api("POST", "/jobs", {"demo": True})
        wait_done(api, record["id"])
        status, records = api("GET", "/jobs")
        assert status == 200
        assert records[0]["format"] == JOBS_FORMAT
        assert records[0]["jobs"] == 1
        assert records[1]["id"] == record["id"]

    def test_cache_hit_over_http(self, api):
        _, first = api("POST", "/jobs", {"demo": True})
        wait_done(api, first["id"])
        status, second = api("POST", "/jobs", {"demo": True})
        assert status == 201
        assert second["cached"] is True
        assert second["state"] == "done"

    def test_cancel_finished_job_reports_false(self, api):
        _, record = api("POST", "/jobs", {"demo": True})
        wait_done(api, record["id"])
        status, body = api("DELETE", f"/jobs/{record['id']}")
        assert status == 200
        assert body["cancelled"] is False

    def test_eer_of_unfinished_job_is_a_conflict(self, api):
        # the demo is fast; use a spec that stays queued by submitting
        # to a manager whose single runner is busy with the first job
        _, first = api("POST", "/jobs", {"demo": True})
        _, second = api("POST", "/jobs", {"demo": True, "label": "second"})
        status, body = api("GET", f"/jobs/{second['id']}/eer")
        if second["state"] in ("queued", "running"):
            assert status == 409
            assert "still" in body["error"]
        wait_done(api, second["id"])


class TestErrors:
    def test_unknown_route_404(self, api):
        assert api("GET", "/nope")[0] == 404
        assert api("POST", "/jobs/job-1")[0] == 404
        assert api("DELETE", "/jobs")[0] == 404

    def test_unknown_job_404(self, api):
        status, body = api("GET", "/jobs/job-42")
        assert status == 404
        assert "job-42" in body["error"]
        assert api("DELETE", "/jobs/job-42")[0] == 404

    def test_bad_spec_400(self, api):
        status, body = api("POST", "/jobs", {"nonsense": 1})
        assert status == 400
        assert "nonsense" in body["error"]
        status, body = api("POST", "/jobs", {})
        assert status == 400

    def test_empty_body_400(self, api):
        status, _ = api("POST", "/jobs", None)  # empty body -> {} -> invalid spec
        assert status == 400

    def test_missing_database_file_400(self, api):
        status, body = api(
            "POST", "/jobs", {"database": "/nope/missing.json", "programs": "/nope"}
        )
        assert status == 400
