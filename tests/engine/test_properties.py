"""Property-based tests of the planner and executor (Hypothesis).

The planner invariants hold for *any* probe list: nothing is dropped,
nothing is invented, grouping is a partition, and answers line up with
submissions positionally.  The executor invariants are checked against
a small concrete database: whatever the strategy or worker count, every
answer equals the direct primitive call.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor, Probe, plan_probes
from repro.engine.executor import _dispatch
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.domain import INTEGER, NULL


# ----------------------------------------------------------------------
# probe strategies over a fixed tiny universe
# ----------------------------------------------------------------------
RELATIONS = ("r", "s")
ATTRS = ("a", "b", "c")

single_attr = st.sampled_from(ATTRS)
attr_pair = st.tuples(single_attr, single_attr)
relation = st.sampled_from(RELATIONS)


@st.composite
def probes(draw):
    primitive = draw(st.sampled_from(
        ("count_distinct", "join_count", "fd_holds", "inclusion_holds")
    ))
    if primitive == "count_distinct":
        return Probe.distinct(draw(relation), (draw(single_attr),))
    if primitive == "fd_holds":
        return Probe.fd(draw(relation), (draw(single_attr),),
                        (draw(single_attr),))
    left, right = draw(relation), draw(relation)
    if primitive == "join_count":
        return Probe.join(left, (draw(single_attr),),
                          right, (draw(single_attr),))
    return Probe.inclusion(left, (draw(single_attr),),
                           right, (draw(single_attr),))


probe_lists = st.lists(probes(), max_size=30)


def build_db(r_rows, s_rows) -> Database:
    schema = DatabaseSchema([
        RelationSchema.build("r", list(ATTRS),
                             types={a: INTEGER for a in ATTRS}),
        RelationSchema.build("s", list(ATTRS),
                             types={a: INTEGER for a in ATTRS}),
    ])
    db = Database(schema)
    db.insert_many("r", [[NULL if v is None else v for v in row]
                         for row in r_rows])
    db.insert_many("s", [[NULL if v is None else v for v in row]
                         for row in s_rows])
    return db


values = st.one_of(st.integers(0, 4), st.none())
rows = st.lists(st.tuples(values, values, values), max_size=12)


# ----------------------------------------------------------------------
# planner invariants
# ----------------------------------------------------------------------
class TestPlannerProperties:
    @given(probe_lists)
    def test_requests_preserved_verbatim(self, batch):
        plan = plan_probes(batch)
        assert list(plan.requests) == batch

    @given(probe_lists)
    def test_dedupe_never_drops_or_invents(self, batch):
        plan = plan_probes(batch)
        assert {p.key for p in plan.unique} == {p.key for p in batch}
        assert len({p.key for p in plan.unique}) == len(plan.unique)

    @given(probe_lists)
    def test_unique_order_is_first_occurrence(self, batch):
        plan = plan_probes(batch)
        seen = []
        for probe in batch:
            if probe.key not in seen:
                seen.append(probe.key)
        assert [p.key for p in plan.unique] == seen

    @given(probe_lists)
    def test_groups_partition_unique(self, batch):
        plan = plan_probes(batch)
        grouped = [p for g in plan.groups for p in g.probes]
        assert sorted(p.key for p in grouped) == sorted(
            p.key for p in plan.unique
        )
        for group in plan.groups:
            assert group.probes
            for probe in group.probes:
                assert probe.footprint == group.footprint


# ----------------------------------------------------------------------
# executor invariants
# ----------------------------------------------------------------------
class TestExecutorProperties:
    @settings(deadline=None, max_examples=50)
    @given(rows, rows, probe_lists)
    def test_answers_match_direct_dispatch(self, r_rows, s_rows, batch):
        db = build_db(r_rows, s_rows)
        answers = BatchExecutor(db, max_workers=1).run(batch)
        expected = [_dispatch(db.backend, p) for p in batch]
        assert answers == expected

    @settings(deadline=None, max_examples=25)
    @given(rows, rows, probe_lists)
    def test_deterministic_across_worker_counts(self, r_rows, s_rows, batch):
        outcomes = []
        for workers in (1, 2, 4):
            db = build_db(r_rows, s_rows)
            engine = BatchExecutor(db, max_workers=workers, min_parallel=2)
            answers = engine.run(batch)
            events = [
                (e.primitive, e.relations, e.attributes)
                for e in db.tracer.events
            ]
            outcomes.append((answers, events))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @settings(deadline=None, max_examples=25)
    @given(rows, rows, probe_lists)
    def test_one_event_per_logical_probe(self, r_rows, s_rows, batch):
        db = build_db(r_rows, s_rows)
        BatchExecutor(db).run(batch)
        assert [
            (e.primitive, e.relations, e.attributes)
            for e in db.tracer.events
        ] == [(p.primitive, p.relations, p.attributes) for p in batch]
        assert db.counter.total() == len(batch)
