"""The differential harness: batched output must equal serial output.

Every scenario runs the full pipeline twice — ``engine="serial"`` and
``engine="batched"`` — on both backends, and the two runs must agree on
*everything* observable: the elicited dependency sets, every phase's
audit records, the restructured schema, the rendered EER schema, the
exact expert-interaction log (same questions, same order, same answers)
and the extension-query accounting.  Any divergence means the batched
planner changed the method's semantics, not just its execution.
"""

import pytest

from repro.backends import MemoryBackend, SQLiteBackend, backend_names, create_backend
from repro.core.expert import ScriptedExpert
from repro.core.pipeline import DBREPipeline
from repro.eer.render import render_text
from repro.workloads.oracle import OracleExpert
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

# registry-driven: adding a backend registers it into this harness too.
# The paged backend runs with a pool far smaller than the extensions so
# the differential guarantee covers the evicting, write-back path.
_BACKEND_OPTIONS = {"paged": {"pool_pages": 8, "page_size": 512}}


def _factory(name):
    options = _BACKEND_OPTIONS.get(name, {})

    def build():
        return create_backend(name, **options)

    build.kind = name
    return build


BACKENDS = {name: _factory(name) for name in backend_names()}


def observable(pipeline, result):
    """Everything a run exposes, as one comparable structure."""
    return {
        "inds": [repr(i) for i in result.inds],
        "ind_outcomes": [repr(o) for o in result.ind_result.outcomes],
        "s_names": result.ind_result.s_names,
        "lhs": [repr(r) for r in result.lhs_result.lhs],
        "lhs_hidden": [repr(r) for r in result.lhs_result.hidden],
        "fds": [repr(f) for f in result.fds],
        "rhs_outcomes": [repr(o) for o in result.rhs_result.outcomes],
        "hidden": [repr(r) for r in result.hidden],
        "ric": [repr(i) for i in result.ric],
        "schema": [repr(r) for r in result.restructured.schema],
        "eer": render_text(result.eer),
        "notes": result.translation_notes,
        "warnings": result.translation_warnings,
        "expert_log": [
            (i.kind, i.question, repr(i.value)) for i in pipeline.expert.log
        ],
        "decisions": result.expert_decisions,
        "queries": result.extension_queries,
    }


def run_paper(engine, backend_factory):
    db = build_paper_database(backend=backend_factory())
    pipeline = DBREPipeline(
        db, ScriptedExpert(paper_expert_script()), engine=engine
    )
    result = pipeline.run(equijoins=paper_equijoins())
    return observable(pipeline, result), result


def run_synthetic(engine, backend_factory, config):
    scenario = build_scenario(config)
    db = scenario.database
    kind = getattr(backend_factory, "kind", None)
    if getattr(db.backend, "kind", None) != kind:
        db = db.copy(backend=backend_factory())
    pipeline = DBREPipeline(
        db, OracleExpert(scenario.truth), engine=engine
    )
    result = pipeline.run(corpus=scenario.corpus)
    return observable(pipeline, result), result


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
class TestPaperExample:
    def test_batched_equals_serial(self, backend):
        serial, _ = run_paper("serial", BACKENDS[backend])
        batched, result = run_paper("batched", BACKENDS[backend])
        assert batched == serial
        assert result.engine == "batched"
        stats = result.engine_stats
        assert stats is not None
        assert stats.logical_probes == serial["queries"]
        assert stats.unique_probes < stats.logical_probes

    def test_serial_runs_carry_no_engine_stats(self, backend):
        _, result = run_paper("serial", BACKENDS[backend])
        assert result.engine == "serial"
        assert result.engine_stats is None


SCENARIOS = {
    "clean-default": ScenarioConfig(),
    "corrupted-inds": ScenarioConfig(
        seed=21, corruption_ind_rate=0.5, corruption_row_rate=0.2
    ),
    "hidden-objects": ScenarioConfig(seed=11, merges=3),
    "link-merges": ScenarioConfig(seed=5, n_many_to_many=2, link_merges=1),
    "subtypes-weak": ScenarioConfig(seed=13, subtypes=1, weak_entities=1),
    "partial-coverage": ScenarioConfig(seed=17, coverage=0.6),
}

#: small scenarios keep the default CI lane fast; the rest are the
#: nightly/full lane (-m "" or -m slow)
FAST_SCENARIOS = ("clean-default", "corrupted-inds")


def scenario_params():
    for name in sorted(SCENARIOS):
        marks = [] if name in FAST_SCENARIOS else [pytest.mark.slow]
        yield pytest.param(name, id=name, marks=marks)


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
@pytest.mark.parametrize("scenario_name", list(scenario_params()))
class TestSyntheticScenarios:
    def test_batched_equals_serial(self, scenario_name, backend):
        config = SCENARIOS[scenario_name]
        serial, _ = run_synthetic("serial", BACKENDS[backend], config)
        batched, result = run_synthetic("batched", BACKENDS[backend], config)
        assert batched == serial
        stats = result.engine_stats
        assert stats.logical_probes == serial["queries"]
        assert stats.backend_calls <= stats.unique_probes


def comparable_provenance(result):
    """Provenance records, span ids masked.

    The batched engine wraps its probes in extra engine spans, so node
    span ids legitimately differ between modes; everything else — node
    ids, labels, attributes, evidence event ids, edges — must match.
    """
    from repro.obs.provenance import provenance_records

    rows = []
    for row in provenance_records(result.provenance):
        if row.get("type") == "node":
            row = dict(row, span=None)
        rows.append(row)
    return rows


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
class TestProvenanceInvariance:
    """The lineage DAG is a function of the method, not of the executor."""

    def test_paper_lineage_identical_across_engines(self, backend):
        _, serial = run_paper("serial", BACKENDS[backend])
        _, batched = run_paper("batched", BACKENDS[backend])
        assert comparable_provenance(batched) == comparable_provenance(serial)

    def test_scenario_lineage_identical_across_engines(self, backend):
        config = SCENARIOS["clean-default"]
        _, serial = run_synthetic("serial", BACKENDS[backend], config)
        _, batched = run_synthetic("batched", BACKENDS[backend], config)
        assert comparable_provenance(batched) == comparable_provenance(serial)


class TestProvenanceBackendInvariance:
    def test_paper_lineage_identical_across_backends(self):
        _, memory = run_paper("serial", MemoryBackend)
        _, sqlite = run_paper("serial", SQLiteBackend)
        assert comparable_provenance(sqlite) == comparable_provenance(memory)

    def test_evidence_event_ids_do_not_depend_on_the_engine(self):
        def evidence(result):
            return {
                node.node_id: [e["id"] for e in node.events]
                for node in result.provenance.nodes.values()
                if node.events
            }

        _, serial = run_paper("serial", MemoryBackend)
        _, batched = run_paper("batched", MemoryBackend)
        assert evidence(serial) == evidence(batched)
        assert any(evidence(serial).values())


class TestWorkerCountInvariance:
    """The parallel strategy must not leak scheduling into results."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_paper_example_stable_across_worker_counts(self, workers):
        db = build_paper_database()
        pipeline = DBREPipeline(
            db, ScriptedExpert(paper_expert_script()),
            engine="batched", engine_workers=workers,
        )
        result = pipeline.run(equijoins=paper_equijoins())
        baseline, _ = run_paper("serial", MemoryBackend)
        assert observable(pipeline, result) == baseline
