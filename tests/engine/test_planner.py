"""Unit tests of the probe model and the pure planner."""

import pytest

from repro.engine import PROBE_PRIMITIVES, Probe, plan_probes
from repro.exceptions import ArityError


class TestProbe:
    def test_constructors_cover_the_four_primitives(self):
        probes = [
            Probe.distinct("R", ("a",)),
            Probe.join("R", ("a",), "S", ("b",)),
            Probe.fd("R", ("a",), ("b",)),
            Probe.inclusion("R", ("a",), "S", ("b",)),
        ]
        assert tuple(p.primitive for p in probes) == PROBE_PRIMITIVES

    def test_normalization_makes_probes_hashable_keys(self):
        a = Probe.distinct("R", ["x", "y"])
        b = Probe.distinct("R", ("x", "y"))
        assert a == b
        assert a.key == b.key
        assert hash(a) == hash(b)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            Probe("median", ("R",), (("a",),))

    def test_relation_count_enforced(self):
        with pytest.raises(ValueError):
            Probe("count_distinct", ("R", "S"), (("a",),))
        with pytest.raises(ValueError):
            Probe("join_count", ("R",), (("a",), ("b",)))

    def test_attribute_group_count_enforced(self):
        with pytest.raises(ValueError):
            Probe("count_distinct", ("R",), (("a",), ("b",)))
        with pytest.raises(ValueError):
            Probe("fd_holds", ("R",), (("a",),))

    def test_join_arity_mismatch(self):
        with pytest.raises(ArityError):
            Probe.join("R", ("a", "b"), "S", ("c",))
        with pytest.raises(ArityError):
            Probe.inclusion("R", ("a",), "S", ("c", "d"))

    def test_footprint_is_sorted_relation_set(self):
        assert Probe.join("S", ("a",), "R", ("b",)).footprint == ("R", "S")
        assert Probe.fd("R", ("a",), ("b",)).footprint == ("R",)


class TestPlanProbes:
    def test_empty(self):
        plan = plan_probes([])
        assert plan.requests == () and plan.unique == () and plan.groups == ()

    def test_dedupe_keeps_first_occurrence_order(self):
        p1 = Probe.distinct("R", ("a",))
        p2 = Probe.distinct("S", ("b",))
        plan = plan_probes([p1, p2, p1, p2, p1])
        assert plan.requests == (p1, p2, p1, p2, p1)
        assert plan.unique == (p1, p2)
        assert plan.duplicates == 3

    def test_groups_partition_unique_by_footprint(self):
        p1 = Probe.distinct("R", ("a",))
        p2 = Probe.fd("R", ("a",), ("b",))
        p3 = Probe.distinct("S", ("b",))
        p4 = Probe.join("R", ("a",), "S", ("b",))
        plan = plan_probes([p1, p2, p3, p4])
        assert [g.footprint for g in plan.groups] == [
            ("R",), ("S",), ("R", "S"),
        ]
        grouped = [p for g in plan.groups for p in g.probes]
        assert sorted(p.key for p in grouped) == sorted(
            p.key for p in plan.unique
        )
        assert plan.groups[0].probes == (p1, p2)

    def test_planner_is_pure(self):
        probes = [Probe.distinct("R", ("a",)), Probe.distinct("R", ("a",))]
        before = [p.key for p in probes]
        plan_probes(probes)
        assert [p.key for p in probes] == before
