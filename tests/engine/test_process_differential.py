"""The process-strategy differential harness: bit-identical or broken.

Extends the serial-vs-batched guarantee of ``test_differential`` to the
process-parallel executor: the full pipeline under ``engine="process"``
must produce *exactly* the observable output of a serial run — elicited
dependency sets, audit records, restructured schema, rendered EER,
expert log, and the extension-query accounting — on every registered
backend, at every worker count, and **through every failure mode** the
pool is built to survive (worker crashes, hung batches, worker-side
errors, and full pool exhaustion falling back to serial).

The CI ``tests-parallel`` job runs this file at 2 and 4 workers
(``REPRO_TEST_WORKERS``) plus a crash-injection lane
(``REPRO_TEST_CHAOS=1``).
"""

import os

import pytest

from tests.engine.test_differential import (
    BACKENDS,
    FAST_SCENARIOS,
    SCENARIOS,
    observable,
    run_paper,
)
from repro.core.expert import ScriptedExpert
from repro.core.pipeline import DBREPipeline
from repro.workloads.oracle import OracleExpert
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)
from repro.workloads.scenario import build_scenario

#: the CI matrix overrides the default worker count per lane
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

#: chaos lane: every run also injects a first-spawn worker crash
CHAOS = bool(int(os.environ.get("REPRO_TEST_CHAOS", "0")))

#: a first-spawn crash on the first join_count probe; the respawned
#: worker recovers, so results must still be bit-identical
CRASH_FAULT = {"mode": "exit", "primitive": "join_count", "spawns": 1}


def process_options(fault=None):
    options = {}
    if CHAOS:
        options["fault"] = dict(CRASH_FAULT)
    if fault is not None:
        options["fault"] = dict(fault)
    return options


def run_paper_process(backend_factory, workers=WORKERS, fault=None, **opts):
    db = build_paper_database(backend=backend_factory())
    pipeline = DBREPipeline(
        db, ScriptedExpert(paper_expert_script()),
        engine="process", engine_workers=workers,
        engine_options=dict(process_options(fault), **opts),
    )
    result = pipeline.run(equijoins=paper_equijoins())
    return observable(pipeline, result), result


def run_synthetic_process(backend_factory, config, workers=WORKERS):
    scenario = build_scenario(config)
    db = scenario.database
    kind = getattr(backend_factory, "kind", None)
    if getattr(db.backend, "kind", None) != kind:
        db = db.copy(backend=backend_factory())
    pipeline = DBREPipeline(
        db, OracleExpert(scenario.truth),
        engine="process", engine_workers=workers,
        engine_options=process_options(),
    )
    result = pipeline.run(corpus=scenario.corpus)
    return observable(pipeline, result), result


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
class TestPaperExampleProcess:
    """Paper example: process == serial on all three backends."""

    def test_process_equals_serial(self, backend):
        serial, _ = run_paper("serial", BACKENDS[backend])
        process, result = run_paper_process(BACKENDS[backend])
        assert process == serial
        assert result.engine == "process"
        stats = result.engine_stats
        assert stats is not None
        assert stats.logical_probes == serial["queries"]
        # every unique probe was answered out of process (or the pool
        # fell back, which only the chaos lane may legitimately hit)
        if not CHAOS:
            assert stats.pool_fallbacks == 0
            assert stats.process_chunks > 0

    def test_process_equals_batched(self, backend):
        batched, _ = run_paper("batched", BACKENDS[backend])
        process, _ = run_paper_process(BACKENDS[backend])
        assert process == batched


def scenario_params():
    for name in sorted(SCENARIOS):
        marks = [] if name in FAST_SCENARIOS else [pytest.mark.slow]
        yield pytest.param(name, id=name, marks=marks)


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
@pytest.mark.parametrize("scenario_name", list(scenario_params()))
class TestSyntheticScenariosProcess:
    def test_process_equals_serial(self, scenario_name, backend):
        from tests.engine.test_differential import run_synthetic

        config = SCENARIOS[scenario_name]
        serial, _ = run_synthetic("serial", BACKENDS[backend], config)
        process, result = run_synthetic_process(BACKENDS[backend], config)
        assert process == serial
        assert result.engine_stats.logical_probes == serial["queries"]


class TestProcessWorkerCountInvariance:
    """Scheduling must never leak into results."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_paper_example_stable_across_worker_counts(self, workers):
        baseline, _ = run_paper("serial", BACKENDS["memory"])
        process, result = run_paper_process(BACKENDS["memory"], workers=workers)
        assert process == baseline
        assert result.trace is not None


class TestFailureModes:
    """Crash, hang, error and exhaustion — all bit-identical to serial."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_paper("serial", BACKENDS["memory"])[0]

    def test_worker_crash_recovers(self, serial):
        process, result = run_paper_process(
            BACKENDS["memory"], fault=CRASH_FAULT
        )
        assert process == serial
        assert result.engine_stats.pool_fallbacks == 0

    def test_hung_batch_times_out_and_recovers(self, serial):
        process, _ = run_paper_process(
            BACKENDS["memory"],
            fault={"mode": "hang", "seconds": 60, "spawns": 1},
            batch_timeout=0.5,
        )
        assert process == serial

    def test_worker_error_falls_back_to_serial(self, serial):
        # an error fault persists on the (live) worker, so retries
        # exhaust and the executor re-answers the batch serially
        process, result = run_paper_process(
            BACKENDS["memory"], fault={"mode": "error", "spawns": 1}
        )
        assert process == serial
        assert result.engine_stats.pool_fallbacks > 0

    def test_total_pool_failure_falls_back_to_serial(self, serial):
        process, result = run_paper_process(
            BACKENDS["memory"],
            fault={"mode": "exit", "spawns": 99},
            max_retries=1,
        )
        assert process == serial
        assert result.engine_stats.pool_fallbacks > 0
        assert result.engine_stats.process_chunks == 0
