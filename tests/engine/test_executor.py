"""Unit tests of the batch executor: strategies, events, accounting."""

import pytest

from repro.backends import MemoryBackend, SQLiteBackend
from repro.engine import BatchExecutor, Probe
from repro.workloads.paper_example import build_paper_database


def paper_probes():
    """A representative mixed batch over the §5 database."""
    return [
        Probe.distinct("Person", ("id",)),
        Probe.distinct("HEmployee", ("no",)),
        Probe.join("HEmployee", ("no",), "Person", ("id",)),
        Probe.fd("Department", ("emp",), ("skill",)),
        Probe.inclusion("Department", ("emp",), "HEmployee", ("no",)),
        Probe.distinct("Person", ("id",)),          # duplicate
        Probe.fd("HEmployee", ("no",), ("salary",)),
    ]


def serial_answers(probes):
    """The ground truth: each probe on a fresh database, one call each."""
    db = build_paper_database()
    out = []
    for p in probes:
        if p.primitive == "count_distinct":
            out.append(db.count_distinct(p.relations[0], p.attributes[0]))
        elif p.primitive == "join_count":
            out.append(db.join_count(p.relations[0], p.attributes[0],
                                     p.relations[1], p.attributes[1]))
        elif p.primitive == "fd_holds":
            out.append(db.fd_holds(p.relations[0], p.attributes[0],
                                   p.attributes[1]))
        else:
            out.append(db.inclusion_holds(p.relations[0], p.attributes[0],
                                          p.relations[1], p.attributes[1]))
    return out


class TestStrategies:
    def test_serial_fallback_on_memory(self):
        db = build_paper_database()
        engine = BatchExecutor(db, max_workers=1)
        probes = paper_probes()
        assert engine.run(probes) == serial_answers(probes)
        assert engine.stats.batched_calls == 0
        assert engine.stats.parallel_groups == 0
        assert engine.stats.backend_calls == 6      # 7 logical, 6 unique

    def test_pushdown_on_sqlite(self):
        db = build_paper_database(backend=SQLiteBackend())
        engine = BatchExecutor(db)
        probes = paper_probes()
        assert engine.run(probes) == serial_answers(probes)
        assert engine.stats.batched_calls == 1      # 6 unique < chunk of 32
        assert engine.stats.backend_calls == 1

    def test_parallel_on_memory(self):
        db = build_paper_database()
        engine = BatchExecutor(db, max_workers=4, min_parallel=2)
        probes = paper_probes()
        assert engine.run(probes) == serial_answers(probes)
        assert engine.stats.parallel_groups > 1
        assert engine.stats.backend_calls == 6

    def test_fallback_when_hook_hidden(self):
        """A backend without execute_batch keeps working unchanged."""

        class NoBatch:
            """Duck-typed view of a backend minus the optional hook."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name in ("execute_batch", "parallel_safe"):
                    raise AttributeError(name)
                return getattr(self._inner, name)

        db = build_paper_database(backend=SQLiteBackend())
        proxy = type("ProxyDB", (), {
            "backend": NoBatch(db.backend), "tracer": db.tracer,
        })()
        engine = BatchExecutor(proxy, max_workers=1)
        probes = paper_probes()
        assert engine.run(probes) == serial_answers(probes)
        assert engine.stats.batched_calls == 0
        assert engine.stats.backend_calls == 6

    def test_chunking_splits_large_batches(self):
        db = build_paper_database(backend=SQLiteBackend())
        engine = BatchExecutor(db, chunk_size=2)
        probes = paper_probes()
        assert engine.run(probes) == serial_answers(probes)
        assert engine.stats.batched_calls == 3      # ceil(6 / 2)

    def test_empty_batch(self):
        db = build_paper_database()
        engine = BatchExecutor(db)
        assert engine.run([]) == []
        assert engine.stats.batches == 0
        assert len(db.tracer.events) == 0


class TestObservability:
    @pytest.mark.parametrize("backend", [MemoryBackend, SQLiteBackend])
    def test_one_event_per_logical_probe(self, backend):
        db = build_paper_database(backend=backend())
        engine = BatchExecutor(db)
        probes = paper_probes()
        engine.run(probes)
        events = db.tracer.events
        assert len(events) == len(probes)
        assert [e.primitive for e in events] == [p.primitive for p in probes]
        assert [e.relations for e in events] == [p.relations for p in probes]

    def test_counter_parity_with_serial(self):
        db = build_paper_database()
        BatchExecutor(db).run(paper_probes())
        assert db.counter.total() == len(paper_probes())
        assert db.counter.count_distinct == 3
        assert db.counter.join_count == 1
        assert db.counter.fd_checks == 2
        assert db.counter.inclusion_checks == 1

    def test_duplicates_recorded_as_zero_cost_cache_hits(self):
        db = build_paper_database()
        BatchExecutor(db).run(paper_probes())
        dup = db.tracer.events[5]   # the repeated Person.id distinct
        assert dup.cache_hit is True
        assert dup.duration == 0.0
        assert dup.rows_touched == 0

    def test_engine_span_nested_and_annotated(self):
        db = build_paper_database()
        engine = BatchExecutor(db)
        with db.tracer.span("phase-like", kind="phase") as outer:
            engine.run(paper_probes())
        (child,) = [s for s in db.tracer.spans if s.parent_id == outer.span_id]
        assert child.name == "engine" and child.kind == "engine"
        assert child.attributes["logical"] == 7
        assert child.attributes["unique"] == 6

    def test_stats_accumulate_across_batches(self):
        db = build_paper_database()
        engine = BatchExecutor(db, max_workers=1)
        engine.run(paper_probes())
        engine.run(paper_probes())
        assert engine.stats.batches == 2
        assert engine.stats.logical_probes == 14
        assert engine.stats.deduped_probes == 2
