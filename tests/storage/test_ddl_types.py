"""DDL generation across the full type system."""

import pytest

from repro.relational import Attribute, Database, RelationSchema
from repro.relational.domain import BOOLEAN, DATE, INTEGER, NULL, REAL, TEXT
from repro.sql import Executor
from repro.storage.ddl import migration_script


@pytest.fixture
def typed_db():
    schema = RelationSchema(
        "everything",
        [
            Attribute("id", INTEGER, nullable=False),
            Attribute("ratio", REAL),
            Attribute("label", TEXT),
            Attribute("day", DATE),
            Attribute("flag", BOOLEAN),
        ],
    )
    schema.declare_unique(("id",))
    db = Database()
    db.create_relation(schema)
    db.insert("everything", [1, 2.5, "x", "2020-01-02", True])
    db.insert("everything", [2, NULL, "it's", NULL, False])
    return db


class TestTypedRoundTrip:
    def test_all_types_replay_through_engine(self, typed_db):
        script = migration_script(typed_db)
        fresh = Database()
        Executor(fresh).run_script(script)
        rows = sorted(r.values for r in fresh.table("everything"))
        assert rows[0] == (1, 2.5, "x", "2020-01-02", True)
        assert rows[1][1] is NULL
        assert rows[1][2] == "it's"
        assert rows[1][4] is False

    def test_type_names_in_ddl(self, typed_db):
        script = migration_script(typed_db, include_data=False)
        for fragment in ("INTEGER", "NUMERIC", "VARCHAR(255)", "DATE", "BOOLEAN"):
            assert fragment in script

    def test_restored_schema_types_match(self, typed_db):
        script = migration_script(typed_db, include_data=False)
        fresh = Database()
        Executor(fresh).run_script(script)
        restored = fresh.schema.relation("everything")
        original = typed_db.schema.relation("everything")
        for name in original.attribute_names:
            assert restored.attribute(name).dtype == original.attribute(name).dtype
