"""CSV and JSON round-trips."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.eer.compare import schemas_equivalent
from repro.exceptions import DataError
from repro.relational.domain import NULL
from repro.storage.csv_io import (
    dump_database_csv,
    dump_table_csv,
    load_database_csv,
    load_table_csv,
)
from repro.storage.serialize import (
    database_from_dict,
    database_to_dict,
    dependencies_from_dict,
    dependencies_to_dict,
    eer_from_dict,
    eer_to_dict,
    load_json,
    save_json,
    schema_from_dict,
    schema_to_dict,
)


class TestCSV:
    def test_table_round_trip_with_nulls(self, tiny_db, tmp_path):
        path = str(tmp_path / "person.csv")
        dump_table_csv(tiny_db.table("person"), path)
        loaded = load_table_csv(tiny_db.schema.relation("person"), path)
        assert [r.values for r in loaded] == [
            r.values for r in tiny_db.table("person")
        ]
        assert loaded[3]["person_city_id"] is NULL

    def test_header_mismatch_rejected(self, tiny_db, tmp_path):
        path = str(tmp_path / "bad.csv")
        dump_table_csv(tiny_db.table("person"), path)
        with pytest.raises(DataError):
            load_table_csv(tiny_db.schema.relation("city"), path)

    def test_database_round_trip(self, tiny_db, tmp_path):
        directory = str(tmp_path / "dump")
        paths = dump_database_csv(tiny_db, directory)
        assert len(paths) == 2
        clone = tiny_db.copy()
        for table in clone.tables():
            table.replace_rows([])
        load_database_csv(clone, directory)
        assert len(clone.table("person")) == 4
        assert len(clone.table("city")) == 3


class TestJSONSchema:
    def test_schema_round_trip(self, paper_db):
        doc = schema_to_dict(paper_db.schema)
        restored = schema_from_dict(doc)
        assert {r.name for r in restored} == {r.name for r in paper_db.schema}
        dep = restored.relation("Department")
        assert dep.is_key(["dep"])
        assert not dep.attribute("location").nullable

    def test_database_round_trip(self, tiny_db):
        restored = database_from_dict(database_to_dict(tiny_db))
        assert [r.values for r in restored.table("person")] == [
            r.values for r in tiny_db.table("person")
        ]

    def test_format_tag_checked(self):
        with pytest.raises(DataError):
            schema_from_dict({"format": "something-else"})

    def test_dependencies_round_trip(self):
        fds = [FD("R", ("a",), ("b", "c"))]
        inds = [IND("R", ("a",), "S", ("x",))]
        restored_fds, restored_inds = dependencies_from_dict(
            dependencies_to_dict(fds, inds)
        )
        assert restored_fds == fds
        assert restored_inds == inds

    def test_eer_round_trip(self, paper_db, paper_corpus, paper_expert):
        from repro.core import DBREPipeline

        eer = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus).eer
        restored = eer_from_dict(eer_to_dict(eer))
        assert schemas_equivalent(eer, restored)

    def test_save_load_file(self, tiny_db, tmp_path):
        path = str(tmp_path / "db.json")
        save_json(database_to_dict(tiny_db), path)
        restored = database_from_dict(load_json(path))
        assert len(restored.table("city")) == 3
