"""DDL generation: the migration artifact."""

import pytest

from repro.core import DBREPipeline
from repro.relational import Database
from repro.sql import Executor
from repro.storage.ddl import (
    create_table_sql,
    inserts_to_sql,
    migration_script,
    schema_to_sql,
)


@pytest.fixture(scope="module")
def paper_run():
    from repro.core import ScriptedExpert
    from repro.workloads.paper_example import (
        build_paper_database,
        paper_expert_script,
        paper_program_corpus,
    )

    pipeline = DBREPipeline(
        build_paper_database(), ScriptedExpert(paper_expert_script())
    )
    return pipeline.run(corpus=paper_program_corpus())


class TestCreateTable:
    def test_basic_statement(self, tiny_db):
        sql = create_table_sql(tiny_db.schema.relation("person"))
        assert sql.startswith("CREATE TABLE person")
        assert "person_id INTEGER" in sql
        assert "PRIMARY KEY (person_id)" in sql

    def test_not_null_emitted_for_non_key(self, paper_run):
        sql = create_table_sql(
            paper_run.restructured.schema.relation("Department")
        )
        assert "location VARCHAR(255) NOT NULL" in sql

    def test_hyphenated_names_quoted(self, paper_run):
        sql = create_table_sql(
            paper_run.restructured.schema.relation("Project")
        )
        assert '"project-name"' in sql

    def test_foreign_keys_from_ric(self, paper_run):
        schema = paper_run.restructured.schema
        sql = create_table_sql(schema.relation("Manager"), paper_run.ric)
        assert "FOREIGN KEY (emp) REFERENCES Employee (no)" in sql
        assert "FOREIGN KEY (proj) REFERENCES Project (proj)" in sql


class TestSchemaScript:
    def test_references_precede_referrers(self, paper_run):
        script = schema_to_sql(paper_run.restructured.schema, paper_run.ric)
        order = [
            line.split()[2].strip('"(')
            for line in script.splitlines()
            if line.startswith("CREATE TABLE")
        ]
        # Employee is referenced by Manager/Assignment/HEmployee: earlier
        assert order.index("Employee") < order.index("Manager")
        assert order.index("Person") < order.index("Employee")
        assert order.index("Project") < order.index("Assignment")

    def test_all_relations_emitted(self, paper_run):
        script = schema_to_sql(paper_run.restructured.schema, paper_run.ric)
        assert script.count("CREATE TABLE") == 9

    def test_ddl_round_trips_through_own_engine(self, paper_run):
        # without FK clauses (the engine does not parse FOREIGN KEY)
        script = schema_to_sql(paper_run.restructured.schema)
        fresh = Database()
        Executor(fresh).run_script(script)
        original = paper_run.restructured.schema
        assert fresh.schema.relation_names == original.relation_names
        for name in original.relation_names:
            got = fresh.schema.relation(name)
            want = original.relation(name)
            assert got.attribute_names == want.attribute_names
            assert set(tuple(u.attributes) for u in got.uniques) == set(
                tuple(u.attributes) for u in want.uniques
            )


class TestMigration:
    def test_full_round_trip_with_data(self, paper_run):
        script = migration_script(paper_run.restructured)
        fresh = Database()
        Executor(fresh).run_script(script)
        fresh.validate()
        for table in paper_run.restructured.tables():
            restored = fresh.table(table.name)
            assert len(restored) == len(table)
            assert {r.values for r in restored} == {r.values for r in table}

    def test_inserts_batched(self, paper_db):
        text = inserts_to_sql(paper_db, batch_size=10)
        # Person has 22 rows -> 3 INSERT statements
        assert text.count("INSERT INTO Person") == 3

    def test_nulls_and_quotes_escaped(self, tiny_db):
        tiny_db.insert("city", [9, "O'Brien"])
        text = inserts_to_sql(tiny_db)
        assert "'O''Brien'" in text
        assert "NULL" in text       # dave's missing city

    def test_schema_only_script(self, paper_run):
        script = migration_script(
            paper_run.restructured, paper_run.ric, include_data=False
        )
        assert "INSERT" not in script
        assert "FOREIGN KEY" in script
