"""Decision persistence: serialize, reload, replay."""

import pytest

from repro.core.expert import (
    ConceptualizeIntersection,
    ForceInclusion,
    IgnoreIntersection,
    ScriptedExpert,
)
from repro.exceptions import DataError
from repro.storage.decisions import script_from_dict, script_to_dict


class TestRoundTrip:
    def test_all_answer_kinds(self):
        script = {
            "nei:A[x] >< B[y]": ConceptualizeIntersection("AB"),
            "nei:C[u] >< D[v]": ForceInclusion("left_in_right"),
            "nei:E[m] >< F[n]": IgnoreIntersection(),
            "validate:R: a -> b": True,
            "hidden:R.{a}": False,
            "name_fd:R: a -> b": "Thing",
        }
        restored = script_from_dict(script_to_dict(script))
        assert restored == script

    def test_unknown_answer_rejected(self):
        with pytest.raises(DataError):
            script_to_dict({"q": object()})

    def test_format_tag_checked(self):
        with pytest.raises(DataError):
            script_from_dict({"format": "other"})
        with pytest.raises(DataError):
            script_from_dict(
                {"format": "repro/decisions@1",
                 "answers": [{"question": "q", "answer": {"type": "weird"}}]}
            )

    def test_paper_session_round_trips_through_json(self, tmp_path):
        """Record the paper run, persist to JSON, replay from disk."""
        import json

        from repro.core import DBREPipeline
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
            paper_program_corpus,
        )

        pipeline = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        )
        first = pipeline.run(corpus=paper_program_corpus())

        path = tmp_path / "decisions.json"
        path.write_text(
            json.dumps(script_to_dict(pipeline.expert.to_script()))
        )
        reloaded = script_from_dict(json.loads(path.read_text()))

        replayed = DBREPipeline(
            build_paper_database(), ScriptedExpert(reloaded)
        ).run(corpus=paper_program_corpus())
        assert replayed.ric == first.ric
        assert [r.name for r in replayed.restructured.schema] == [
            r.name for r in first.restructured.schema
        ]


class TestCLIFlags:
    def test_save_then_replay(self, tmp_path, capsys):
        from repro.cli import main

        schema = tmp_path / "schema.sql"
        schema.write_text(
            """
            CREATE TABLE city (cid INT PRIMARY KEY, cname VARCHAR(20));
            CREATE TABLE person (pid INT PRIMARY KEY, home INT,
                                 home_name VARCHAR(20));
            INSERT INTO city VALUES (1, 'L'), (2, 'P'), (3, 'N');
            INSERT INTO person VALUES (10, 1, 'L'), (11, 1, 'L'),
                                      (12, 2, 'P'), (13, 3, 'N'),
                                      (14, 2, 'P'), (15, 1, 'L');
            """
        )
        programs = tmp_path / "progs"
        programs.mkdir()
        (programs / "r.sql").write_text(
            "SELECT pid FROM person, city WHERE home = cid;"
        )
        decisions = tmp_path / "decisions.json"

        assert main(
            ["run", str(schema), str(programs),
             "--save-decisions", str(decisions)]
        ) == 0
        first_out = capsys.readouterr().out
        assert decisions.exists()

        assert main(
            ["run", str(schema), str(programs),
             "--replay-decisions", str(decisions)]
        ) == 0
        second_out = capsys.readouterr().out
        # identical pipeline output (modulo the trailing save notice)
        strip = lambda text: [
            line for line in text.splitlines() if "written to" not in line
        ]
        assert strip(first_out) == strip(second_out)
