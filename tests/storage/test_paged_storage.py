"""Unit tests of the paged storage engine: codec, page, file, pool."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.relational.domain import NULL
from repro.storage.paged import (
    BufferPool,
    FileManager,
    Page,
    PageFile,
    decode_row,
    encode_row,
)
from repro.storage.paged.codec import decode_value, encode_value
from repro.storage.paged.file_manager import relation_filename
from repro.storage.paged.page import PageFullError


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "values",
        [
            (1, "alice", 2.5, True, NULL),
            (0, -1, 2 ** 62, -(2 ** 63)),
            (2 ** 100, -(2 ** 100)),                # beyond 64-bit
            (0.0, -0.0, 1e308, 1e-308, float("inf")),
            (False, True),
            ("", "héllo wörld", "日本語", "a" * 10_000),
            ("1996-04-01",),                        # DATE stores ISO strings
            (NULL, NULL, NULL),
        ],
    )
    def test_round_trip_exact(self, values):
        decoded = decode_row(encode_row(values), len(values))
        assert decoded == tuple(values)
        # type-exact: an int must not come back as a float (REAL columns
        # legitimately hold ints) and a bool must stay a bool
        assert [type(v) for v in decoded] == [type(v) for v in values]

    def test_bool_is_not_confused_with_int(self):
        # bool is an int subclass; the tag must disambiguate
        assert decode_value(encode_value(True), 0)[0] is True
        assert decode_value(encode_value(1), 0)[0] == 1
        assert type(decode_value(encode_value(1), 0)[0]) is int

    def test_unknown_tag_is_a_one_line_error(self):
        with pytest.raises(StorageError, match="unknown value tag"):
            decode_row(b"Zjunk", 1)

    def test_truncated_payload_is_a_one_line_error(self):
        record = encode_row(("hello",))
        with pytest.raises(StorageError, match="truncated"):
            decode_row(record[:-2], 1)

    def test_truncated_fixed_width_is_a_one_line_error(self):
        record = encode_row((123,))
        with pytest.raises(StorageError, match="truncated"):
            decode_row(record[:4], 1)

    def test_trailing_bytes_are_a_one_line_error(self):
        record = encode_row((1, 2))
        with pytest.raises(StorageError, match="trailing"):
            decode_row(record, 1)

    def test_unencodable_type_is_rejected(self):
        with pytest.raises(StorageError, match="cannot encode"):
            encode_value(object())


# ----------------------------------------------------------------------
# slotted page
# ----------------------------------------------------------------------
class TestPage:
    def test_append_and_read_back_in_order(self):
        page = Page.empty(1, 256)
        records = [b"alpha", b"beta", b"gamma"]
        slots = [page.append(r) for r in records]
        assert slots == [0, 1, 2]
        assert list(page.records()) == records
        assert len(page) == 3

    def test_next_page_link_round_trips(self):
        page = Page.empty(1, 256)
        page.append(b"data")
        page.next_page = 42
        assert page.next_page == 42
        assert list(page.records()) == [b"data"]  # records untouched

    def test_full_page_raises_page_full(self):
        page = Page.empty(1, 64)
        page.append(b"x" * 30)
        with pytest.raises(PageFullError):
            page.append(b"y" * 30)

    def test_record_larger_than_any_page_is_a_hard_error(self):
        page = Page.empty(1, 64)
        with pytest.raises(StorageError, match="cannot fit"):
            page.append(b"z" * 200)

    def test_bad_slot_index_is_an_error(self):
        page = Page.empty(1, 128)
        page.append(b"only")
        with pytest.raises(StorageError, match="no slot"):
            page.record(3)


# ----------------------------------------------------------------------
# page files
# ----------------------------------------------------------------------
class TestPageFile:
    def test_create_allocate_write_read_persist(self, tmp_path):
        path = str(tmp_path / "r.pages")
        file = PageFile(path, page_size=128, create=True)
        pid = file.allocate()
        page = Page.empty(pid, 128)
        page.append(b"hello")
        file.write_page(page)
        file.first_data = file.last_data = pid
        file.row_count = 1
        file.close()

        reopened = PageFile(path, page_size=128)
        assert reopened.page_count == 2
        assert reopened.row_count == 1
        assert list(reopened.read_page(reopened.first_data).records()) == [b"hello"]

    def test_free_list_is_reused_before_growing(self, tmp_path):
        file = PageFile(str(tmp_path / "r.pages"), page_size=128, create=True)
        a, b = file.allocate(), file.allocate()
        count = file.page_count
        file.free(a)
        file.free(b)
        assert file.free_page_ids() == [b, a]       # LIFO
        assert file.allocate() == b
        assert file.allocate() == a
        assert file.page_count == count             # no growth
        assert file.allocate() == count             # list empty -> grow

    def test_missing_file_names_the_path(self, tmp_path):
        path = str(tmp_path / "gone.pages")
        with pytest.raises(StorageError, match=f"no such page file: {path}"):
            PageFile(path)

    def test_truncated_header_names_file_and_offset(self, tmp_path):
        path = str(tmp_path / "short.pages")
        with open(path, "wb") as handle:
            handle.write(b"RPG1\x00")
        with pytest.raises(StorageError, match="offset 0"):
            PageFile(path)

    def test_bad_magic_names_the_file(self, tmp_path):
        path = str(tmp_path / "notpages.pages")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 256)
        with pytest.raises(StorageError, match="not a paged relation file"):
            PageFile(path)

    def test_truncated_body_names_expected_byte_count(self, tmp_path):
        path = str(tmp_path / "r.pages")
        file = PageFile(path, page_size=128, create=True)
        file.allocate()
        file.close()
        with open(path, "r+b") as handle:
            handle.truncate(130)                    # second page cut short
        with pytest.raises(StorageError, match="truncated page file"):
            PageFile(path, page_size=128)

    def test_out_of_range_page_id_is_an_error(self, tmp_path):
        file = PageFile(str(tmp_path / "r.pages"), page_size=128, create=True)
        with pytest.raises(StorageError, match="no page 7"):
            file.read_page(7)

    def test_page_size_bounds_are_enforced(self, tmp_path):
        with pytest.raises(StorageError, match="below the minimum"):
            PageFile(str(tmp_path / "a.pages"), page_size=16, create=True)
        with pytest.raises(StorageError, match="exceeds 65536"):
            PageFile(str(tmp_path / "b.pages"), page_size=1 << 17, create=True)

    def test_relation_filenames_are_safe_and_distinct(self):
        assert relation_filename("Person") == "Person.pages"
        weird = relation_filename("a/b..\\c d")
        assert "/" not in weird and "\\" not in weird and " " not in weird
        assert relation_filename("a/b") != relation_filename("a_b")


# ----------------------------------------------------------------------
# buffer pool
# ----------------------------------------------------------------------
def _disk_pool(tmp_path, capacity, page_size=128, relation="r"):
    manager = FileManager(str(tmp_path), page_size=page_size)
    file = manager.open(relation, create=True)
    pool = BufferPool(capacity, manager.read_page, manager.write_page)
    return manager, file, pool


class TestBufferPool:
    def test_hits_and_misses_are_counted(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=2)
        pid = file.allocate()
        file.write_page(Page.empty(pid, 128))
        pool.fetch("r", pid); pool.unpin("r", pid)
        pool.fetch("r", pid); pool.unpin("r", pid)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_rate == 0.5

    def test_lru_evicts_least_recently_used_first(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=2)
        pids = []
        for _ in range(3):
            pid = file.allocate()
            file.write_page(Page.empty(pid, 128))
            pids.append(pid)
        a, b, c = pids
        pool.fetch("r", a); pool.unpin("r", a)
        pool.fetch("r", b); pool.unpin("r", b)
        pool.fetch("r", a); pool.unpin("r", a)      # a is now most recent
        pool.fetch("r", c); pool.unpin("r", c)      # evicts b, not a
        assert pool.stats.evictions == 1
        assert ("r", b) not in pool.resident_keys()
        assert ("r", a) in pool.resident_keys()
        assert len(pool) == 2

    def test_dirty_frames_are_written_back_on_eviction(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=1)
        a = file.allocate()
        file.write_page(Page.empty(a, 128))
        b = file.allocate()
        file.write_page(Page.empty(b, 128))
        page = pool.fetch("r", a)
        page.append(b"mutated")
        pool.unpin("r", a, dirty=True)
        pool.fetch("r", b); pool.unpin("r", b)      # evicts dirty a
        assert pool.stats.write_backs == 1
        assert list(file.read_page(a).records()) == [b"mutated"]

    def test_pinned_frames_are_never_evicted(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=2)
        pids = []
        for _ in range(3):
            pid = file.allocate()
            file.write_page(Page.empty(pid, 128))
            pids.append(pid)
        a, b, c = pids
        pool.fetch("r", a)                          # pinned
        pool.fetch("r", b); pool.unpin("r", b)
        pool.fetch("r", c); pool.unpin("r", c)      # must evict b
        assert ("r", a) in pool.resident_keys()
        pool.unpin("r", a)

    def test_all_frames_pinned_is_a_clear_error(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=1)
        a = file.allocate()
        file.write_page(Page.empty(a, 128))
        b = file.allocate()
        file.write_page(Page.empty(b, 128))
        pool.fetch("r", a)                          # pinned, never released
        with pytest.raises(StorageError, match="buffer pool exhausted"):
            pool.fetch("r", b)

    def test_unpin_without_fetch_is_an_error(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=1)
        with pytest.raises(StorageError, match="without a matching fetch"):
            pool.unpin("r", 1)

    def test_flush_all_writes_dirty_frames_and_keeps_them(self, tmp_path):
        manager, file, pool = _disk_pool(tmp_path, capacity=2)
        a = file.allocate()
        file.write_page(Page.empty(a, 128))
        page = pool.fetch("r", a)
        page.append(b"kept")
        pool.unpin("r", a, dirty=True)
        pool.flush_all()
        assert list(file.read_page(a).records()) == [b"kept"]
        assert ("r", a) in pool.resident_keys()

    def test_invalidate_drops_only_that_relation(self, tmp_path):
        manager = FileManager(str(tmp_path), page_size=128)
        pool = BufferPool(4, manager.read_page, manager.write_page)
        for relation in ("r", "s"):
            file = manager.open(relation, create=True)
            pid = file.allocate()
            file.write_page(Page.empty(pid, 128))
            pool.fetch(relation, pid)
            pool.unpin(relation, pid)
        pool.invalidate("r")
        keys = pool.resident_keys()
        assert all(key[0] == "s" for key in keys) and keys

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(StorageError, match="at least one frame"):
            BufferPool(0, lambda r, p: None, lambda r, p: None)
