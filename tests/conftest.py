"""Shared fixtures: the paper example, small schemas, synthetic scenarios."""

from __future__ import annotations

import pytest

from repro.core import ScriptedExpert
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.domain import INTEGER
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
    paper_program_corpus,
)


@pytest.fixture
def paper_db() -> Database:
    """The populated §5 database (fresh copy per test)."""
    return build_paper_database()


@pytest.fixture
def paper_corpus():
    return paper_program_corpus()


@pytest.fixture
def paper_q():
    return paper_equijoins()


@pytest.fixture
def paper_expert() -> ScriptedExpert:
    return ScriptedExpert(paper_expert_script())


@pytest.fixture
def tiny_db() -> Database:
    """A two-relation database small enough to reason about by hand."""
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "city", ["city_id", "city_name"], key=["city_id"],
                types={"city_id": INTEGER},
            ),
            RelationSchema.build(
                "person",
                ["person_id", "person_name", "person_city_id"],
                key=["person_id"],
                types={"person_id": INTEGER, "person_city_id": INTEGER},
            ),
        ]
    )
    db = Database(schema)
    db.insert_many("city", [[1, "Lyon"], [2, "Paris"], [3, "Nice"]])
    db.insert_many(
        "person",
        [
            [10, "alice", 1],
            [11, "bob", 1],
            [12, "carol", 2],
            [13, "dave", None],
        ],
    )
    return db
