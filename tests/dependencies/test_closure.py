"""Closure, implication, minimal cover — the classical machinery."""

from repro.dependencies.closure import (
    attribute_closure,
    equivalent_covers,
    implies,
    minimal_cover,
    project_fds,
    restrict_to_relation,
)
from repro.dependencies.fd import FunctionalDependency as FD


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestClosure:
    def test_reflexive(self):
        assert attribute_closure(["a"], []) == frozenset({"a"})

    def test_chains(self):
        deps = fds("a -> b", "b -> c", "c -> d")
        assert attribute_closure(["a"], deps) == frozenset("abcd")
        assert attribute_closure(["b"], deps) == frozenset("bcd")

    def test_composite_lhs_needs_all(self):
        deps = fds("a, b -> c")
        assert "c" not in attribute_closure(["a"], deps)
        assert "c" in attribute_closure(["a", "b"], deps)


class TestImplication:
    def test_armstrong_transitivity(self):
        deps = fds("a -> b", "b -> c")
        assert implies(deps, FD.parse("a -> c"))

    def test_augmentation(self):
        deps = fds("a -> b")
        assert implies(deps, FD.parse("a, c -> b"))

    def test_non_implication(self):
        assert not implies(fds("a -> b"), FD.parse("b -> a"))

    def test_equivalent_covers(self):
        left = fds("a -> b", "a -> c")
        right = fds("a -> b, c")
        assert equivalent_covers(left, right)
        assert not equivalent_covers(left, fds("a -> b"))


class TestMinimalCover:
    def test_splits_rhs(self):
        cover = minimal_cover(fds("a -> b, c"))
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert len(cover) == 2

    def test_removes_redundant_fd(self):
        cover = minimal_cover(fds("a -> b", "b -> c", "a -> c"))
        assert FD.parse("a -> c") not in cover
        assert equivalent_covers(cover, fds("a -> b", "b -> c"))

    def test_removes_extraneous_lhs_attribute(self):
        cover = minimal_cover(fds("a -> b", "a, b -> c"))
        assert FD.parse("a -> c") in cover or equivalent_covers(
            cover, fds("a -> b", "a -> c")
        )

    def test_trivial_dropped(self):
        assert minimal_cover(fds("a, b -> a")) == []

    def test_idempotent(self):
        deps = fds("a -> b", "b -> c", "c -> a")
        once = minimal_cover(deps)
        assert minimal_cover(once) == once


class TestProjection:
    def test_project_keeps_transitive_consequences(self):
        deps = fds("a -> b", "b -> c")
        projected = project_fds(deps, ["a", "c"])
        assert implies(projected, FD.parse("a -> c"))

    def test_project_drops_outside_attributes(self):
        deps = fds("a -> b")
        assert project_fds(deps, ["a", "c"]) == []

    def test_restrict_to_relation(self):
        deps = fds("a -> b", "c -> d")
        out = restrict_to_relation(deps, "R", ["a", "b"])
        assert out == [FD("R", ("a",), ("b",))]
