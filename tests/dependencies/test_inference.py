"""FD satisfaction against extensions."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.inference import (
    fd_satisfied,
    fd_satisfied_in,
    fds_satisfied,
    satisfaction_ratio,
    violating_fds,
    violation_witnesses,
)
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Table


@pytest.fixture
def table():
    schema = RelationSchema.build(
        "emp", ["eid", "dept", "city", "bonus"],
        key=["eid"], types={"eid": INTEGER, "bonus": INTEGER},
    )
    t = Table(schema)
    t.insert_many(
        [
            [1, "sales", "Lyon", 10],
            [2, "sales", "Lyon", 20],
            [3, "tech", "Paris", 10],
            [4, NULL, "Paris", 30],
        ]
    )
    return t


class TestSatisfaction:
    def test_fd_holds(self, table):
        assert fd_satisfied(table, FD("emp", ("dept",), ("city",)))

    def test_fd_fails(self, table):
        assert not fd_satisfied(table, FD("emp", ("dept",), ("bonus",)))

    def test_null_lhs_skipped(self, table):
        # the NULL-dept row (city=Paris) must not clash with tech->Paris
        assert fd_satisfied(table, FD("emp", ("dept",), ("city",)))

    def test_database_level(self, tiny_db):
        assert fd_satisfied_in(tiny_db, FD("city", ("city_id",), ("city_name",)))
        assert fds_satisfied(
            tiny_db, [FD("city", ("city_id",), ("city_name",))]
        )

    def test_violating_fds(self, tiny_db):
        bad = FD("person", ("person_city_id",), ("person_name",))
        good = FD("city", ("city_id",), ("city_name",))
        assert violating_fds(tiny_db, [bad, good]) == [bad]


class TestDiagnostics:
    def test_witnesses(self, table):
        pairs = violation_witnesses(table, FD("emp", ("dept",), ("bonus",)))
        assert pairs
        a, b = pairs[0]
        assert a["dept"] == b["dept"] and a["bonus"] != b["bonus"]

    def test_ratio_full_when_satisfied(self, table):
        assert satisfaction_ratio(table, FD("emp", ("dept",), ("city",))) == 1.0

    def test_ratio_counts_clean_groups(self, table):
        # groups: sales (dirty), tech (clean) -> 1/2
        assert satisfaction_ratio(table, FD("emp", ("dept",), ("bonus",))) == 0.5

    def test_ratio_on_empty_table(self):
        schema = RelationSchema.build("r", ["a", "b"])
        assert satisfaction_ratio(Table(schema), FD("r", ("a",), ("b",))) == 1.0
