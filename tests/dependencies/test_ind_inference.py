"""IND satisfaction and the Casanova-Fagin-Papadimitriou axioms."""

import pytest

from repro.dependencies.ind import InclusionDependency as IND
from repro.dependencies.ind_inference import (
    compose,
    ind_implies,
    ind_satisfied,
    inds_satisfied,
    is_reflexive,
    projections,
    transitive_closure_inds,
    violating_inds,
)


class TestSatisfaction:
    def test_satisfied(self, tiny_db):
        assert ind_satisfied(
            tiny_db, IND("person", ("person_city_id",), "city", ("city_id",))
        )

    def test_violated(self, tiny_db):
        assert not ind_satisfied(
            tiny_db, IND("city", ("city_id",), "person", ("person_city_id",))
        )

    def test_batch_helpers(self, tiny_db):
        good = IND("person", ("person_city_id",), "city", ("city_id",))
        bad = good.reversed()
        assert inds_satisfied(tiny_db, [good])
        assert violating_inds(tiny_db, [good, bad]) == [bad]


class TestAxioms:
    def test_reflexivity(self):
        assert is_reflexive(IND("R", ("a",), "R", ("a",)))
        assert not is_reflexive(IND("R", ("a",), "R", ("b",)))

    def test_projection(self):
        ind = IND("R", ("a", "b"), "S", ("x", "y"))
        unary = projections(ind)
        assert IND("R", ("a",), "S", ("x",)) in unary
        assert IND("R", ("b",), "S", ("y",)) in unary
        assert projections(IND("R", ("a",), "S", ("x",))) == []

    def test_compose(self):
        first = IND("R", ("a",), "S", ("x",))
        second = IND("S", ("x",), "T", ("p",))
        assert compose(first, second) == IND("R", ("a",), "T", ("p",))

    def test_compose_mismatch_raises(self):
        with pytest.raises(ValueError):
            compose(IND("R", ("a",), "S", ("x",)), IND("S", ("y",), "T", ("p",)))

    def test_transitive_closure(self):
        closed = transitive_closure_inds(
            [IND("R", ("a",), "S", ("x",)), IND("S", ("x",), "T", ("p",))]
        )
        assert IND("R", ("a",), "T", ("p",)) in closed
        assert len(closed) == 3

    def test_closure_drops_reflexive(self):
        closed = transitive_closure_inds(
            [IND("R", ("a",), "S", ("x",)), IND("S", ("x",), "R", ("a",))]
        )
        assert all(not is_reflexive(i) for i in closed)

    def test_implication(self):
        givens = [IND("R", ("a", "b"), "S", ("x", "y")), IND("S", ("x",), "T", ("p",))]
        assert ind_implies(givens, IND("R", ("a",), "S", ("x",)))     # projection
        assert ind_implies(givens, IND("R", ("a",), "T", ("p",)))     # + transitivity
        assert ind_implies(givens, IND("Q", ("q",), "Q", ("q",)))     # reflexivity
        assert not ind_implies(givens, IND("T", ("p",), "R", ("a",)))
