"""Functional dependency value objects."""

import pytest

from repro.dependencies.fd import FunctionalDependency
from repro.exceptions import SchemaError
from repro.relational.attribute import AttributeRef


class TestConstruction:
    def test_string_sides_wrapped(self):
        fd = FunctionalDependency("R", "a", "b")
        assert tuple(fd.lhs) == ("a",)
        assert tuple(fd.rhs) == ("b",)

    def test_empty_sides_rejected(self):
        with pytest.raises(SchemaError):
            FunctionalDependency("R", (), ("b",))
        with pytest.raises(SchemaError):
            FunctionalDependency("R", ("a",), ())

    def test_equality_is_set_based(self):
        assert FunctionalDependency("R", ("a", "b"), ("c",)) == FunctionalDependency(
            "R", ("b", "a"), ("c",)
        )
        assert FunctionalDependency("R", "a", "b") != FunctionalDependency(
            "S", "a", "b"
        )


class TestParsing:
    def test_parse_with_relation(self):
        fd = FunctionalDependency.parse("Department: emp -> skill, proj")
        assert fd.relation == "Department"
        assert tuple(fd.lhs) == ("emp",)
        assert set(fd.rhs) == {"skill", "proj"}

    def test_parse_without_relation(self):
        fd = FunctionalDependency.parse("a, b -> c")
        assert fd.relation == ""
        assert set(fd.lhs) == {"a", "b"}

    def test_parse_rejects_non_fd(self):
        with pytest.raises(SchemaError):
            FunctionalDependency.parse("a, b, c")

    def test_repr_parses_back(self):
        fd = FunctionalDependency("Assignment", ("proj",), ("project-name",))
        assert FunctionalDependency.parse(repr(fd)) == fd


class TestOperations:
    def test_trivial(self):
        assert FunctionalDependency("R", ("a", "b"), ("a",)).is_trivial()
        assert not FunctionalDependency("R", ("a",), ("b",)).is_trivial()

    def test_split_rhs(self):
        fd = FunctionalDependency("R", ("a",), ("b", "c"))
        parts = fd.split_rhs()
        assert len(parts) == 2
        assert FunctionalDependency("R", ("a",), ("b",)) in parts

    def test_refs_and_attributes(self):
        fd = FunctionalDependency("R", ("a",), ("b",))
        assert fd.lhs_ref() == AttributeRef("R", "a")
        assert set(fd.attributes) == {"a", "b"}

    def test_with_relation(self):
        fd = FunctionalDependency("", ("a",), ("b",)).with_relation("R")
        assert fd.relation == "R"
