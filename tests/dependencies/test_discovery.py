"""Exhaustive discovery substrates: unary INDs and lattice FDs."""

import pytest

from repro.dependencies.discovery import (
    count_fd_candidates,
    count_unary_candidates,
    discover_fds,
    discover_unary_inds,
)
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Table


class TestUnaryINDDiscovery:
    def test_finds_fk_inclusion(self, tiny_db):
        found = discover_unary_inds(tiny_db)
        assert IND("person", ("person_city_id",), "city", ("city_id",)) in found

    def test_type_incompatible_pairs_skipped(self, tiny_db):
        found = discover_unary_inds(tiny_db)
        # TEXT names never end up included in INTEGER ids
        assert all(
            not (i.lhs_attrs == ("person_name",) and i.rhs_attrs == ("city_id",))
            for i in found
        )

    def test_candidate_count(self, tiny_db):
        # 5 attributes: ints {city_id, person_id, person_city_id} and
        # texts {city_name, person_name}: 3*2 + 2*1 = 8 ordered pairs
        assert count_unary_candidates(tiny_db) == 8

    def test_empty_lhs_skipped_by_default(self, tiny_db):
        tiny_db.create_relation(
            RelationSchema.build("empty", ["e"], key=["e"], types={"e": INTEGER})
        )
        found = discover_unary_inds(tiny_db)
        assert all(i.lhs_relation != "empty" for i in found)
        found_vacuous = discover_unary_inds(tiny_db, require_nonempty=False)
        assert any(i.lhs_relation == "empty" for i in found_vacuous)

    def test_max_candidates_truncates(self, tiny_db):
        partial = discover_unary_inds(tiny_db, max_candidates=1)
        full = discover_unary_inds(tiny_db)
        assert len(partial) <= len(full)


class TestFDDiscovery:
    @pytest.fixture
    def table(self):
        schema = RelationSchema.build(
            "r", ["a", "b", "c"], types={"a": INTEGER, "b": INTEGER, "c": INTEGER}
        )
        t = Table(schema)
        # a determines b; c is a*10 so a <-> c; b does not determine a
        t.insert_many([[1, 5, 10], [2, 5, 20], [3, 6, 30], [1, 5, 10]])
        return t

    def test_finds_unary_fds(self, table):
        found = discover_fds(table, max_lhs_size=1)
        assert FD("r", ("a",), ("b",)) in found
        assert FD("r", ("a",), ("c",)) in found
        assert FD("r", ("c",), ("a",)) in found
        assert FD("r", ("b",), ("a",)) not in found

    def test_minimality_suppresses_supersets(self, table):
        found = discover_fds(table, max_lhs_size=2)
        # a -> b found at size 1, so {a, c} -> b must not be reported
        assert FD("r", ("a", "c"), ("b",)) not in found

    def test_null_lhs_rows_skipped(self):
        schema = RelationSchema.build("r", ["a", "b"], types={"a": INTEGER})
        t = Table(schema)
        t.insert_many([[1, "x"], [NULL, "y"], [NULL, "z"]])
        found = discover_fds(t, max_lhs_size=1)
        assert FD("r", ("a",), ("b",)) in found

    def test_candidate_count_formula(self):
        # n=4, size<=2: C(4,1)*3 + C(4,2)*2 = 12 + 12 = 24
        assert count_fd_candidates(4, 2) == 24

    def test_composite_lhs_found(self):
        schema = RelationSchema.build(
            "r", ["a", "b", "c"], types={"a": INTEGER, "b": INTEGER}
        )
        t = Table(schema)
        t.insert_many([[1, 1, "x"], [1, 2, "y"], [2, 1, "z"], [2, 2, "w"]])
        found = discover_fds(t, max_lhs_size=2)
        assert FD("r", ("a", "b"), ("c",)) in found
        assert FD("r", ("a",), ("c",)) not in found
