"""Armstrong relations: exact satisfaction, discovery round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.armstrong import (
    build_armstrong_table,
    closed_sets,
    satisfies_exactly,
)
from repro.dependencies.closure import equivalent_covers, minimal_cover
from repro.dependencies.discovery import discover_fds
from repro.dependencies.fd import FunctionalDependency as FD
from repro.exceptions import ProcessError


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestClosedSets:
    def test_no_fds_everything_closed(self):
        sets = closed_sets(["a", "b"], [])
        assert len(sets) == 4       # {}, {a}, {b}, {a,b}

    def test_closure_collapses_sets(self):
        sets = closed_sets(["a", "b"], fds("a -> b"))
        # {a} is not closed (its closure is {a,b})
        assert frozenset({"a"}) not in sets
        assert frozenset({"b"}) in sets
        assert frozenset({"a", "b"}) in sets

    def test_cap_enforced(self):
        universe = [f"a{i}" for i in range(20)]
        with pytest.raises(ProcessError):
            closed_sets(universe, [])


class TestArmstrongConstruction:
    def test_simple_chain(self):
        universe = ["a", "b", "c"]
        deps = fds("a -> b", "b -> c")
        table = build_armstrong_table(universe, deps)
        assert satisfies_exactly(table, universe, deps)

    def test_no_dependencies(self):
        universe = ["a", "b", "c"]
        table = build_armstrong_table(universe, [])
        assert satisfies_exactly(table, universe, [])

    def test_key_dependency(self):
        universe = ["k", "x", "y"]
        deps = fds("k -> x, y")
        table = build_armstrong_table(universe, deps)
        assert satisfies_exactly(table, universe, deps)

    def test_discovery_round_trip(self):
        """FDs mined from the Armstrong relation form an equivalent cover."""
        universe = ["a", "b", "c", "d"]
        deps = fds("a -> b", "b, c -> d")
        table = build_armstrong_table(universe, deps)
        mined = discover_fds(table, max_lhs_size=3, universe=universe)
        assert equivalent_covers(
            [fd.with_relation("") for fd in mined], deps
        )


ATTRS = ["a", "b", "c", "d"]
attr_subsets = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2)


@st.composite
def small_fd_sets(draw):
    count = draw(st.integers(0, 3))
    return [
        FD(
            "",
            tuple(sorted(draw(attr_subsets))),
            tuple(sorted(draw(attr_subsets))),
        )
        for _ in range(count)
    ]


class TestArmstrongProperties:
    @given(small_fd_sets())
    @settings(max_examples=40, deadline=None)
    def test_exact_satisfaction_for_arbitrary_covers(self, deps):
        table = build_armstrong_table(ATTRS, deps)
        assert satisfies_exactly(table, ATTRS, deps)

    @given(small_fd_sets())
    @settings(max_examples=25, deadline=None)
    def test_mined_cover_is_equivalent(self, deps):
        table = build_armstrong_table(ATTRS, deps)
        mined = [
            fd.with_relation("")
            for fd in discover_fds(table, max_lhs_size=3, universe=ATTRS)
        ]
        assert equivalent_covers(mined, minimal_cover(deps) or deps)
