"""Candidate-key discovery."""

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.keys import candidate_keys, is_superkey, prime_attributes


def fds(*texts):
    return [FD.parse(t) for t in texts]


class TestSuperkey:
    def test_whole_universe_is_superkey(self):
        assert is_superkey(["a", "b"], ["a", "b"], [])

    def test_closure_based(self):
        deps = fds("a -> b", "b -> c")
        assert is_superkey(["a"], ["a", "b", "c"], deps)
        assert not is_superkey(["b"], ["a", "b", "c"], deps)


class TestCandidateKeys:
    def test_single_key(self):
        deps = fds("a -> b", "a -> c")
        assert candidate_keys(["a", "b", "c"], deps) == [frozenset({"a"})]

    def test_multiple_keys_cycle(self):
        deps = fds("a -> b", "b -> a", "a -> c")
        keys = candidate_keys(["a", "b", "c"], deps)
        assert frozenset({"a"}) in keys
        assert frozenset({"b"}) in keys

    def test_composite_key(self):
        deps = fds("a, b -> c")
        assert candidate_keys(["a", "b", "c"], deps) == [frozenset({"a", "b"})]

    def test_no_fds_whole_relation_is_key(self):
        assert candidate_keys(["a", "b"], []) == [frozenset({"a", "b"})]

    def test_keys_are_minimal(self):
        deps = fds("a -> b", "a -> c")
        keys = candidate_keys(["a", "b", "c"], deps)
        assert frozenset({"a", "b"}) not in keys

    def test_paper_assignment_relation(self):
        # key FD of Assignment plus the embedded proj -> project-name
        universe = ["emp", "dep", "proj", "date", "project-name"]
        deps = [
            FD("", ("emp", "dep", "proj"), ("date", "project-name")),
            FD("", ("proj",), ("project-name",)),
        ]
        keys = candidate_keys(universe, deps)
        assert keys == [frozenset({"emp", "dep", "proj"})]


class TestPrimeAttributes:
    def test_prime_union_of_keys(self):
        deps = fds("a -> b", "b -> a", "a -> c")
        assert prime_attributes(["a", "b", "c"], deps) == frozenset({"a", "b"})


class TestMinimalKeysAcrossSizes:
    """Regression: the old search broke one size past the largest found
    key, so minimal keys of a larger size were silently missed."""

    def test_keys_of_different_sizes_coexist(self):
        deps = fds("a -> b", "a -> c", "a -> d", "b, c, d -> a")
        keys = candidate_keys(["a", "b", "c", "d"], deps)
        assert frozenset({"a"}) in keys
        assert frozenset({"b", "c", "d"}) in keys
        assert len(keys) == 2

    def test_size_gap_between_keys(self):
        # keys {a}, {b, c, d} and {c, d, e}: sizes 1 and 3, nothing at 2
        deps = fds("a -> b, c, d, e", "b, c, d -> a", "d, e -> b")
        keys = candidate_keys(["a", "b", "c", "d", "e"], deps)
        assert keys == sorted(
            [
                frozenset({"a"}),
                frozenset({"b", "c", "d"}),
                frozenset({"c", "d", "e"}),
            ],
            key=sorted,
        )

    def test_prime_attributes_cover_all_keys(self):
        deps = fds("a -> b", "a -> c", "a -> d", "b, c, d -> a")
        assert prime_attributes(["a", "b", "c", "d"], deps) == frozenset(
            {"a", "b", "c", "d"}
        )

    def test_cutoff_still_terminates_early(self):
        # {a} covers everything; every size-1 combo is a superset of it,
        # so the search must stop without enumerating larger combos
        deps = fds("a -> b", "b -> a", "a -> c, d, e, f")
        keys = candidate_keys(["a", "b", "c", "d", "e", "f"], deps)
        assert keys == [frozenset({"a"}), frozenset({"b"})]
