"""Inclusion dependency value objects."""

import pytest

from repro.dependencies.ind import InclusionDependency
from repro.exceptions import SchemaError


class TestConstruction:
    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            InclusionDependency("R", ("a", "b"), "S", ("x",))

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            InclusionDependency("R", ("a", "a"), "S", ("x", "y"))
        with pytest.raises(SchemaError):
            InclusionDependency("R", ("a", "b"), "S", ("x", "x"))

    def test_directionality(self):
        forward = InclusionDependency("R", ("a",), "S", ("x",))
        backward = forward.reversed()
        assert forward != backward
        assert backward.lhs_relation == "S"

    def test_pairing_respecting_equality(self):
        a = InclusionDependency("R", ("a", "b"), "S", ("x", "y"))
        b = InclusionDependency("R", ("b", "a"), "S", ("y", "x"))
        c = InclusionDependency("R", ("a", "b"), "S", ("y", "x"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestParsing:
    def test_parse(self):
        ind = InclusionDependency.parse("HEmployee[no] << Person[id]")
        assert ind.lhs_relation == "HEmployee"
        assert ind.rhs_attrs == ("id",)

    def test_parse_multi(self):
        ind = InclusionDependency.parse("R[a, b] << S[x, y]")
        assert ind.pairs() == (("a", "x"), ("b", "y"))

    def test_parse_rejects_garbage(self):
        with pytest.raises(SchemaError):
            InclusionDependency.parse("R[a] subset S[x]")
        with pytest.raises(SchemaError):
            InclusionDependency.parse("Ra] << S[x]")

    def test_repr_parses_back(self):
        ind = InclusionDependency("Ass-Dept", ("dep",), "Department", ("dep",))
        assert InclusionDependency.parse(repr(ind)) == ind


class TestRenames:
    def test_rename_lhs(self):
        ind = InclusionDependency("R", ("a",), "S", ("x",))
        renamed = ind.rename_lhs("T", ("t",))
        assert renamed.lhs_relation == "T"
        assert renamed.rhs_relation == "S"

    def test_rename_rhs(self):
        ind = InclusionDependency("R", ("a",), "S", ("x",))
        renamed = ind.rename_rhs("T", ("t",))
        assert renamed.rhs_relation == "T"

    def test_is_unary(self):
        assert InclusionDependency("R", ("a",), "S", ("x",)).is_unary()
        assert not InclusionDependency("R", ("a", "b"), "S", ("x", "y")).is_unary()
