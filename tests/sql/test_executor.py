"""SQL executor: DDL, DML, selects, joins, subqueries, aggregates."""

import pytest

from repro.exceptions import SQLExecutionError
from repro.relational import Database, NULL
from repro.sql import Executor


@pytest.fixture
def db():
    database = Database()
    ex = Executor(database)
    ex.run_script(
        """
        CREATE TABLE city (cid INT PRIMARY KEY, cname VARCHAR(20));
        INSERT INTO city VALUES (1, 'Lyon'), (2, 'Paris'), (3, 'Nice');
        CREATE TABLE person (pid INT PRIMARY KEY, pname VARCHAR(20),
                             cid INT, age INT);
        INSERT INTO person VALUES
            (10, 'alice', 1, 30), (11, 'bob', 1, 40),
            (12, 'carol', 2, 35), (13, 'dave', NULL, 50);
        """
    )
    return database


@pytest.fixture
def ex(db):
    return Executor(db)


class TestDDL:
    def test_create_builds_schema(self, db):
        rel = db.schema.relation("person")
        assert rel.attribute_names == ("pid", "pname", "cid", "age")
        assert rel.is_key(["pid"])

    def test_create_table_level_unique(self):
        database = Database()
        Executor(database).run(
            "CREATE TABLE h (no INT, d DATE, UNIQUE (no, d))"
        )
        assert database.schema.relation("h").is_key(["no", "d"])

    def test_drop_table(self, ex, db):
        ex.run("DROP TABLE city")
        assert "city" not in db.schema

    def test_insert_null_by_keyword(self, db):
        assert db.table("person")[3]["cid"] is NULL


class TestProjectionsAndFilters:
    def test_simple_projection(self, ex):
        result = ex.run("SELECT pname FROM person WHERE age > 35")
        assert sorted(result.column(0)) == ["bob", "dave"]

    def test_star_single_table(self, ex):
        result = ex.run("SELECT * FROM city")
        assert result.columns == ["cid", "cname"]
        assert len(result) == 3

    def test_null_comparison_filters_row(self, ex):
        # dave has NULL cid: cid = 1 is UNKNOWN, row dropped
        result = ex.run("SELECT pname FROM person WHERE cid = 1")
        assert sorted(result.column(0)) == ["alice", "bob"]

    def test_is_null(self, ex):
        result = ex.run("SELECT pname FROM person WHERE cid IS NULL")
        assert result.column(0) == ["dave"]

    def test_distinct(self, ex):
        result = ex.run("SELECT DISTINCT cid FROM person WHERE cid IS NOT NULL")
        assert sorted(result.column(0)) == [1, 2]

    def test_order_by_desc(self, ex):
        result = ex.run("SELECT pname FROM person ORDER BY pname DESC")
        assert result.column(0) == ["dave", "carol", "bob", "alice"]

    def test_or_predicate(self, ex):
        result = ex.run(
            "SELECT pname FROM person WHERE age = 30 OR age = 50"
        )
        assert sorted(result.column(0)) == ["alice", "dave"]


class TestJoins:
    def test_cross_with_where(self, ex):
        result = ex.run(
            "SELECT pname, cname FROM person, city WHERE person.cid = city.cid"
        )
        assert sorted(result.rows) == [
            ("alice", "Lyon"), ("bob", "Lyon"), ("carol", "Paris"),
        ]

    def test_join_on(self, ex):
        result = ex.run(
            "SELECT pname FROM person p JOIN city c ON p.cid = c.cid "
            "WHERE c.cname = 'Lyon'"
        )
        assert sorted(result.column(0)) == ["alice", "bob"]

    def test_unqualified_ambiguous_column_rejected(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT cid FROM person, city")

    def test_duplicate_binding_rejected(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT 1 FROM person p, city p")

    def test_self_join_via_aliases(self, ex):
        result = ex.run(
            "SELECT a.pname, b.pname FROM person a, person b "
            "WHERE a.cid = b.cid AND a.age < b.age"
        )
        assert result.rows == [("alice", "bob")]


class TestSubqueries:
    def test_in_subquery(self, ex):
        result = ex.run(
            "SELECT cname FROM city WHERE cid IN (SELECT cid FROM person)"
        )
        assert sorted(result.column(0)) == ["Lyon", "Paris"]

    def test_not_in_with_nulls_is_empty(self, ex):
        # person.cid contains NULL -> NOT IN yields UNKNOWN for misses
        result = ex.run(
            "SELECT cname FROM city WHERE cid NOT IN (SELECT cid FROM person)"
        )
        assert result.rows == []

    def test_correlated_exists(self, ex):
        result = ex.run(
            "SELECT cname FROM city c WHERE EXISTS "
            "(SELECT * FROM person p WHERE p.cid = c.cid AND p.age > 35)"
        )
        assert result.column(0) == ["Lyon"]

    def test_scalar_subquery(self, ex):
        result = ex.run(
            "SELECT pname FROM person WHERE age = (SELECT MAX(age) FROM person)"
        )
        assert result.column(0) == ["dave"]

    def test_scalar_subquery_multiple_rows_rejected(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT pname FROM person WHERE age = (SELECT age FROM person)")


class TestAggregates:
    def test_count_star(self, ex):
        assert ex.run("SELECT COUNT(*) FROM person").scalar() == 4

    def test_count_distinct_skips_nulls(self, ex):
        # the paper's ||r[X]|| primitive
        assert ex.run("SELECT COUNT(DISTINCT cid) FROM person").scalar() == 2

    def test_count_column_skips_nulls(self, ex):
        assert ex.run("SELECT COUNT(cid) FROM person").scalar() == 3

    def test_min_max_sum_avg(self, ex):
        assert ex.run("SELECT MIN(age) FROM person").scalar() == 30
        assert ex.run("SELECT MAX(age) FROM person").scalar() == 50
        assert ex.run("SELECT SUM(age) FROM person").scalar() == 155
        assert ex.run("SELECT AVG(age) FROM person").scalar() == pytest.approx(38.75)

    def test_aggregate_over_empty_is_null(self, ex):
        assert ex.run("SELECT MAX(age) FROM person WHERE age > 99").scalar() is NULL

    def test_multiple_aggregates(self, ex):
        result = ex.run("SELECT COUNT(*), MAX(age) FROM person")
        assert result.rows == [(4, 50)]


class TestBooleans:
    def test_boolean_column_round_trip(self):
        database = Database()
        executor = Executor(database)
        executor.run_script(
            """
            CREATE TABLE flags (k INT PRIMARY KEY, active BOOLEAN);
            INSERT INTO flags VALUES (1, TRUE), (2, FALSE), (3, NULL);
            """
        )
        result = executor.run("SELECT k FROM flags WHERE active = TRUE")
        assert result.column(0) == [1]
        result = executor.run("SELECT k FROM flags WHERE active = FALSE")
        assert result.column(0) == [2]
        # NULL is neither
        result = executor.run("SELECT k FROM flags WHERE active IS NULL")
        assert result.column(0) == [3]


class TestIntersect:
    def test_intersect(self, ex):
        result = ex.run(
            "SELECT cid FROM person WHERE cid IS NOT NULL "
            "INTERSECT SELECT cid FROM city"
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_intersect_arity_mismatch_rejected(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT cid, cname FROM city INTERSECT SELECT cid FROM city")


class TestErrors:
    def test_unknown_table(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT a FROM ghost")

    def test_unknown_column(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT ghost FROM person")

    def test_scalar_on_multirow_result(self, ex):
        result = ex.run("SELECT pname FROM person")
        with pytest.raises(SQLExecutionError):
            result.scalar()
