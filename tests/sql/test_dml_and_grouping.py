"""The dialect extensions: GROUP BY / HAVING, UPDATE, DELETE."""

import pytest

from repro.exceptions import SQLExecutionError, SQLParseError
from repro.relational import Database, NULL
from repro.sql import Executor, ast, format_statement
from repro.sql.parser import parse_sql


@pytest.fixture
def db():
    database = Database()
    Executor(database).run_script(
        """
        CREATE TABLE sale (tid INT PRIMARY KEY, store INT, amount NUMBER);
        INSERT INTO sale VALUES
            (1, 10, 5.0), (2, 10, 9.0), (3, 11, 2.0),
            (4, 12, NULL), (5, 11, 7.0);
        """
    )
    return database


@pytest.fixture
def ex(db):
    return Executor(db)


class TestGroupByParsing:
    def test_group_by_columns(self):
        stmt = parse_sql("SELECT store, COUNT(*) FROM sale GROUP BY store")
        assert [c.name for c in stmt.group_by] == ["store"]
        assert stmt.having is None

    def test_having_with_aggregate(self):
        stmt = parse_sql(
            "SELECT store FROM sale GROUP BY store HAVING COUNT(*) > 1"
        )
        assert isinstance(stmt.having, ast.Comparison)
        assert isinstance(stmt.having.left, ast.Aggregate)

    def test_round_trip(self):
        sql = "SELECT store, SUM(amount) FROM sale GROUP BY store HAVING COUNT(*) >= 2 ORDER BY store"
        stmt = parse_sql(sql)
        assert format_statement(parse_sql(format_statement(stmt))) == (
            format_statement(stmt)
        )


class TestGroupByExecution:
    def test_grouping_with_aggregates(self, ex):
        result = ex.run(
            "SELECT store, COUNT(*), SUM(amount) FROM sale "
            "GROUP BY store ORDER BY store"
        )
        assert result.rows == [(10, 2, 14.0), (11, 2, 9.0), (12, 1, NULL)]

    def test_having_filters_groups(self, ex):
        result = ex.run(
            "SELECT store FROM sale GROUP BY store HAVING COUNT(*) >= 2 "
            "ORDER BY store"
        )
        assert result.rows == [(10,), (11,)]

    def test_having_on_aggregate_value(self, ex):
        result = ex.run(
            "SELECT store FROM sale GROUP BY store HAVING SUM(amount) > 10"
        )
        assert result.rows == [(10,)]

    def test_count_column_skips_null_per_group(self, ex):
        result = ex.run(
            "SELECT store, COUNT(amount) FROM sale GROUP BY store ORDER BY store"
        )
        assert result.rows == [(10, 2), (11, 2), (12, 0)]

    def test_ungrouped_item_rejected(self, ex):
        with pytest.raises(SQLExecutionError):
            ex.run("SELECT amount FROM sale GROUP BY store")

    def test_qualified_grouping_column(self, ex):
        result = ex.run(
            "SELECT s.store, MAX(s.amount) FROM sale s GROUP BY s.store "
            "ORDER BY store"
        )
        assert result.rows[0] == (10, 9.0)


class TestUpdate:
    def test_parse(self):
        stmt = parse_sql("UPDATE sale SET amount = 0, store = 99 WHERE tid = 1")
        assert stmt.table == "sale"
        assert [a.column for a in stmt.assignments] == ["amount", "store"]
        assert stmt.where is not None

    def test_update_matching_rows(self, ex, db):
        result = ex.run("UPDATE sale SET amount = 1.5 WHERE store = 10")
        assert result.rows == [(2,)]
        amounts = {
            row["tid"]: row["amount"] for row in db.table("sale")
        }
        assert amounts[1] == 1.5 and amounts[2] == 1.5
        assert amounts[3] == 2.0

    def test_update_null_assignment(self, ex, db):
        ex.run("UPDATE sale SET amount = NULL WHERE tid = 1")
        assert db.table("sale")[0]["amount"] is NULL

    def test_update_without_where_touches_all(self, ex, db):
        result = ex.run("UPDATE sale SET store = 1")
        assert result.rows == [(5,)]

    def test_unknown_null_where_skips_row(self, ex, db):
        # amount IS NULL for tid=4: amount = 2.0 is UNKNOWN there
        result = ex.run("UPDATE sale SET store = 0 WHERE amount = 2.0")
        assert result.rows == [(1,)]

    def test_set_requires_literals(self):
        with pytest.raises(SQLParseError):
            parse_sql("UPDATE sale SET amount = other_col")


class TestDelete:
    def test_parse(self):
        stmt = parse_sql("DELETE FROM sale WHERE store = 10")
        assert stmt.table == "sale"

    def test_delete_matching(self, ex, db):
        result = ex.run("DELETE FROM sale WHERE store = 11")
        assert result.rows == [(2,)]
        assert len(db.table("sale")) == 3

    def test_delete_with_subquery(self, ex, db):
        Executor(db).run_script(
            "CREATE TABLE closed (sid INT); INSERT INTO closed VALUES (10), (12);"
        )
        result = ex.run(
            "DELETE FROM sale WHERE store IN (SELECT sid FROM closed)"
        )
        assert result.rows == [(3,)]

    def test_delete_all(self, ex, db):
        ex.run("DELETE FROM sale")
        assert len(db.table("sale")) == 0


class TestExtractionFromDML:
    @pytest.fixture
    def extractor(self):
        from repro.programs import EquiJoinExtractor
        from repro.relational import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema.build("sale", ["tid", "store"], key=["tid"]),
                RelationSchema.build("store", ["sid", "name"], key=["sid"]),
            ]
        )
        return EquiJoinExtractor(schema)

    def test_update_in_subquery_join(self, extractor):
        joins = extractor.extract_from_sql(
            "UPDATE sale SET tid = 0 WHERE store IN (SELECT sid FROM store)"
        )
        assert len(joins) == 1
        assert joins[0].involves("sale") and joins[0].involves("store")

    def test_delete_exists_join(self, extractor):
        joins = extractor.extract_from_sql(
            "DELETE FROM sale WHERE EXISTS "
            "(SELECT * FROM store s WHERE s.sid = sale.store)"
        )
        assert len(joins) == 1

    def test_negated_forms_are_not_joins(self, extractor):
        assert extractor.extract_from_sql(
            "DELETE FROM sale WHERE store NOT IN (SELECT sid FROM store)"
        ) == []

    def test_embedded_update_kept(self):
        from repro.programs.corpus import ApplicationProgram
        from repro.programs.embedded import extract_sql_units

        program = ApplicationProgram(
            "fix.pc", "c",
            "void f(void){ EXEC SQL UPDATE sale SET tid = :v "
            "WHERE store IN (SELECT sid FROM store); }",
        )
        units = extract_sql_units(program)
        assert len(units) == 1
        assert units[0].text.upper().startswith("UPDATE")
