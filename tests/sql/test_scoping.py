"""Alias scoping: shadowing between outer queries and subqueries."""

import pytest

from repro.programs import EquiJoinExtractor
from repro.programs.equijoin import EquiJoin
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.domain import INTEGER
from repro.sql import Executor


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [
            RelationSchema.build("outerr", ["k", "v"], key=["k"],
                                 types={"k": INTEGER, "v": INTEGER}),
            RelationSchema.build("innerr", ["k", "w"], key=["k"],
                                 types={"k": INTEGER, "w": INTEGER}),
        ]
    )
    database = Database(schema)
    database.insert_many("outerr", [[1, 100], [2, 200], [3, 300]])
    database.insert_many("innerr", [[1, 7], [3, 9]])
    return database


class TestExecutorScoping:
    def test_inner_binding_shadows_outer_same_alias(self, db):
        # alias `t` means outerr outside and innerr inside the subquery
        result = Executor(db).run(
            "SELECT t.k FROM outerr t WHERE t.k IN "
            "(SELECT t.k FROM innerr t WHERE t.w > 8)"
        )
        assert result.rows == [(3,)]

    def test_unqualified_column_prefers_inner_scope(self, db):
        # `k` inside the subquery binds to innerr.k, not outerr.k
        result = Executor(db).run(
            "SELECT v FROM outerr WHERE k IN (SELECT k FROM innerr)"
        )
        assert sorted(result.column(0)) == [100, 300]

    def test_correlated_reference_to_outer_alias(self, db):
        result = Executor(db).run(
            "SELECT o.k FROM outerr o WHERE EXISTS "
            "(SELECT * FROM innerr i WHERE i.k = o.k AND i.w = 7)"
        )
        assert result.rows == [(1,)]


class TestExtractorScoping:
    @pytest.fixture
    def extractor(self, db):
        return EquiJoinExtractor(db.schema)

    def test_shadowed_alias_resolves_to_inner_relation(self, extractor):
        joins = extractor.extract_from_sql(
            "SELECT t.v FROM outerr t WHERE t.k IN "
            "(SELECT t.k FROM innerr t)"
        )
        # outer t.k is outerr.k; the subquery projection t.k is innerr.k
        assert joins == [EquiJoin("innerr", ("k",), "outerr", ("k",))]

    def test_correlated_equality_across_scopes(self, extractor):
        joins = extractor.extract_from_sql(
            "SELECT o.v FROM outerr o WHERE EXISTS "
            "(SELECT * FROM innerr i WHERE i.k = o.k)"
        )
        assert joins == [EquiJoin("innerr", ("k",), "outerr", ("k",))]

    def test_three_way_intersect_pairs_consecutively(self, extractor):
        joins = extractor.extract_from_sql(
            "SELECT k FROM outerr INTERSECT SELECT k FROM innerr "
            "INTERSECT SELECT w FROM innerr"
        )
        assert EquiJoin("outerr", ("k",), "innerr", ("k",)) in joins
        assert EquiJoin("innerr", ("k",), "innerr", ("w",)) in joins
