"""SQL parser: statements, predicates, subqueries, DDL/DML."""

import pytest

from repro.exceptions import SQLParseError
from repro.sql import ast
from repro.sql.parser import parse_sql, parse_statements


class TestSelect:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM R")
        assert isinstance(stmt, ast.Select)
        assert [str(i) for i in stmt.items] == ["a", "b"]
        assert stmt.tables[0].name == "R"

    def test_star(self):
        stmt = parse_sql("SELECT * FROM R")
        assert isinstance(stmt.items[0], ast.Star)

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT a FROM R").distinct
        assert not parse_sql("SELECT a FROM R").distinct

    def test_qualified_columns(self):
        stmt = parse_sql("SELECT r.a FROM R r")
        col = stmt.items[0]
        assert col.qualifier == "r"
        assert col.name == "a"

    def test_aliases_with_and_without_as(self):
        stmt = parse_sql("SELECT a FROM R AS x, S y")
        assert stmt.tables[0].alias == "x"
        assert stmt.tables[1].alias == "y"
        assert stmt.tables[1].binding == "y"

    def test_multi_table_from(self):
        stmt = parse_sql("SELECT a FROM R, S, T")
        assert len(stmt.tables) == 3

    def test_where_conjunction_flattened(self):
        stmt = parse_sql("SELECT a FROM R WHERE a = 1 AND b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.And)
        assert len(stmt.where.operands) == 3

    def test_or_and_precedence(self):
        stmt = parse_sql("SELECT a FROM R WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.operands[1], ast.And)

    def test_parenthesized_predicate(self):
        stmt = parse_sql("SELECT a FROM R WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, ast.And)
        assert isinstance(stmt.where.operands[0], ast.Or)

    def test_not_predicate(self):
        stmt = parse_sql("SELECT a FROM R WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Not)

    def test_is_null(self):
        stmt = parse_sql("SELECT a FROM R WHERE b IS NULL AND c IS NOT NULL")
        first, second = stmt.where.operands
        assert isinstance(first, ast.IsNull) and not first.negated
        assert isinstance(second, ast.IsNull) and second.negated

    def test_order_by(self):
        stmt = parse_sql("SELECT a, b FROM R ORDER BY a DESC, b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_join_on(self):
        stmt = parse_sql("SELECT a FROM R r JOIN S s ON r.x = s.y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"
        assert isinstance(stmt.joins[0].condition, ast.Comparison)

    def test_left_join(self):
        stmt = parse_sql("SELECT a FROM R LEFT OUTER JOIN S ON R.x = S.y")
        assert stmt.joins[0].kind == "LEFT"

    def test_hyphenated_column(self):
        stmt = parse_sql("SELECT project-name FROM Assignment")
        assert stmt.items[0].name == "project-name"


class TestSubqueries:
    def test_in_subquery(self):
        stmt = parse_sql("SELECT a FROM R WHERE a IN (SELECT b FROM S)")
        assert isinstance(stmt.where, ast.InSubquery)
        assert not stmt.where.negated

    def test_not_in(self):
        stmt = parse_sql("SELECT a FROM R WHERE a NOT IN (SELECT b FROM S)")
        assert stmt.where.negated

    def test_scalar_subquery(self):
        stmt = parse_sql("SELECT a FROM R WHERE a = (SELECT MAX(b) FROM S)")
        assert isinstance(stmt.where, ast.CompareSubquery)
        assert stmt.where.op == "="

    def test_exists(self):
        stmt = parse_sql(
            "SELECT a FROM R WHERE EXISTS (SELECT * FROM S WHERE S.x = R.a)"
        )
        assert isinstance(stmt.where, ast.ExistsSubquery)

    def test_not_exists(self):
        stmt = parse_sql("SELECT a FROM R WHERE NOT EXISTS (SELECT * FROM S)")
        assert isinstance(stmt.where, ast.ExistsSubquery)
        assert stmt.where.negated

    def test_nested_nesting(self):
        stmt = parse_sql(
            "SELECT a FROM R WHERE a IN "
            "(SELECT b FROM S WHERE b IN (SELECT c FROM T))"
        )
        inner = stmt.where.query.where
        assert isinstance(inner, ast.InSubquery)


class TestIntersect:
    def test_two_way(self):
        stmt = parse_sql("SELECT a FROM R INTERSECT SELECT b FROM S")
        assert isinstance(stmt, ast.Intersect)
        assert len(stmt.queries) == 2

    def test_three_way(self):
        stmt = parse_sql(
            "SELECT a FROM R INTERSECT SELECT b FROM S INTERSECT SELECT c FROM T"
        )
        assert len(stmt.queries) == 3


class TestAggregates:
    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) FROM R")
        agg = stmt.items[0]
        assert agg.function == "COUNT"
        assert isinstance(agg.argument, ast.Star)

    def test_count_distinct(self):
        stmt = parse_sql("SELECT COUNT(DISTINCT a) FROM R")
        assert stmt.items[0].distinct

    def test_count_distinct_multi(self):
        stmt = parse_sql("SELECT COUNT(DISTINCT a, b) FROM R")
        assert isinstance(stmt.items[0].argument, tuple)

    @pytest.mark.parametrize("fn", ["MIN", "MAX", "SUM", "AVG"])
    def test_other_aggregates(self, fn):
        stmt = parse_sql(f"SELECT {fn}(a) FROM R")
        assert stmt.items[0].function == fn


class TestDDL:
    def test_create_table_with_column_constraints(self):
        stmt = parse_sql(
            "CREATE TABLE Person (id INT PRIMARY KEY, "
            "name VARCHAR(30) NOT NULL, code CHAR(2) UNIQUE)"
        )
        assert stmt.name == "Person"
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].unique

    def test_create_table_with_table_constraints(self):
        stmt = parse_sql(
            "CREATE TABLE H (no INT, date DATE, UNIQUE (no, date), "
            "PRIMARY KEY (no))"
        )
        kinds = [c.kind for c in stmt.constraints]
        assert kinds == ["UNIQUE", "PRIMARY KEY"]
        assert stmt.constraints[0].columns == ("no", "date")

    def test_type_size_suffix_discarded(self):
        stmt = parse_sql("CREATE TABLE R (x NUMERIC(10, 2))")
        assert stmt.columns[0].type_name == "NUMERIC"

    def test_empty_create_rejected(self):
        with pytest.raises(SQLParseError):
            parse_sql("CREATE TABLE R ()")

    def test_drop_table(self):
        stmt = parse_sql("DROP TABLE R")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.name == "R"


class TestDML:
    def test_insert_positional(self):
        stmt = parse_sql("INSERT INTO R VALUES (1, 'x', NULL)")
        assert stmt.rows == ((1, "x", None),)
        assert stmt.columns == ()

    def test_insert_with_columns_multi_row(self):
        stmt = parse_sql("INSERT INTO R (a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_rejects_expressions(self):
        with pytest.raises(SQLParseError):
            parse_sql("INSERT INTO R VALUES (a)")  # column ref, not literal

    def test_boolean_literals(self):
        stmt = parse_sql("INSERT INTO R VALUES (TRUE, FALSE, NULL)")
        assert stmt.rows == ((True, False, None),)

    def test_boolean_in_where(self):
        stmt = parse_sql("SELECT a FROM R WHERE flag = TRUE")
        assert stmt.where.right.value is True


class TestScripts:
    def test_parse_statements_splits_on_semicolons(self):
        stmts = parse_statements(
            "SELECT a FROM R; SELECT b FROM S;;\nSELECT c FROM T"
        )
        assert len(stmts) == 3

    def test_parse_sql_rejects_scripts(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM R; SELECT b FROM S")

    def test_error_carries_position(self):
        with pytest.raises(SQLParseError) as err:
            parse_sql("SELECT FROM R")
        assert "line" in str(err.value)
