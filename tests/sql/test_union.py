"""UNION / UNION ALL: parsing, execution, extraction robustness."""

import pytest

from repro.exceptions import SQLParseError
from repro.relational import Database
from repro.sql import Executor, ast, format_statement
from repro.sql.parser import parse_sql


@pytest.fixture
def ex():
    db = Database()
    executor = Executor(db)
    executor.run_script(
        """
        CREATE TABLE a (x INT);
        CREATE TABLE b (y INT);
        INSERT INTO a VALUES (1), (2), (2);
        INSERT INTO b VALUES (2), (3);
        """
    )
    return executor


class TestParsing:
    def test_union(self):
        stmt = parse_sql("SELECT x FROM a UNION SELECT y FROM b")
        assert isinstance(stmt, ast.Union)
        assert not stmt.all
        assert len(stmt.queries) == 2

    def test_union_all(self):
        stmt = parse_sql("SELECT x FROM a UNION ALL SELECT y FROM b")
        assert stmt.all

    def test_three_way(self):
        stmt = parse_sql(
            "SELECT x FROM a UNION SELECT y FROM b UNION SELECT x FROM a"
        )
        assert len(stmt.queries) == 3

    def test_mixing_set_operators_rejected(self):
        with pytest.raises(SQLParseError):
            parse_sql(
                "SELECT x FROM a UNION SELECT y FROM b INTERSECT SELECT x FROM a"
            )
        with pytest.raises(SQLParseError):
            parse_sql(
                "SELECT x FROM a INTERSECT SELECT y FROM b UNION SELECT x FROM a"
            )

    def test_round_trip(self):
        for sql in (
            "SELECT x FROM a UNION SELECT y FROM b",
            "SELECT x FROM a UNION ALL SELECT y FROM b",
        ):
            stmt = parse_sql(sql)
            assert format_statement(parse_sql(format_statement(stmt))) == (
                format_statement(stmt)
            )


class TestExecution:
    def test_union_deduplicates(self, ex):
        result = ex.run("SELECT x FROM a UNION SELECT y FROM b")
        assert sorted(result.rows) == [(1,), (2,), (3,)]

    def test_union_all_keeps_duplicates(self, ex):
        result = ex.run("SELECT x FROM a UNION ALL SELECT y FROM b")
        assert sorted(result.rows) == [(1,), (2,), (2,), (2,), (3,)]

    def test_arity_mismatch_rejected(self, ex):
        from repro.exceptions import SQLExecutionError

        with pytest.raises(SQLExecutionError):
            ex.run("SELECT x, x FROM a UNION SELECT y FROM b")


class TestExtraction:
    def test_joins_inside_union_branches_found(self):
        from repro.programs import EquiJoinExtractor
        from repro.programs.equijoin import EquiJoin
        from repro.relational import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema.build("R", ["a", "b"], key=["a"]),
                RelationSchema.build("S", ["x", "y"], key=["x"]),
                RelationSchema.build("T", ["p", "q"], key=["p"]),
            ]
        )
        joins = EquiJoinExtractor(schema).extract_from_sql(
            "SELECT b FROM R, S WHERE R.b = S.x "
            "UNION SELECT q FROM T WHERE q IN (SELECT y FROM S)"
        )
        assert EquiJoin("R", ("b",), "S", ("x",)) in joins
        assert EquiJoin("S", ("y",), "T", ("q",)) in joins

    def test_union_itself_is_not_a_join(self):
        from repro.programs import EquiJoinExtractor
        from repro.relational import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema.build("R", ["a"], key=["a"]),
                RelationSchema.build("S", ["x"], key=["x"]),
            ]
        )
        joins = EquiJoinExtractor(schema).extract_from_sql(
            "SELECT a FROM R UNION SELECT x FROM S"
        )
        assert joins == []
