"""BETWEEN and LIKE: parsing, execution, NULL semantics, extraction."""

import pytest

from repro.exceptions import SQLParseError
from repro.relational import Database
from repro.sql import Executor, ast, format_statement
from repro.sql.parser import parse_sql


@pytest.fixture
def ex():
    db = Database()
    executor = Executor(db)
    executor.run_script(
        """
        CREATE TABLE emp (eid INT PRIMARY KEY, name VARCHAR(20), pay INT);
        INSERT INTO emp VALUES
            (1, 'alice', 100), (2, 'bob', 250), (3, 'carol', 400),
            (4, 'dave', NULL), (5, NULL, 300);
        """
    )
    return executor


class TestBetween:
    def test_parse_and_round_trip(self):
        stmt = parse_sql("SELECT a FROM r WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)
        assert format_statement(parse_sql(format_statement(stmt))) == (
            format_statement(stmt)
        )

    def test_inclusive_bounds(self, ex):
        result = ex.run("SELECT eid FROM emp WHERE pay BETWEEN 100 AND 300")
        assert sorted(result.column(0)) == [1, 2, 5]

    def test_not_between(self, ex):
        result = ex.run("SELECT eid FROM emp WHERE pay NOT BETWEEN 100 AND 300")
        assert result.column(0) == [3]

    def test_null_value_is_unknown(self, ex):
        # dave's NULL pay: neither BETWEEN nor NOT BETWEEN selects him
        between = ex.run("SELECT eid FROM emp WHERE pay BETWEEN 0 AND 999")
        not_between = ex.run(
            "SELECT eid FROM emp WHERE pay NOT BETWEEN 0 AND 999"
        )
        assert 4 not in between.column(0)
        assert 4 not in not_between.column(0)

    def test_between_in_conjunction(self, ex):
        # the AND inside BETWEEN must not swallow the outer conjunction
        result = ex.run(
            "SELECT eid FROM emp WHERE pay BETWEEN 100 AND 400 AND eid > 2"
        )
        assert sorted(result.column(0)) == [3, 5]


class TestLike:
    def test_parse_requires_string(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM r WHERE a LIKE b")

    def test_percent_wildcard(self, ex):
        result = ex.run("SELECT name FROM emp WHERE name LIKE 'a%'")
        assert result.column(0) == ["alice"]

    def test_underscore_wildcard(self, ex):
        result = ex.run("SELECT name FROM emp WHERE name LIKE '_ob'")
        assert result.column(0) == ["bob"]

    def test_not_like(self, ex):
        result = ex.run("SELECT name FROM emp WHERE name NOT LIKE '%a%'")
        assert result.column(0) == ["bob"]

    def test_null_is_unknown(self, ex):
        result = ex.run("SELECT eid FROM emp WHERE name LIKE '%'")
        assert 5 not in result.column(0)

    def test_regex_metacharacters_are_literal(self, ex):
        ex.run("INSERT INTO emp VALUES (9, 'a.c', 1)")
        result = ex.run("SELECT eid FROM emp WHERE name LIKE 'a.c'")
        assert result.column(0) == [9]
        result2 = ex.run("SELECT eid FROM emp WHERE name LIKE 'a_c'")
        assert 9 in result2.column(0)

    def test_round_trip_with_quote_escape(self):
        stmt = parse_sql("SELECT a FROM r WHERE a LIKE 'it''s%'")
        again = parse_sql(format_statement(stmt))
        assert again.where.pattern == "it's%"


class TestExtractionRobustness:
    def test_joins_next_to_like_between_still_found(self):
        from repro.programs import EquiJoinExtractor
        from repro.relational import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema.build("R", ["a", "b"], key=["a"]),
                RelationSchema.build("S", ["x", "y"], key=["x"]),
            ]
        )
        joins = EquiJoinExtractor(schema).extract_from_sql(
            "SELECT 1 FROM R, S WHERE R.b = S.x AND S.y LIKE 'A%' "
            "AND R.a BETWEEN 1 AND 9"
        )
        assert len(joins) == 1
