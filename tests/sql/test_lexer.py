"""SQL lexer: tokens, comments, strings, hyphenated identifiers."""

import pytest

from repro.exceptions import SQLLexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import EOF, IDENT, KEYWORD, NUMBER, OPERATOR, PUNCT, STRING


def kinds(sql):
    return [t.kind for t in tokenize(sql) if t.kind != EOF]


def values(sql):
    return [t.value for t in tokenize(sql) if t.kind != EOF]


class TestBasics:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == KEYWORD for t in tokens[:3])

    def test_identifiers_keep_case(self):
        assert values("Person hEmployee")[0] == "Person"
        assert values("Person hEmployee")[1] == "hEmployee"

    def test_eof_terminates(self):
        assert tokenize("")[-1].kind == EOF
        assert tokenize("select")[-1].kind == EOF

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestNumbersAndStrings:
    def test_integer_and_decimal(self):
        assert values("42 3.14") == ["42", "3.14"]
        assert kinds("42 3.14") == [NUMBER, NUMBER]

    def test_dot_not_glued_without_digits(self):
        # "a.b" is ident dot ident, not a number
        assert kinds("a.b") == [IDENT, PUNCT, IDENT]

    def test_string_literal(self):
        assert values("'hello world'") == ["hello world"]
        assert kinds("'x'") == [STRING]

    def test_doubled_quote_escape(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLLexError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "Weird Name"


class TestHyphensAndComments:
    def test_hyphenated_identifier(self):
        # the paper's attribute style: project-name, zip-code
        assert values("project-name") == ["project-name"]
        assert kinds("project-name") == [IDENT]

    def test_line_comment_skipped(self):
        assert values("a -- comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLLexError):
            tokenize("/* never closed")

    def test_hyphenated_keyword_is_identifier(self):
        # "select-list" must not lex as the SELECT keyword
        tokens = tokenize("select-list")
        assert tokens[0].kind == IDENT


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>", "!="])
    def test_each_operator(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind == OPERATOR
        assert tokens[1].value == op

    def test_two_char_operators_not_split(self):
        assert values("a <= b") == ["a", "<=", "b"]

    def test_unknown_character_raises(self):
        with pytest.raises(SQLLexError):
            tokenize("a @ b")

    def test_punctuation(self):
        assert kinds("( ) , ; *") == [PUNCT] * 5
