"""Formatter round-trips: AST -> SQL -> same AST."""

import pytest

from repro.sql import format_statement
from repro.sql.parser import parse_sql

ROUND_TRIP_CASES = [
    "SELECT a, b FROM R",
    "SELECT DISTINCT r.a FROM R r, S s WHERE r.x = s.y AND r.z = 1",
    "SELECT COUNT(DISTINCT a) FROM R",
    "SELECT a FROM R WHERE a IN (SELECT b FROM S)",
    "SELECT a FROM R WHERE EXISTS (SELECT * FROM S WHERE S.x = R.a)",
    "SELECT a FROM R INTERSECT SELECT b FROM S",
    "SELECT a FROM R r INNER JOIN S s ON r.x = s.y ORDER BY a DESC",
    "CREATE TABLE Person (id INTEGER PRIMARY KEY, name TEXT NOT NULL)",
    "INSERT INTO R (a, b) VALUES (1, 'x'), (2, NULL)",
    "DROP TABLE R",
    "SELECT a FROM R WHERE b IS NOT NULL",
    "SELECT project-name FROM Assignment WHERE proj = 'P1'",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_CASES)
def test_round_trip(sql):
    first = parse_sql(sql)
    rendered = format_statement(first)
    second = parse_sql(rendered)
    assert format_statement(second) == rendered


def test_pretty_select_is_multiline():
    stmt = parse_sql(
        "SELECT a FROM R, S WHERE R.x = S.y AND R.z = 1 ORDER BY a"
    )
    pretty = format_statement(stmt, pretty=True)
    lines = pretty.splitlines()
    assert lines[0].startswith("SELECT")
    assert any(line.startswith("FROM") for line in lines)
    assert any("AND" in line for line in lines)
    # pretty output still parses to the same statement
    assert format_statement(parse_sql(pretty)) == format_statement(stmt)


def test_pretty_intersect():
    stmt = parse_sql("SELECT a FROM R INTERSECT SELECT b FROM S")
    pretty = format_statement(stmt, pretty=True)
    assert "INTERSECT" in pretty
    assert format_statement(parse_sql(pretty)) == format_statement(stmt)


def test_string_escaping_round_trip():
    stmt = parse_sql("INSERT INTO R VALUES ('it''s')")
    rendered = format_statement(stmt)
    assert parse_sql(rendered).rows == (("it's",),)
