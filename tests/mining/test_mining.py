"""Navigation profiles and dependency relevance ranking (§8)."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.mining import (
    NavigationProfile,
    rank_fds,
    rank_inds,
    relevance_partition,
)
from repro.programs.equijoin import EquiJoin
from repro.programs.extractor import extract_equijoins


class TestNavigationProfile:
    @pytest.fixture
    def profile(self):
        joins = [
            EquiJoin("A", ("x",), "B", ("y",)),
            EquiJoin("A", ("x",), "C", ("z",)),
            EquiJoin("A", ("x",), "B", ("y",)),   # same pair again
        ]
        profile = NavigationProfile()
        profile.add_join(joins[0], "p1.sql")
        profile.add_join(joins[1], "p1.sql")
        profile.add_join(joins[2], "p2.sql")
        return profile

    def test_statement_counts(self, profile):
        assert profile.usage("A", "x").statement_count == 3
        assert profile.usage("B", "y").statement_count == 2
        assert profile.usage("C", "z").statement_count == 1

    def test_program_and_partner_counts(self, profile):
        usage = profile.usage("A", "x")
        assert usage.program_count == 2
        assert usage.partner_count == 2          # B.y and C.z

    def test_unknown_attribute_is_zero(self, profile):
        assert profile.attribute_weight("Z", "nope") == 0.0

    def test_pair_statements(self, profile):
        assert profile.pair_statements(("A", "x"), ("B", "y")) == 2
        assert profile.pair_statements(("B", "y"), ("A", "x")) == 2

    def test_set_weight_is_min_member(self, profile):
        # {x} alone is heavy; adding an unnavigated attr drops to zero
        assert profile.set_weight("A", ("x",)) > 0
        assert profile.set_weight("A", ("x", "ghost")) == 0.0

    def test_navigated_attributes_sorted(self, profile):
        names = [(u.relation, u.attribute) for u in profile.navigated_attributes()]
        assert names[0] == ("A", "x")

    def test_from_report(self, paper_db, paper_corpus):
        report = extract_equijoins(paper_corpus, paper_db.schema)
        profile = NavigationProfile.from_report(report)
        assert profile.usage("HEmployee", "no").statement_count >= 3
        assert profile.attribute_weight("Person", "zip-code") == 0.0


class TestRanking:
    def test_navigated_fd_outranks_integrity_constraint(self, paper_db, paper_corpus):
        """The §5 selectivity argument, as a ranking: proj -> project-name
        (navigated) must outrank zip-code -> state (not navigated)."""
        report = extract_equijoins(paper_corpus, paper_db.schema)
        profile = NavigationProfile.from_report(report)
        fds = [
            FD("Person", ("zip-code",), ("state",)),
            FD("Assignment", ("proj",), ("project-name",)),
            FD("Department", ("emp",), ("skill", "proj")),
        ]
        ranked = rank_fds(fds, profile)
        order = [r.dependency for r in ranked]
        assert order[-1] == fds[0]               # zip-code last
        assert ranked[-1].score == 0.0
        assert ranked[0].score > 0

    def test_lattice_output_triage(self, paper_db, paper_corpus):
        """Rank everything a lattice search finds: all the method-elicited
        FDs land in the navigated partition, zip-code in the other."""
        from repro.baselines import NaiveFDBaseline

        report = extract_equijoins(paper_corpus, paper_db.schema)
        profile = NavigationProfile.from_report(report)
        found = NaiveFDBaseline(paper_db, max_lhs_size=1).run()
        ranked = rank_fds(found.non_key_fds(paper_db), profile)
        navigated, unnavigated = relevance_partition(ranked)
        navigated_deps = {r.dependency for r in navigated}
        assert any(
            fd.relation == "Assignment" and "proj" in fd.lhs
            for fd in navigated_deps
        )
        assert all(
            "zip-code" not in fd.lhs for fd in navigated_deps
        )
        assert len(navigated) < len(ranked)      # the triage cuts real noise

    def test_rank_inds_by_pair_evidence(self):
        profile = NavigationProfile()
        profile.add_join(EquiJoin("A", ("x",), "B", ("y",)), "p.sql")
        profile.add_join(EquiJoin("A", ("x",), "B", ("y",)), "q.sql")
        profile.add_join(EquiJoin("C", ("u",), "D", ("v",)), "p.sql")
        inds = [
            IND("C", ("u",), "D", ("v",)),
            IND("A", ("x",), "B", ("y",)),
            IND("E", ("m",), "F", ("n",)),       # never navigated
        ]
        ranked = rank_inds(inds, profile)
        assert ranked[0].dependency == inds[1]
        assert ranked[-1].dependency == inds[2]
        assert ranked[-1].score == 0.0

    def test_ranks_are_one_based_and_dense(self):
        profile = NavigationProfile.from_joins(
            [EquiJoin("A", ("x",), "B", ("y",))]
        )
        ranked = rank_fds(
            [FD("A", ("x",), ("p",)), FD("Z", ("q",), ("r",))], profile
        )
        assert [r.rank for r in ranked] == [1, 2]

    def test_deterministic_tiebreak(self):
        profile = NavigationProfile()
        fds = [FD("B", ("b",), ("x",)), FD("A", ("a",), ("x",))]
        first = rank_fds(list(fds), profile)
        second = rank_fds(list(reversed(fds)), profile)
        assert [r.dependency for r in first] == [r.dependency for r in second]
