"""Library hygiene: public API exports resolve and are documented."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.backends",
    "repro.relational",
    "repro.sql",
    "repro.programs",
    "repro.dependencies",
    "repro.core",
    "repro.normalization",
    "repro.eer",
    "repro.workloads",
    "repro.baselines",
    "repro.evaluation",
    "repro.mining",
    "repro.obs",
    "repro.service",
    "repro.storage",
]


def all_modules():
    out = []
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(modinfo.name)
    return out


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_unique(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for name in all_modules():
            module = importlib.import_module(name)
            assert module.__doc__ and module.__doc__.strip(), name

    def test_public_classes_and_functions_documented(self):
        missing = []
        for name in all_modules():
            module = importlib.import_module(name)
            for attr_name in getattr(module, "__all__", []):
                obj = getattr(module, attr_name)
                if getattr(obj, "__module__", "").startswith("repro"):
                    if callable(obj) and not (obj.__doc__ or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, missing


class TestImportGraph:
    def test_every_module_imports_cleanly(self):
        for name in all_modules():
            importlib.import_module(name)

    def test_version_exposed(self):
        assert repro.__version__
