"""Every shipped example runs to completion (smoke + output checks)."""

import os
import runpy


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)          # examples may write artifacts
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch, capsys):
        out = run_example("quickstart.py", tmp_path, monkeypatch, capsys)
        assert "IND-Discovery" in out
        assert "Ass-Dept[dep] << Department[dep]" in out
        assert "figure1.dot" in out
        assert (tmp_path / "figure1.dot").exists()

    def test_legacy_payroll(self, tmp_path, monkeypatch, capsys):
        out = run_example("legacy_payroll.py", tmp_path, monkeypatch, capsys)
        assert "grade(*grade_code" in out
        assert "grade_label='junior'" in out

    def test_synthetic_recovery(self, tmp_path, monkeypatch, capsys):
        out = run_example("synthetic_recovery.py", tmp_path, monkeypatch, capsys)
        assert "recovery scores vs ground truth" in out
        assert "schema recovery" in out

    def test_sql_workbench(self, tmp_path, monkeypatch, capsys):
        out = run_example("sql_workbench.py", tmp_path, monkeypatch, capsys)
        assert "round-trips verified" in out

    def test_migration(self, tmp_path, monkeypatch, capsys):
        out = run_example("migration.py", tmp_path, monkeypatch, capsys)
        assert "referential constraints violated after replay: 0" in out
        assert "RIC matches:     True" in out
