"""Metrics, schema recovery scoring, cost accounting."""

import pytest

from repro.core import DBREPipeline
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.evaluation.counters import cost_report
from repro.evaluation.metrics import (
    PrecisionRecall,
    score_fds,
    score_inds,
    score_refs,
)
from repro.evaluation.schema_match import score_schema_recovery
from repro.relational.attribute import AttributeRef
from repro.workloads.scenario import ScenarioConfig, build_scenario


class TestPrecisionRecall:
    def test_arithmetic(self):
        pr = PrecisionRecall(3, 1, 2)
        assert pr.precision == 0.75
        assert pr.recall == 0.6
        assert pr.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_empty_sets_are_perfect(self):
        pr = PrecisionRecall(0, 0, 0)
        assert pr.precision == 1.0 and pr.recall == 1.0 and pr.f1 == 1.0


class TestFDScoring:
    def test_grouped_rhs_equals_split_rhs(self):
        recovered = [FD("R", ("a",), ("b", "c"))]
        truth = [FD("R", ("a",), ("b",)), FD("R", ("a",), ("c",))]
        pr = score_fds(recovered, truth)
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_partial_recovery(self):
        recovered = [FD("R", ("a",), ("b",))]
        truth = [FD("R", ("a",), ("b", "c"))]
        pr = score_fds(recovered, truth)
        assert pr.precision == 1.0
        assert pr.recall == 0.5

    def test_spurious_fd_costs_precision(self):
        recovered = [FD("R", ("a",), ("b",)), FD("R", ("x",), ("y",))]
        truth = [FD("R", ("a",), ("b",))]
        pr = score_fds(recovered, truth)
        assert pr.precision == 0.5 and pr.recall == 1.0


class TestINDScoring:
    def test_exact_match(self):
        inds = [IND("A", ("x",), "B", ("y",))]
        pr = score_inds(inds, inds)
        assert pr.f1 == 1.0

    def test_closure_credit(self):
        truth = [IND("A", ("x",), "B", ("y",)), IND("B", ("y",), "C", ("z",))]
        recovered = truth + [IND("A", ("x",), "C", ("z",))]   # implied
        with_credit = score_inds(recovered, truth)
        without = score_inds(recovered, truth, closure_credit=False)
        assert with_credit.false_positives == 0
        assert without.false_positives == 1

    def test_refs_scoring(self):
        truth = [AttributeRef("R", "a")]
        pr = score_refs([AttributeRef("R", "a"), AttributeRef("R", "b")], truth)
        assert pr.true_positives == 1 and pr.false_positives == 1


class TestSchemaRecovery:
    @pytest.fixture(scope="class")
    def run(self):
        scenario = build_scenario(ScenarioConfig(seed=7))
        result = DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )
        return scenario, result

    def test_clean_scenario_recovers_everything(self, run):
        scenario, result = run
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        assert recovery.missing == []
        assert recovery.recovery_rate == 1.0

    def test_merged_parents_found_as_split_relations(self, run):
        scenario, result = run
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        for merge in scenario.truth.merges:
            assert merge.parent in recovery.recovered

    def test_missing_reported(self, run):
        scenario, result = run
        # score against a database lacking the split relations
        recovery = score_schema_recovery(scenario.truth, scenario.database)
        assert recovery.missing or recovery.partial


class TestCostReport:
    def test_cost_report_from_pipeline(self, paper_db, paper_corpus, paper_expert):
        pipeline = DBREPipeline(paper_db, paper_expert)
        result = pipeline.run(corpus=paper_corpus)
        # reconstruct from the recording expert the pipeline wrapped
        report = cost_report_from(result, pipeline)
        assert report.expert_decisions == result.expert_decisions
        assert report.expert_by_kind.get("nei") == 1
        assert report.expert_by_kind.get("hidden") == 3


def cost_report_from(result, pipeline):
    from repro.relational.database import QueryCounter

    counter = QueryCounter()
    counter.count_distinct = result.extension_queries  # aggregate only
    return cost_report(counter, pipeline.expert)
