"""IND-Discovery (§6.1): every branch of the algorithm."""

import pytest

from repro.core.expert import (
    ConceptualizeIntersection,
    Expert,
    ForceInclusion,
    IgnoreIntersection,
    ScriptedExpert,
)
from repro.core.ind_discovery import INDDiscovery, discover_inds
from repro.dependencies.ind import InclusionDependency as IND
from repro.programs.equijoin import EquiJoin
from repro.relational.database import Database
from repro.relational.domain import INTEGER
from repro.relational.schema import DatabaseSchema, RelationSchema


def two_column_db(left_values, right_values) -> Database:
    """Two single-attribute relations holding the given int values."""
    schema = DatabaseSchema(
        [
            RelationSchema.build("L", ["a"], types={"a": INTEGER}),
            RelationSchema.build("R", ["b"], types={"b": INTEGER}),
        ]
    )
    db = Database(schema)
    db.insert_many("L", [[v] for v in left_values])
    db.insert_many("R", [[v] for v in right_values])
    return db


JOIN = EquiJoin("L", ("a",), "R", ("b",))


class TestCaseEmpty:
    def test_disjoint_sides_elicit_nothing(self):
        db = two_column_db([1, 2], [3, 4])
        result = discover_inds(db, [JOIN])
        assert result.inds == []
        assert result.outcomes[0].case == "empty"


class TestCaseInclusion:
    def test_left_in_right(self):
        db = two_column_db([1, 2], [1, 2, 3])
        result = discover_inds(db, [JOIN])
        assert result.inds == [IND("L", ("a",), "R", ("b",))]
        assert result.outcomes[0].case == "inclusion"

    def test_right_in_left(self):
        db = two_column_db([1, 2, 3], [1, 2])
        result = discover_inds(db, [JOIN])
        assert result.inds == [IND("R", ("b",), "L", ("a",))]

    def test_equal_sides_elicit_both_directions(self):
        # the algorithm's two non-exclusive ifs: N_k = N_l = N_kl
        db = two_column_db([1, 2], [1, 2])
        result = discover_inds(db, [JOIN])
        assert IND("L", ("a",), "R", ("b",)) in result.inds
        assert IND("R", ("b",), "L", ("a",)) in result.inds


class TestNEICases:
    @pytest.fixture
    def nei_db(self):
        return two_column_db([1, 2, 3], [2, 3, 4, 5])

    def test_default_expert_ignores(self, nei_db):
        result = discover_inds(nei_db, [JOIN])
        assert result.inds == []
        assert result.outcomes[0].decision == "ignore"

    def test_force_left_in_right(self, nei_db):
        expert = ScriptedExpert({f"nei:{JOIN!r}": ForceInclusion("left_in_right")})
        result = discover_inds(nei_db, [JOIN], expert)
        assert result.inds == [IND("L", ("a",), "R", ("b",))]
        assert result.outcomes[0].decision == "force"

    def test_force_right_in_left(self, nei_db):
        expert = ScriptedExpert({f"nei:{JOIN!r}": ForceInclusion("right_in_left")})
        result = discover_inds(nei_db, [JOIN], expert)
        assert result.inds == [IND("R", ("b",), "L", ("a",))]

    def test_conceptualize_creates_populated_relation(self, nei_db):
        expert = ScriptedExpert({f"nei:{JOIN!r}": ConceptualizeIntersection("Common")})
        result = discover_inds(nei_db, [JOIN], expert)
        assert result.s_names == ["Common"]
        # both link INDs elicited
        assert IND("Common", ("a",), "L", ("a",)) in result.inds
        assert IND("Common", ("a",), "R", ("b",)) in result.inds
        # the new relation holds exactly the intersection, keyed
        table = nei_db.table("Common")
        assert sorted(r["a"] for r in table) == [2, 3]
        assert nei_db.schema.relation("Common").is_key(["a"])

    def test_conceptualize_name_collision_suffixed(self, nei_db):
        expert = ScriptedExpert({f"nei:{JOIN!r}": ConceptualizeIntersection("L")})
        result = discover_inds(nei_db, [JOIN], expert)
        assert result.s_names == ["L_2"]

    def test_nei_counts_passed_to_expert(self, nei_db):
        seen = {}

        class Spy(Expert):
            def decide_nei(self, context):
                seen["counts"] = (context.n_left, context.n_right, context.n_common)
                return IgnoreIntersection()

        discover_inds(nei_db, [JOIN], Spy())
        assert seen["counts"] == (3, 4, 2)


class TestReflexiveJoins:
    def test_reflexive_join_elicits_nothing(self):
        db = two_column_db([1, 2], [])
        join = EquiJoin("L", ("a",), "L", ("a",))
        result = discover_inds(db, [join])
        assert result.inds == []
        assert result.outcomes[0].case == "reflexive"

    def test_reflexive_join_queries_nothing(self):
        db = two_column_db([1, 2], [])
        db.counter.reset()
        discover_inds(db, [EquiJoin("L", ("a",), "L", ("a",))])
        assert db.counter.total() == 0

    def test_self_join_on_different_attributes_still_processed(self):
        schema = DatabaseSchema(
            [RelationSchema.build("R", ["x", "y"], types={"x": INTEGER, "y": INTEGER})]
        )
        db = Database(schema)
        db.insert_many("R", [[1, 1], [2, 1]])
        result = discover_inds(db, [EquiJoin("R", ("y",), "R", ("x",))])
        # y values {1} ⊆ x values {1, 2}: a genuine self-referencing IND
        assert result.inds == [IND("R", ("y",), "R", ("x",))]


class TestDeterminismAndDedup:
    def test_duplicate_joins_processed_once(self):
        db = two_column_db([1], [1, 2])
        result = discover_inds(db, [JOIN, JOIN])
        assert len(result.outcomes) == 1

    def test_outcomes_sorted_by_join(self, paper_db, paper_q, paper_expert):
        result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        keys = [o.join.sort_key() for o in result.outcomes]
        assert keys == sorted(keys)


class TestPaperExample:
    def test_paper_ind_set(self, paper_db, paper_q, paper_expert):
        from repro.workloads.paper_example import PAPER_EXPECTED

        result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        assert set(result.inds) == set(PAPER_EXPECTED.inds)
        assert result.s_names == ["Ass-Dept"]

    def test_paper_counts_shape(self, paper_db, paper_q, paper_expert):
        # the 2200/1550/1550 shape, scaled: inclusion on HEmployee/Person
        result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        outcome = next(
            o for o in result.outcomes if o.join.involves("Person")
        )
        assert outcome.case == "inclusion"
        assert outcome.n_left == 15 and outcome.n_right == 22

    def test_paper_nei_shape(self, paper_db, paper_q, paper_expert):
        result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        outcome = next(
            o
            for o in result.outcomes
            if o.join == EquiJoin("Assignment", ("dep",), "Department", ("dep",))
        )
        assert outcome.case == "nei"
        assert outcome.decision == "conceptualize"
        assert (outcome.n_left, outcome.n_right, outcome.n_common) == (9, 8, 6)
