"""The end-to-end pipeline: wiring, instrumentation, input validation."""

import pytest

from repro.core import DBREPipeline
from repro.core.expert import AutoExpert


class TestInputs:
    def test_needs_exactly_one_source_of_q(self, paper_db, paper_corpus, paper_q):
        pipeline = DBREPipeline(paper_db)
        with pytest.raises(ValueError):
            pipeline.run()
        with pytest.raises(ValueError):
            pipeline.run(corpus=paper_corpus, equijoins=paper_q)

    def test_equijoins_path_equals_corpus_path(
        self, paper_db, paper_corpus, paper_q, paper_expert
    ):
        from repro.core import ScriptedExpert
        from repro.workloads.paper_example import paper_expert_script

        by_corpus = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        by_q = DBREPipeline(
            paper_db, ScriptedExpert(paper_expert_script())
        ).run(equijoins=paper_q)
        assert set(by_corpus.inds) == set(by_q.inds)
        assert set(by_corpus.fds) == set(by_q.fds)
        assert set(by_corpus.ric) == set(by_q.ric)


class TestNonDestructive:
    def test_original_database_untouched(self, paper_db, paper_corpus, paper_expert):
        before = {r.name: tuple(r.attribute_names) for r in paper_db.schema}
        DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        after = {r.name: tuple(r.attribute_names) for r in paper_db.schema}
        assert before == after
        assert "Employee" not in paper_db.schema

    def test_restructured_is_a_new_database(self, paper_db, paper_corpus, paper_expert):
        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        assert result.restructured is not paper_db
        assert "Employee" in result.restructured.schema


class TestInstrumentation:
    def test_counts_populated(self, paper_db, paper_corpus, paper_expert):
        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        assert result.extension_queries > 0
        assert result.expert_decisions > 0

    def test_translate_can_be_skipped(self, paper_db, paper_corpus, paper_expert):
        result = DBREPipeline(paper_db, paper_expert).run(
            corpus=paper_corpus, translate=False
        )
        assert result.eer is None
        assert result.ric      # restruct still ran

    def test_translation_notes_exposed(self, paper_db, paper_corpus, paper_expert):
        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        assert any("is-a" in note for note in result.translation_notes)
        assert any(
            "relationship-type" in note for note in result.translation_notes
        )

    def test_k_n_computed_first(self, paper_db, paper_corpus, paper_expert):
        from repro.workloads.paper_example import PAPER_EXPECTED

        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        assert tuple(result.key_set) == PAPER_EXPECTED.key_set
        assert tuple(result.not_null_set) == PAPER_EXPECTED.not_null_set


class TestAutoExpertRun:
    def test_pipeline_runs_fully_automatic(self, paper_db, paper_corpus):
        """Without any scripted knowledge the pipeline still terminates,
        eliciting only what the data supports unambiguously."""
        result = DBREPipeline(paper_db, AutoExpert()).run(corpus=paper_corpus)
        # the NEI join is ignored (overlap 6/8 < 0.95): 5 INDs minus
        # the conceptualization path
        assert len(result.inds) == 4
        assert result.eer is not None
