"""The expert protocol: defaults, policies, scripting, recording."""

import pytest

from repro.core.expert import (
    AutoExpert,
    ConceptualizeIntersection,
    Expert,
    FDContext,
    ForceInclusion,
    IgnoreIntersection,
    InteractiveExpert,
    NEIContext,
    RecordingExpert,
    ScriptedExpert,
)
from repro.dependencies.fd import FunctionalDependency as FD
from repro.programs.equijoin import EquiJoin
from repro.relational.attribute import AttributeRef


@pytest.fixture
def nei():
    return NEIContext(
        EquiJoin("Assignment", ("dep",), "Department", ("dep",)),
        n_left=9, n_right=8, n_common=6,
    )


class TestContexts:
    def test_overlap(self, nei):
        assert nei.overlap == pytest.approx(6 / 8)

    def test_overlap_zero_guard(self):
        ctx = NEIContext(EquiJoin("A", ("x",), "B", ("y",)), 0, 0, 0)
        assert ctx.overlap == 0.0

    def test_question_keys_are_stable(self, nei):
        assert nei.question_key() == "nei:Assignment[dep] >< Department[dep]"
        fd_ctx = FDContext(FD("R", ("a",), ("b",)), 0.9)
        assert fd_ctx.question_key() == "enforce:R: a -> b"

    def test_force_direction_validated(self):
        with pytest.raises(ValueError):
            ForceInclusion("sideways")


class TestBaseExpert:
    def test_cautious_defaults(self, nei):
        e = Expert()
        assert isinstance(e.decide_nei(nei), IgnoreIntersection)
        assert not e.enforce_fd(FDContext(FD("R", "a", "b"), 0.9))
        assert e.validate_fd(FD("R", "a", "b"))
        assert not e.conceptualize_hidden_object(AttributeRef("R", "a"))

    def test_default_names_unique(self):
        e = Expert()
        name = e.name_hidden_object(AttributeRef("R", "a"), ("A-Object",))
        assert name  # non-empty, and distinct from taken names
        fd_name = e.name_fd_relation(FD("R", "a", "b"), ("R-a",))
        assert fd_name != "R-a"


class TestAutoExpert:
    def test_high_overlap_forces_smaller_into_larger(self, nei):
        e = AutoExpert(force_threshold=0.7)
        decision = e.decide_nei(nei)
        assert isinstance(decision, ForceInclusion)
        # right side (8 distinct) is smaller -> right into left
        assert decision.direction == "right_in_left"

    def test_low_overlap_ignored(self, nei):
        e = AutoExpert(force_threshold=0.99)
        assert isinstance(e.decide_nei(nei), IgnoreIntersection)

    def test_conceptualize_band(self, nei):
        e = AutoExpert(
            force_threshold=0.99, conceptualize=True, conceptualize_threshold=0.5
        )
        decision = e.decide_nei(nei)
        assert isinstance(decision, ConceptualizeIntersection)
        assert decision.name

    def test_hidden_flag(self):
        assert AutoExpert(conceptualize_hidden=True).conceptualize_hidden_object(
            AttributeRef("R", "a")
        )


class TestScriptedExpert:
    def test_scripted_answers_used(self, nei):
        e = ScriptedExpert({nei.question_key(): ConceptualizeIntersection("X")})
        assert e.decide_nei(nei) == ConceptualizeIntersection("X")
        assert not e.unmatched

    def test_fallback_and_unmatched_log(self, nei):
        e = ScriptedExpert({})
        assert isinstance(e.decide_nei(nei), IgnoreIntersection)
        assert e.unmatched == [nei.question_key()]

    def test_all_question_kinds(self):
        fd = FD("R", ("a",), ("b",))
        ref = AttributeRef("R", "a")
        e = ScriptedExpert(
            {
                f"enforce:{fd!r}": True,
                f"validate:{fd!r}": False,
                f"hidden:{ref!r}": True,
                f"name_hidden:{ref!r}": "Thing",
                f"name_fd:{fd!r}": "Split",
            }
        )
        assert e.enforce_fd(FDContext(fd, 0.5))
        assert not e.validate_fd(fd)
        assert e.conceptualize_hidden_object(ref)
        assert e.name_hidden_object(ref, ()) == "Thing"
        assert e.name_fd_relation(fd, ()) == "Split"


class TestRecordingExpert:
    def test_decisions_counted_namings_not(self, nei):
        inner = AutoExpert(force_threshold=0.5)
        rec = RecordingExpert(inner)
        rec.decide_nei(nei)
        rec.validate_fd(FD("R", "a", "b"))
        rec.name_fd_relation(FD("R", "a", "b"), ())
        assert rec.decision_count == 2
        assert len(rec.log) == 3
        kinds = [i.kind for i in rec.log]
        assert kinds == ["nei", "validate", "naming"]


class TestSessionReplay:
    def test_to_script_round_trip(self, nei):
        """A recorded session replays identically through ScriptedExpert."""
        original = RecordingExpert(AutoExpert(force_threshold=0.5))
        fd = FD("R", ("a",), ("b",))
        ref = AttributeRef("R", "a")
        first_answers = (
            original.decide_nei(nei),
            original.validate_fd(fd),
            original.conceptualize_hidden_object(ref),
            original.name_fd_relation(fd, ()),
        )
        replay = ScriptedExpert(original.to_script())
        second_answers = (
            replay.decide_nei(nei),
            replay.validate_fd(fd),
            replay.conceptualize_hidden_object(ref),
            replay.name_fd_relation(fd, ()),
        )
        assert first_answers == second_answers
        assert replay.unmatched == []

    def test_full_pipeline_replay(self, ):
        """An entire paper-example run replays from its own recording."""
        from repro.core import DBREPipeline
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
            paper_program_corpus,
        )

        first_pipeline = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        )
        first = first_pipeline.run(corpus=paper_program_corpus())

        replayed = DBREPipeline(
            build_paper_database(),
            ScriptedExpert(first_pipeline.expert.to_script()),
        ).run(corpus=paper_program_corpus())

        assert replayed.ric == first.ric
        assert replayed.fds == first.fds
        assert [r.name for r in replayed.restructured.schema] == [
            r.name for r in first.restructured.schema
        ]


class TestInteractiveExpert:
    def test_yes_no_loop(self):
        answers = iter(["maybe", "y"])
        e = InteractiveExpert(
            input_fn=lambda _prompt: next(answers), print_fn=lambda _s: None
        )
        assert e.validate_fd(FD("R", "a", "b"))

    def test_nei_conceptualize_flow(self, nei):
        answers = iter(["c", "Ass-Dept"])
        e = InteractiveExpert(
            input_fn=lambda _prompt: next(answers), print_fn=lambda _s: None
        )
        assert e.decide_nei(nei) == ConceptualizeIntersection("Ass-Dept")

    def test_nei_force_and_ignore(self, nei):
        e = InteractiveExpert(
            input_fn=lambda _p: "l", print_fn=lambda _s: None
        )
        assert e.decide_nei(nei) == ForceInclusion("left_in_right")
        e2 = InteractiveExpert(input_fn=lambda _p: "i", print_fn=lambda _s: None)
        assert isinstance(e2.decide_nei(nei), IgnoreIntersection)

    def test_enforce_shows_witnesses(self, capsys):
        lines = []
        e = InteractiveExpert(
            input_fn=lambda _p: "n", print_fn=lines.append
        )
        ctx = FDContext(FD("R", "a", "b"), 0.8, ("t1 / t2",))
        assert not e.enforce_fd(ctx)
        assert any("counterexample" in line for line in lines)
