"""Restruct (§7): hidden-object materialization, FD splits, IND rewriting."""

import pytest

from repro.core.expert import ScriptedExpert
from repro.core.restruct import Restruct, restructure
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    """orders(oid*, cust, cust_city); cust -> cust_city embedded."""
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "orders",
                ["oid", "cust", "cust_city"],
                key=["oid"],
                types={"oid": INTEGER, "cust": INTEGER},
            ),
            RelationSchema.build(
                "invoices", ["iid", "icust"], key=["iid"],
                types={"iid": INTEGER, "icust": INTEGER},
            ),
        ]
    )
    db = Database(schema)
    db.insert_many(
        "orders",
        [[1, 10, "Lyon"], [2, 10, "Lyon"], [3, 11, "Paris"], [4, NULL, NULL]],
    )
    db.insert_many("invoices", [[100, 10], [101, 11]])
    return db


class TestHiddenObjectPass:
    def test_materializes_keyed_relation_with_distinct_values(self, db):
        result = restructure(db, [], [AttributeRef("orders", "cust")], [])
        added = result.added[0]
        assert added.kind == "hidden"
        new_name = added.name
        table = db.table(new_name)
        assert sorted(r["cust"] for r in table) == [10, 11]   # NULL dropped
        assert db.schema.relation(new_name).is_key(["cust"])

    def test_link_ind_added_and_in_ric(self, db):
        result = restructure(db, [], [AttributeRef("orders", "cust")], [])
        name = result.added[0].name
        link = IND("orders", ("cust",), name, ("cust",))
        assert link in result.inds
        assert link in result.ric

    def test_existing_occurrences_redirected(self, db):
        inds = [IND("invoices", ("icust",), "orders", ("cust",))]
        result = restructure(db, [], [AttributeRef("orders", "cust")], inds)
        name = result.added[0].name
        assert IND("invoices", ("icust",), name, ("cust",)) in result.inds
        assert IND("invoices", ("icust",), "orders", ("cust",)) not in result.inds

    def test_composite_hidden_object(self, db):
        ref = AttributeRef("orders", ("cust", "cust_city"))
        result = restructure(db, [], [ref], [])
        name = result.added[0].name
        new_rel = db.schema.relation(name)
        assert new_rel.is_key(["cust", "cust_city"])
        table = db.table(name)
        # distinct non-NULL (cust, city) pairs: (10, Lyon), (11, Paris)
        assert sorted(r.values for r in table) == [
            (10, "Lyon"), (11, "Paris"),
        ]

    def test_expert_names_the_object(self, db):
        expert = ScriptedExpert({"name_hidden:orders.{cust}": "Customer"})
        result = restructure(
            db, [], [AttributeRef("orders", "cust")], [], expert
        )
        assert result.added[0].name == "Customer"
        assert "Customer" in db.schema


class TestFDSplitPass:
    def test_split_moves_rhs_out(self, db):
        fd = FD("orders", ("cust",), ("cust_city",))
        result = restructure(db, [fd], [], [])
        assert db.schema.relation("orders").attribute_names == ("oid", "cust")
        name = result.added[0].name
        new_rel = db.schema.relation(name)
        assert new_rel.attribute_names == ("cust", "cust_city")
        assert new_rel.is_key(["cust"])

    def test_split_extension_is_distinct_pairs(self, db):
        fd = FD("orders", ("cust",), ("cust_city",))
        result = restructure(db, [fd], [], [])
        table = db.table(result.added[0].name)
        assert sorted(r.values for r in table) == [(10, "Lyon"), (11, "Paris")]

    def test_split_is_lossless_on_data(self, db):
        # re-joining the fragments recovers the original non-NULL rows
        original = {
            (r["oid"], r["cust"], r["cust_city"])
            for r in db.table("orders")
            if r["cust"] is not NULL
        }
        fd = FD("orders", ("cust",), ("cust_city",))
        result = restructure(db, [fd], [], [])
        lookup = {
            r["cust"]: r["cust_city"] for r in db.table(result.added[0].name)
        }
        rejoined = {
            (r["oid"], r["cust"], lookup[r["cust"]])
            for r in db.table("orders")
            if r["cust"] is not NULL
        }
        assert rejoined == original

    def test_ind_sides_within_payload_redirected(self, db):
        inds = [IND("invoices", ("icust",), "orders", ("cust",))]
        fd = FD("orders", ("cust",), ("cust_city",))
        result = restructure(db, [fd], [], inds)
        name = result.added[0].name
        assert IND("invoices", ("icust",), name, ("cust",)) in result.inds

    def test_enforced_fd_conflicts_warned(self):
        schema = DatabaseSchema(
            [RelationSchema.build("r", ["k", "a", "b"], key=["k"], types={"k": INTEGER})]
        )
        db = Database(schema)
        db.insert_many("r", [[1, "x", "p"], [2, "x", "q"]])   # a -> b fails
        result = restructure(db, [FD("r", ("a",), ("b",))], [], [])
        assert result.warnings
        table = db.table(result.added[0].name)
        assert len(table) == 1      # first image won


class TestRICComputation:
    def test_ric_keeps_only_key_rhs(self, db):
        inds = [
            IND("invoices", ("icust",), "orders", ("cust",)),   # rhs non-key
            IND("invoices", ("iid",), "orders", ("oid",)),       # rhs key
        ]
        result = restructure(db, [], [], inds)
        assert IND("invoices", ("iid",), "orders", ("oid",)) in result.ric
        assert IND("invoices", ("icust",), "orders", ("cust",)) not in result.ric


class TestPaperExample:
    @pytest.fixture
    def paper_restruct(self, paper_db, paper_q, paper_expert):
        from repro.core.ind_discovery import INDDiscovery
        from repro.core.lhs_discovery import LHSDiscovery
        from repro.core.rhs_discovery import RHSDiscovery

        ind_result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        lhs_result = LHSDiscovery(paper_db.schema, ind_result.s_names).run(
            ind_result.inds
        )
        rhs_result = RHSDiscovery(paper_db, paper_expert).run(
            lhs_result.lhs, lhs_result.hidden
        )
        return Restruct(paper_db, paper_expert).run(
            rhs_result.fds, rhs_result.hidden, ind_result.inds
        )

    def test_paper_schema(self, paper_restruct, paper_db):
        from repro.workloads.paper_example import PAPER_EXPECTED

        got = {
            r.name: tuple(r.attribute_names) for r in paper_db.schema
        }
        assert got == PAPER_EXPECTED.restructured_relations

    def test_paper_keys(self, paper_restruct, paper_db):
        from repro.workloads.paper_example import PAPER_EXPECTED

        got = {
            r.name: tuple(r.primary_key().names) for r in paper_db.schema
        }
        assert got == PAPER_EXPECTED.restructured_keys

    def test_paper_ric(self, paper_restruct):
        from repro.workloads.paper_example import PAPER_EXPECTED

        assert set(paper_restruct.ric) == set(PAPER_EXPECTED.ric)
        assert len(paper_restruct.ric) == 10

    def test_output_is_3nf(self, paper_restruct, paper_db):
        """§7's goal: the restructured schema is in 3NF w.r.t. the
        elicited dependencies (which now all follow from keys)."""
        from repro.normalization import NormalForm, schema_normal_forms

        forms = schema_normal_forms(paper_db.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())

    def test_new_extensions_satisfy_their_inds(self, paper_restruct, paper_db):
        from repro.dependencies.ind_inference import ind_satisfied

        for ind in paper_restruct.ric:
            assert ind_satisfied(paper_db, ind), f"{ind!r} violated"
