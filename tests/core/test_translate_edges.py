"""Translate edge cases: multi-owner weak entities, degradations, mixes."""


from repro.core.translate import Translate, translate
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.schema import DatabaseSchema, RelationSchema


def schema_of(*relations) -> DatabaseSchema:
    return DatabaseSchema(list(relations))


class TestMultiOwnerWeakEntities:
    def test_two_owners_with_discriminator(self):
        # key {a, b, seq}; a references X, b references Y, seq uncovered
        schema = schema_of(
            RelationSchema.build("X", ["xa"], key=["xa"]),
            RelationSchema.build("Y", ["yb"], key=["yb"]),
            RelationSchema.build("W", ["a", "b", "seq", "v"], key=["a", "b", "seq"]),
        )
        eer = translate(
            schema,
            [IND("W", ("a",), "X", ("xa",)), IND("W", ("b",), "Y", ("yb",))],
        )
        weak = eer.entity("W")
        assert weak.weak
        assert weak.owners == ("X", "Y")
        assert weak.discriminator == ("seq",)

    def test_full_partition_beats_weakness(self):
        # same shape without the discriminator: a relationship, not weak
        schema = schema_of(
            RelationSchema.build("X", ["xa"], key=["xa"]),
            RelationSchema.build("Y", ["yb"], key=["yb"]),
            RelationSchema.build("W", ["a", "b", "v"], key=["a", "b"]),
        )
        eer = translate(
            schema,
            [IND("W", ("a",), "X", ("xa",)), IND("W", ("b",), "Y", ("yb",))],
        )
        assert not eer.has_entity("W")
        assert eer.relationship("W").arity == 2


class TestDegradations:
    def test_relationship_participant_missing_degrades(self):
        """A relation whose key is partitioned by references to another
        *relationship* cannot form a leg; it degrades to an entity with a
        warning rather than failing."""
        schema = schema_of(
            RelationSchema.build("A", ["ka"], key=["ka"]),
            RelationSchema.build("B", ["kb"], key=["kb"]),
            # Link is an M:N relationship over A, B
            RelationSchema.build("Link", ["ka", "kb"], key=["ka", "kb"]),
            # Meta references Link's two key parts: its participants
            # would be the relationship Link itself
            RelationSchema.build("Meta", ["ka", "kb", "note"], key=["ka", "kb"]),
        )
        translator = Translate(schema)
        eer = translator.run(
            [
                IND("Link", ("ka",), "A", ("ka",)),
                IND("Link", ("kb",), "B", ("kb",)),
                IND("Meta", ("ka", "kb"), "Link", ("ka", "kb")),
            ]
        )
        # Link is a relationship; Meta referenced it with its whole key,
        # which cannot become an is-a to a relationship
        assert eer.has_relationship("Link")
        assert eer.has_entity("Meta")
        assert translator.notes.warnings

    def test_binary_to_missing_entity_warned(self):
        schema = schema_of(
            RelationSchema.build("A", ["ka"], key=["ka"]),
            RelationSchema.build("B", ["kb"], key=["kb"]),
            RelationSchema.build(
                "Pair", ["ka", "kb", "x"], key=["ka", "kb"]
            ),
            RelationSchema.build("Ref", ["kr", "x"], key=["kr"]),
        )
        translator = Translate(schema)
        eer = translator.run(
            [
                IND("Pair", ("ka",), "A", ("ka",)),
                IND("Pair", ("kb",), "B", ("kb",)),
                # Ref points (non-key lhs) at the relationship Pair
                IND("Ref", ("x",), "Pair", ("x",)),
            ]
        )
        assert eer.has_relationship("Pair")
        assert any("skipped" in w for w in translator.notes.warnings)


class TestMixedConstraints:
    def test_entity_with_both_isa_and_binary(self):
        schema = schema_of(
            RelationSchema.build("Person", ["id"], key=["id"]),
            RelationSchema.build("City", ["c"], key=["c"]),
            RelationSchema.build("Employee", ["no", "home"], key=["no"]),
        )
        eer = translate(
            schema,
            [
                IND("Employee", ("no",), "Person", ("id",)),
                IND("Employee", ("home",), "City", ("c",)),
            ],
        )
        assert eer.supertypes("Employee") == ["Person"]
        assert len(eer.relationships_of("Employee")) == 1

    def test_relation_without_declared_key_stays_entity(self):
        schema = DatabaseSchema()
        schema.add(RelationSchema.build("NoKey", ["a", "b"]))
        eer = translate(schema, [])
        assert eer.has_entity("NoKey")
        assert eer.entity("NoKey").key == ()
