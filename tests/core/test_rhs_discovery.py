"""RHS-Discovery (§6.2.2): pruning rules, extension tests, expert paths."""

import pytest

from repro.core.expert import AutoExpert, Expert, ScriptedExpert
from repro.core.rhs_discovery import RHSDiscovery, discover_rhs
from repro.dependencies.fd import FunctionalDependency as FD
from repro.relational.attribute import AttributeRef
from repro.relational.database import Database
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    """R(k*, f, dep1, dep2, mand!) with f -> dep1 and f -> mand holding."""
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "R",
                ["k", "f", "dep1", "dep2", "mand"],
                key=["k"],
                not_null=["mand"],
                types={"k": INTEGER, "f": INTEGER},
            )
        ]
    )
    db = Database(schema)
    db.insert_many(
        "R",
        [
            [1, 10, "a", "p", "m1"],
            [2, 10, "a", "q", "m1"],
            [3, 11, "b", "p", "m2"],
            [4, NULL, "c", "r", "m3"],
        ],
    )
    return db


REF_F = AttributeRef("R", "f")


class TestPruning:
    def test_key_attributes_pruned(self, db):
        result = discover_rhs(db, [REF_F], [])
        outcome = result.outcomes[0]
        assert "k" in outcome.pruned_keys

    def test_nullable_lhs_prunes_not_null_candidates(self, db):
        # f is nullable -> the not-null attribute mand leaves T
        result = discover_rhs(db, [REF_F], [])
        outcome = result.outcomes[0]
        assert "mand" in outcome.pruned_not_null
        assert "mand" not in outcome.candidates

    def test_not_null_lhs_keeps_not_null_candidates(self):
        schema = DatabaseSchema(
            [
                RelationSchema.build(
                    "R", ["k", "f", "mand"], key=["k"], not_null=["f", "mand"],
                    types={"k": INTEGER, "f": INTEGER},
                )
            ]
        )
        db = Database(schema)
        db.insert_many("R", [[1, 10, "a"], [2, 10, "a"]])
        result = discover_rhs(db, [AttributeRef("R", "f")], [])
        assert "mand" in result.outcomes[0].candidates


class TestElicitation:
    def test_holding_fd_elicited(self, db):
        result = discover_rhs(db, [REF_F], [])
        assert result.fds == [FD("R", ("f",), ("dep1",))]
        assert result.outcomes[0].action == "fd"

    def test_failing_candidate_excluded(self, db):
        result = discover_rhs(db, [REF_F], [])
        assert all("dep2" not in fd.rhs for fd in result.fds)

    def test_expert_can_enforce_failure(self, db):
        expert = ScriptedExpert({"enforce:R: f -> dep2": True})
        result = discover_rhs(db, [REF_F], [], expert)
        assert result.fds == [FD("R", ("f",), ("dep1", "dep2"))]
        assert result.outcomes[0].enforced == ("dep2",)

    def test_expert_can_reject_validation(self, db):
        expert = ScriptedExpert({"validate:R: f -> dep1": False})
        result = discover_rhs(db, [REF_F], [], expert)
        assert result.fds == []
        assert result.outcomes[0].action == "rejected"


class TestPruningAblationFlags:
    def test_disable_key_pruning(self, db):
        step = RHSDiscovery(db, prune_keys=False)
        result = step.run([REF_F], [])
        outcome = result.outcomes[0]
        assert outcome.pruned_keys == ()
        # the key attribute is not-null (unique implies not null), so
        # with a nullable LHS it is now caught by the *other* rule
        assert "k" in outcome.pruned_not_null

    def test_disable_both_rules_tests_everything(self, db):
        step = RHSDiscovery(db, prune_keys=False, prune_not_null=False)
        result = step.run([REF_F], [])
        outcome = result.outcomes[0]
        assert set(outcome.candidates) == {"k", "dep1", "dep2", "mand"}

    def test_disable_not_null_pruning(self, db):
        step = RHSDiscovery(db, prune_not_null=False)
        result = step.run([REF_F], [])
        outcome = result.outcomes[0]
        assert outcome.pruned_not_null == ()
        assert "mand" in outcome.candidates
        # f -> mand holds in the fixture, so the unpruned run widens B
        assert "mand" in next(iter(result.fds)).rhs

    def test_defaults_prune_both(self, db):
        result = RHSDiscovery(db).run([REF_F], [])
        outcome = result.outcomes[0]
        assert outcome.pruned_keys and outcome.pruned_not_null


class TestHiddenObjects:
    @pytest.fixture
    def empty_rhs_db(self):
        """R(k*, f, other): f determines nothing."""
        schema = DatabaseSchema(
            [
                RelationSchema.build(
                    "R", ["k", "f", "other"], key=["k"],
                    types={"k": INTEGER, "f": INTEGER},
                )
            ]
        )
        db = Database(schema)
        db.insert_many("R", [[1, 10, "a"], [2, 10, "b"], [3, 11, "c"]])
        return db

    def test_empty_rhs_default_ignored(self, empty_rhs_db):
        result = discover_rhs(empty_rhs_db, [AttributeRef("R", "f")], [])
        assert result.hidden == []
        assert result.outcomes[0].action == "ignored"

    def test_empty_rhs_conceptualized_on_request(self, empty_rhs_db):
        expert = AutoExpert(conceptualize_hidden=True)
        result = discover_rhs(empty_rhs_db, [AttributeRef("R", "f")], [], expert)
        assert result.hidden == [AttributeRef("R", "f")]
        assert result.outcomes[0].action == "hidden"

    def test_preexisting_hidden_stays_without_question(self, empty_rhs_db):
        asked = []

        class Spy(Expert):
            def conceptualize_hidden_object(self, ref):
                asked.append(ref)
                return False

        result = discover_rhs(
            empty_rhs_db, [], [AttributeRef("R", "f")], Spy()
        )
        assert result.hidden == [AttributeRef("R", "f")]
        assert result.outcomes[0].action == "kept-hidden"
        assert asked == []

    def test_hidden_promoted_to_fd_when_rhs_found(self, db):
        # Assignment.dep-style: in H, but an FD is found -> moves to F
        result = discover_rhs(db, [], [REF_F])
        assert result.fds == [FD("R", ("f",), ("dep1",))]
        assert result.hidden == []


class TestDegenerateCandidates:
    def test_identifier_covering_all_non_key_attrs(self):
        """When A ∪ K = X_i, T is empty: straight to the hidden-object
        question without touching the extension."""
        schema = DatabaseSchema(
            [RelationSchema.build("r", ["k", "f"], key=["k"], types={"k": INTEGER, "f": INTEGER})]
        )
        db = Database(schema)
        db.insert_many("r", [[1, 5], [2, 5]])
        db.counter.reset()
        result = discover_rhs(db, [AttributeRef("r", "f")], [])
        outcome = result.outcomes[0]
        assert outcome.candidates == ()
        assert outcome.action == "ignored"
        assert db.counter.fd_checks == 0

    def test_identifier_equal_to_whole_relation(self):
        schema = DatabaseSchema(
            [RelationSchema.build("r", ["a", "b"], types={"a": INTEGER, "b": INTEGER})]
        )
        db = Database(schema)
        db.insert_many("r", [[1, 2]])
        result = discover_rhs(db, [AttributeRef("r", ("a", "b"))], [])
        assert result.fds == []
        assert result.outcomes[0].candidates == ()


class TestPaperExample:
    def test_paper_f_and_h(self, paper_db, paper_q, paper_expert):
        from repro.core.ind_discovery import INDDiscovery
        from repro.core.lhs_discovery import LHSDiscovery
        from repro.workloads.paper_example import PAPER_EXPECTED

        ind_result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        lhs_result = LHSDiscovery(paper_db.schema, ind_result.s_names).run(
            ind_result.inds
        )
        result = RHSDiscovery(paper_db, paper_expert).run(
            lhs_result.lhs, lhs_result.hidden
        )
        assert set(result.fds) == set(PAPER_EXPECTED.fds)
        assert set(result.hidden) == set(PAPER_EXPECTED.hidden_after_rhs)

    def test_paper_department_narrative(self, paper_db, paper_q, paper_expert):
        """§6.2.2's narration: for Department.emp, dep and location are
        pruned, skill and proj remain and both hold."""
        from repro.core.ind_discovery import INDDiscovery
        from repro.core.lhs_discovery import LHSDiscovery

        ind_result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        lhs_result = LHSDiscovery(paper_db.schema, ind_result.s_names).run(
            ind_result.inds
        )
        result = RHSDiscovery(paper_db, paper_expert).run(
            lhs_result.lhs, lhs_result.hidden
        )
        outcome = next(
            o for o in result.outcomes if o.ref == AttributeRef("Department", "emp")
        )
        assert outcome.pruned_keys == ("dep",)
        assert outcome.pruned_not_null == ("location",)
        assert set(outcome.candidates) == {"skill", "proj"}
        assert set(outcome.accepted) == {"skill", "proj"}
