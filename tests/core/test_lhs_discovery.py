"""LHS-Discovery (§6.2.1): candidate identifiers and hidden objects."""

import pytest

from repro.core.lhs_discovery import LHSDiscovery, discover_lhs
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.attribute import AttributeRef
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema.build("A", ["ka", "x"], key=["ka"]),
            RelationSchema.build("B", ["kb", "y"], key=["kb"]),
            RelationSchema.build("S1", ["v"], key=["v"]),
        ]
    )


class TestPlainINDs:
    def test_both_non_keys_become_lhs(self, schema):
        result = discover_lhs(schema, [], [IND("A", ("x",), "B", ("y",))])
        assert AttributeRef("A", "x") in result.lhs
        assert AttributeRef("B", "y") in result.lhs
        assert result.hidden == []

    def test_key_sides_excluded(self, schema):
        result = discover_lhs(schema, [], [IND("A", ("x",), "B", ("kb",))])
        assert result.lhs == [AttributeRef("A", "x")]

    def test_both_keys_elicit_nothing(self, schema):
        result = discover_lhs(schema, [], [IND("A", ("ka",), "B", ("kb",))])
        assert result.lhs == [] and result.hidden == []

    def test_composite_non_key_subset_of_key(self):
        schema = DatabaseSchema(
            [
                RelationSchema.build("H", ["no", "date", "s"], key=["no", "date"]),
                RelationSchema.build("P", ["id"], key=["id"]),
            ]
        )
        # {no} is a proper subset of the key {no, date}: non-key -> LHS
        result = discover_lhs(schema, [], [IND("H", ("no",), "P", ("id",))])
        assert AttributeRef("H", "no") in result.lhs


class TestSRelations:
    def test_s_ind_with_non_key_rhs_goes_hidden(self, schema):
        result = discover_lhs(
            schema, ["S1"], [IND("S1", ("v",), "A", ("x",))]
        )
        assert result.hidden == [AttributeRef("A", "x")]
        assert result.lhs == []

    def test_s_ind_with_key_rhs_elicits_nothing(self, schema):
        result = discover_lhs(schema, ["S1"], [IND("S1", ("v",), "A", ("ka",))])
        assert result.hidden == [] and result.lhs == []

    def test_s_relation_on_rhs_elicits_nothing(self, schema):
        # an S relation can only appear on the left by construction, but
        # the algorithm must stay total if one shows up on the right
        result = discover_lhs(schema, ["S1"], [IND("A", ("x",), "S1", ("v",))])
        assert result.lhs == [] and result.hidden == []

    def test_hidden_wins_over_lhs(self, schema):
        # A.x appears both in a plain IND (-> LHS) and behind an S
        # relation (-> H); H wins and the sets stay disjoint
        inds = [
            IND("A", ("x",), "B", ("kb",)),
            IND("S1", ("v",), "A", ("x",)),
        ]
        result = discover_lhs(schema, ["S1"], inds)
        assert result.hidden == [AttributeRef("A", "x")]
        assert AttributeRef("A", "x") not in result.lhs


class TestDeterminism:
    def test_outputs_sorted_and_deduped(self, schema):
        inds = [
            IND("B", ("y",), "A", ("ka",)),
            IND("A", ("x",), "B", ("kb",)),
            IND("A", ("x",), "B", ("kb",)),
        ]
        result = discover_lhs(schema, [], inds)
        assert result.lhs == sorted(set(result.lhs), key=lambda r: r.sort_key())


class TestPaperExample:
    def test_paper_lhs_and_h(self, paper_db, paper_q, paper_expert):
        from repro.core.ind_discovery import INDDiscovery
        from repro.workloads.paper_example import PAPER_EXPECTED

        ind_result = INDDiscovery(paper_db, paper_expert).run(paper_q)
        result = LHSDiscovery(paper_db.schema, ind_result.s_names).run(
            ind_result.inds
        )
        assert set(result.lhs) == set(PAPER_EXPECTED.lhs)
        assert set(result.hidden) == set(PAPER_EXPECTED.hidden_after_lhs)
