"""The Markdown session report."""

import pytest

from repro.core import DBREPipeline, session_report
from repro.core.report import SessionReport


@pytest.fixture(scope="module")
def run():
    from repro.core import ScriptedExpert
    from repro.workloads.paper_example import (
        build_paper_database,
        paper_expert_script,
        paper_program_corpus,
    )

    pipeline = DBREPipeline(
        build_paper_database(), ScriptedExpert(paper_expert_script())
    )
    result = pipeline.run(corpus=paper_program_corpus())
    return pipeline, result


class TestSessionReport:
    def test_all_sections_present(self, run):
        pipeline, result = run
        text = session_report(result, pipeline.expert)
        for heading in (
            "# Database reverse-engineering session",
            "## Inputs",
            "## Equi-joins extracted",
            "## Inclusion dependencies",
            "## Functional dependencies",
            "## Restructured schema",
            "## Conceptual schema",
            "## Expert decisions",
            "## Costs",
        ):
            assert heading in text, heading

    def test_artifacts_mentioned(self, run):
        pipeline, result = run
        text = session_report(result, pipeline.expert)
        assert "HEmployee[no] << Person[id]" in text
        assert "Department: emp -> skill, proj" in text
        assert "Ass-Dept" in text
        assert "Manager" in text
        assert "nei:Assignment[dep] >< Department[dep]" in text

    def test_counts_match_result(self, run):
        pipeline, result = run
        text = session_report(result, pipeline.expert)
        assert f"extension queries: {result.extension_queries}" in text
        assert f"expert decisions: {result.expert_decisions}" in text

    def test_custom_title(self, run):
        _pipeline, result = run
        text = session_report(result, title="My audit")
        assert text.startswith("# My audit")

    def test_without_expert_log_section_omitted(self, run):
        _pipeline, result = run
        text = session_report(result)
        assert "## Expert decisions" not in text

    def test_ind_table_shows_counts(self, run):
        pipeline, result = run
        text = SessionReport(result, pipeline.expert).to_markdown()
        # the narrated NEI counts appear in the IND table
        assert "9" in text and "8" in text and "6" in text

    def test_provenance_listed(self, run):
        _pipeline, result = run
        text = session_report(result)
        assert "reports/employee_directory.sql" in text

    def test_translation_notes_in_report(self, run):
        _pipeline, result = run
        text = session_report(result)
        assert "Classification notes:" in text
        assert "is-a link" in text

    def test_report_without_translation(self):
        from repro.core import ScriptedExpert
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
            paper_program_corpus,
        )

        result = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus(), translate=False)
        text = session_report(result)
        assert "## Conceptual schema" not in text
        assert "## Restructured schema" in text
