"""Translate (§7): RIC classification into EER constructs."""

import pytest

from repro.core.translate import Translate, translate
from repro.dependencies.ind import InclusionDependency as IND
from repro.relational.schema import DatabaseSchema, RelationSchema


def schema_of(*relations) -> DatabaseSchema:
    return DatabaseSchema(list(relations))


class TestRuleA_IsA:
    def test_whole_key_lhs_is_isa(self):
        schema = schema_of(
            RelationSchema.build("Person", ["id", "name"], key=["id"]),
            RelationSchema.build("Employee", ["no"], key=["no"]),
        )
        eer = translate(schema, [IND("Employee", ("no",), "Person", ("id",))])
        assert eer.supertypes("Employee") == ["Person"]

    def test_multiple_inheritance(self):
        schema = schema_of(
            RelationSchema.build("A", ["k"], key=["k"]),
            RelationSchema.build("B", ["k"], key=["k"]),
            RelationSchema.build("AB", ["k"], key=["k"]),
        )
        eer = translate(
            schema,
            [IND("AB", ("k",), "A", ("k",)), IND("AB", ("k",), "B", ("k",))],
        )
        assert eer.supertypes("AB") == ["A", "B"]


class TestRuleB_Relationships:
    def test_partitioned_key_becomes_nary_relationship(self):
        schema = schema_of(
            RelationSchema.build("E1", ["a"], key=["a"]),
            RelationSchema.build("E2", ["b"], key=["b"]),
            RelationSchema.build("Link", ["a", "b", "extra"], key=["a", "b"]),
        )
        eer = translate(
            schema,
            [
                IND("Link", ("a",), "E1", ("a",)),
                IND("Link", ("b",), "E2", ("b",)),
            ],
        )
        assert not eer.has_entity("Link")
        rel = eer.relationship("Link")
        assert set(rel.entity_names) == {"E1", "E2"}
        assert rel.attributes == ("extra",)
        assert rel.is_many_to_many()

    def test_partial_cover_becomes_weak_entity(self):
        schema = schema_of(
            RelationSchema.build("Owner", ["o"], key=["o"]),
            RelationSchema.build("Weak", ["o", "disc", "x"], key=["o", "disc"]),
        )
        eer = translate(schema, [IND("Weak", ("o",), "Owner", ("o",))])
        weak = eer.entity("Weak")
        assert weak.weak
        assert weak.owners == ("Owner",)
        assert weak.discriminator == ("disc",)

    def test_ternary_relationship(self):
        schema = schema_of(
            RelationSchema.build("X", ["x"], key=["x"]),
            RelationSchema.build("Y", ["y"], key=["y"]),
            RelationSchema.build("Z", ["z"], key=["z"]),
            RelationSchema.build("T", ["x", "y", "z"], key=["x", "y", "z"]),
        )
        eer = translate(
            schema,
            [
                IND("T", ("x",), "X", ("x",)),
                IND("T", ("y",), "Y", ("y",)),
                IND("T", ("z",), "Z", ("z",)),
            ],
        )
        assert eer.relationship("T").arity == 3


class TestRuleC_BinaryRelationships:
    def test_non_key_lhs_becomes_binary(self):
        schema = schema_of(
            RelationSchema.build("Dept", ["dep", "emp"], key=["dep"]),
            RelationSchema.build("Mgr", ["emp"], key=["emp"]),
        )
        eer = translate(schema, [IND("Dept", ("emp",), "Mgr", ("emp",))])
        rels = eer.relationships_of("Dept")
        assert len(rels) == 1
        rel = rels[0]
        assert set(rel.entity_names) == {"Dept", "Mgr"}
        # many-to-one: the referencing side is N, the referenced side 1
        cards = {p.entity: p.cardinality for p in rel.participants}
        assert cards == {"Dept": "N", "Mgr": "1"}

    def test_binary_name_collision_resolved(self):
        schema = schema_of(
            RelationSchema.build("A", ["k", "x", "y"], key=["k"]),
            RelationSchema.build("B", ["k"], key=["k"]),
        )
        eer = translate(
            schema,
            [IND("A", ("x",), "B", ("k",)), IND("A", ("y",), "B", ("k",))],
        )
        assert len(eer.relationships) == 2
        names = {r.name for r in eer.relationships}
        assert len(names) == 2


class TestValidationAndNotes:
    def test_mutual_inclusion_does_not_cycle(self):
        """Cyclic INDs are out of the paper's scope; the translator keeps
        one direction and records a warning instead of crashing."""
        schema = schema_of(
            RelationSchema.build("A", ["k"], key=["k"]),
            RelationSchema.build("B", ["k"], key=["k"]),
        )
        translator = Translate(schema)
        eer = translator.run(
            [IND("A", ("k",), "B", ("k",)), IND("B", ("k",), "A", ("k",))]
        )
        assert len(eer.isa_links) == 1
        assert any("cycle" in w for w in translator.notes.warnings)
        eer.validate()

    def test_longer_cycle_broken(self):
        schema = schema_of(
            RelationSchema.build("A", ["k"], key=["k"]),
            RelationSchema.build("B", ["k"], key=["k"]),
            RelationSchema.build("C", ["k"], key=["k"]),
        )
        translator = Translate(schema)
        eer = translator.run(
            [
                IND("A", ("k",), "B", ("k",)),
                IND("B", ("k",), "C", ("k",)),
                IND("C", ("k",), "A", ("k",)),
            ]
        )
        assert len(eer.isa_links) == 2
        eer.validate()

    def test_notes_record_classification(self):
        schema = schema_of(
            RelationSchema.build("Person", ["id"], key=["id"]),
            RelationSchema.build("Employee", ["no"], key=["no"]),
        )
        translator = Translate(schema)
        translator.run([IND("Employee", ("no",), "Person", ("id",))])
        assert any("is-a" in note for note in translator.notes.entries)


class TestFigure1:
    @pytest.fixture
    def figure1(self, paper_db, paper_corpus, paper_expert):
        from repro.core import DBREPipeline

        result = DBREPipeline(paper_db, paper_expert).run(corpus=paper_corpus)
        return result.eer

    def test_entities(self, figure1):
        for name in (
            "Person", "Employee", "Manager", "Project",
            "Department", "Other-Dept", "Ass-Dept",
        ):
            assert figure1.has_entity(name), name
            assert not figure1.entity(name).weak

    def test_isa_links(self, figure1):
        assert figure1.supertypes("Employee") == ["Person"]
        assert figure1.supertypes("Manager") == ["Employee"]
        assert figure1.supertypes("Ass-Dept") == ["Department", "Other-Dept"]

    def test_hemployee_weak_entity(self, figure1):
        h = figure1.entity("HEmployee")
        assert h.weak
        assert h.owners == ("Employee",)
        assert h.discriminator == ("date",)

    def test_assignment_ternary_with_date(self, figure1):
        rel = figure1.relationship("Assignment")
        assert set(rel.entity_names) == {"Employee", "Other-Dept", "Project"}
        assert rel.attributes == ("date",)
        assert rel.is_many_to_many()

    def test_binary_relationships(self, figure1):
        dm = [
            r for r in figure1.relationships
            if set(r.entity_names) == {"Department", "Manager"}
        ]
        mp = [
            r for r in figure1.relationships
            if set(r.entity_names) == {"Manager", "Project"}
        ]
        assert len(dm) == 1 and len(mp) == 1

    def test_total_shape(self, figure1):
        assert len(figure1.entities) == 8          # 7 strong + HEmployee
        assert len(figure1.relationships) == 3     # Assignment + 2 binary
        assert len(figure1.isa_links) == 4
