"""E1-E7: every artifact of the paper's worked example, end to end.

Each test mirrors one row of the experiment index in DESIGN.md; the
benchmarks print the same comparisons, these tests assert them.
"""

import pytest

from repro.core import DBREPipeline, ScriptedExpert
from repro.dependencies.fd import FunctionalDependency as FD
from repro.normalization import NormalForm, schema_normal_forms
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


@pytest.fixture(scope="module")
def run():
    db = build_paper_database()
    expert = ScriptedExpert(paper_expert_script())
    result = DBREPipeline(db, expert).run(corpus=paper_program_corpus())
    return result


class TestE1InputSchema:
    def test_k_set(self, run):
        assert tuple(run.key_set) == PAPER_EXPECTED.key_set

    def test_n_set(self, run):
        assert tuple(run.not_null_set) == PAPER_EXPECTED.not_null_set

    def test_normal_form_annotations(self, paper_db):
        deps = [
            FD("Department", ("emp",), ("skill", "proj")),
            FD("Assignment", ("proj",), ("project-name",)),
        ]
        forms = schema_normal_forms(paper_db.schema, deps)
        assert forms["Assignment"] == NormalForm.FIRST
        assert forms["Department"] == NormalForm.SECOND
        assert forms["HEmployee"].at_least(NormalForm.THIRD)
        assert forms["Person"].at_least(NormalForm.THIRD)


class TestE2QueryExtraction:
    def test_q_recovered_from_programs(self, run):
        assert set(run.equijoins) == set(PAPER_EXPECTED.equijoins)
        assert not run.extraction.skipped
        assert not run.extraction.warnings


class TestE3INDDiscovery:
    def test_ind_set(self, run):
        assert set(run.inds) == set(PAPER_EXPECTED.inds)

    def test_s_set(self, run):
        assert tuple(run.ind_result.s_names) == PAPER_EXPECTED.s_relations


class TestE4LHSDiscovery:
    def test_lhs(self, run):
        assert set(run.lhs_result.lhs) == set(PAPER_EXPECTED.lhs)

    def test_h(self, run):
        assert set(run.lhs_result.hidden) == set(PAPER_EXPECTED.hidden_after_lhs)


class TestE5RHSDiscovery:
    def test_f(self, run):
        assert set(run.fds) == set(PAPER_EXPECTED.fds)

    def test_final_h(self, run):
        assert set(run.hidden) == set(PAPER_EXPECTED.hidden_after_rhs)


class TestE6Restruct:
    def test_schema(self, run):
        got = {
            r.name: tuple(r.attribute_names)
            for r in run.restructured.schema
        }
        assert got == PAPER_EXPECTED.restructured_relations

    def test_keys(self, run):
        got = {
            r.name: tuple(r.primary_key().names)
            for r in run.restructured.schema
        }
        assert got == PAPER_EXPECTED.restructured_keys

    def test_ric(self, run):
        assert set(run.ric) == set(PAPER_EXPECTED.ric)
        assert len(run.ric) == len(PAPER_EXPECTED.ric)

    def test_3nf_goal(self, run):
        forms = schema_normal_forms(run.restructured.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())


class TestE7Figure1:
    def test_figure1_structure(self, run):
        eer = run.eer
        # entities
        strong = {e.name for e in eer.entities if not e.weak}
        assert strong == {
            "Person", "Employee", "Manager", "Project",
            "Department", "Other-Dept", "Ass-Dept",
        }
        # weak entity
        weak = [e for e in eer.entities if e.weak]
        assert [e.name for e in weak] == ["HEmployee"]
        assert weak[0].owners == ("Employee",)
        # is-a
        isa = {(l.sub, l.sup) for l in eer.isa_links}
        assert isa == {
            ("Employee", "Person"),
            ("Manager", "Employee"),
            ("Ass-Dept", "Other-Dept"),
            ("Ass-Dept", "Department"),
        }
        # relationships
        ternary = eer.relationship("Assignment")
        assert set(ternary.entity_names) == {"Employee", "Other-Dept", "Project"}
        assert ternary.attributes == ("date",)
        binary_pairs = {
            frozenset(r.entity_names)
            for r in eer.relationships
            if r.arity == 2
        }
        assert binary_pairs == {
            frozenset({"Department", "Manager"}),
            frozenset({"Manager", "Project"}),
        }

    def test_figure1_renders(self, run):
        from repro.eer import render_text, to_dot

        text = render_text(run.eer)
        assert "Assignment" in text
        dot = to_dot(run.eer, "Figure1")
        assert dot.count("shape=diamond") == 3


class TestPaperNarrationDetails:
    def test_zip_state_fd_not_elicited(self, run):
        """§5's key point: zip-code -> state holds in the data but is an
        integrity constraint, not design semantics — never elicited."""
        assert all(
            not (fd.relation == "Person" and "zip-code" in fd.lhs)
            for fd in run.fds
        )
        assert "Person" in run.restructured.schema
        person = run.restructured.schema.relation("Person")
        assert "zip-code" in person.attribute_names    # never split off

    def test_expert_decision_budget(self, run):
        """The method asks few questions: 1 NEI + enforce/validate/hidden
        prompts — all bounded by the sets the equi-joins point at."""
        assert run.expert_decisions <= 15

    def test_rerun_is_deterministic(self):
        first = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus())
        second = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus())
        assert first.ric == second.ric
        assert [r.name for r in first.restructured.schema] == [
            r.name for r in second.restructured.schema
        ]
