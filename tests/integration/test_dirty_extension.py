"""The pipeline over extensions that violate their own declarations.

§4: "No assumption is made on the database extension" — legacy data is
dirty and the method must run anyway.  These tests feed the pipeline an
extension with duplicate keys, NULLs in declared-not-null columns, and
broken references, and check it completes with sane output instead of
refusing.
"""

import pytest

from repro.core import DBREPipeline
from repro.core.expert import AutoExpert, Expert
from repro.programs.corpus import ProgramCorpus
from repro.relational import Database, DatabaseSchema, NULL, RelationSchema
from repro.relational.domain import INTEGER


@pytest.fixture
def dirty_db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "customer", ["cid", "cname"], key=["cid"],
                types={"cid": INTEGER},
            ),
            RelationSchema.build(
                "orders",
                ["oid", "cust", "cust_city"],
                key=["oid"],
                not_null=["cust"],
                types={"oid": INTEGER, "cust": INTEGER},
            ),
        ]
    )
    db = Database(schema)
    db.insert_many(
        "customer",
        [
            [1, "a"], [2, "b"], [3, "c"],
            [3, "c-duplicate"],          # duplicate key!
        ],
    )
    db.insert_many(
        "orders",
        [
            [10, 1, "Lyon"], [11, 1, "Lyon"], [12, 2, "Paris"],
            [13, NULL, "Nowhere"],        # NULL in a NOT NULL column!
            [14, 99, "Ghost-town"],       # dangling reference!
        ],
    )
    return db


@pytest.fixture
def corpus() -> ProgramCorpus:
    corpus = ProgramCorpus()
    corpus.add_source(
        "r.sql", "SELECT cname FROM orders o, customer c WHERE o.cust = c.cid;"
    )
    return corpus


class TestDirtyExtension:
    def test_declared_constraints_are_indeed_violated(self, dirty_db):
        problems = dirty_db.violations()
        assert len(problems) >= 2

    def test_pipeline_completes(self, dirty_db, corpus):
        result = DBREPipeline(dirty_db, Expert()).run(corpus=corpus)
        assert result.restructured is not None
        assert result.eer is not None

    def test_dangling_reference_makes_nei_not_crash(self, dirty_db, corpus):
        result = DBREPipeline(dirty_db, Expert()).run(corpus=corpus)
        outcome = result.ind_result.outcomes[0]
        # cust values {1, 2, 99} vs cid {1, 2, 3}: a genuine NEI
        assert outcome.case == "nei"
        # the cautious expert drops it: nothing elicited
        assert result.inds == []

    def test_forgiving_expert_forces_through(self, dirty_db, corpus):
        result = DBREPipeline(
            dirty_db, AutoExpert(force_threshold=0.6)
        ).run(corpus=corpus)
        assert len(result.inds) == 1
        # the forced IND contradicts the extension — by design
        from repro.dependencies.ind_inference import ind_satisfied

        assert not ind_satisfied(dirty_db, result.inds[0])

    def test_fd_checks_skip_null_lhs_rows(self, dirty_db, corpus):
        """cust -> cust_city holds on the non-NULL rows; the NULL-cust
        row must not block its discovery once cust is a candidate."""
        result = DBREPipeline(
            dirty_db, AutoExpert(force_threshold=0.6)
        ).run(corpus=corpus)
        assert any(
            fd.relation == "orders" and "cust_city" in fd.rhs
            for fd in result.fds
        )
