"""Acceptance: the certified synthesis engine on the paper's example.

The paper's §7 restructuring (Department -> Department + Manager,
Assignment -> Assignment + Project) must come out of the certified
paths — both the Restruct wiring of the pipeline and the new
``repro normalize`` CLI verb — with certificates an independent
``verify_certificate`` accepts, and the certificates must be surfaced
by ``repro report`` and ``repro explain``.  The differential-harness
scenarios extend the guarantee beyond the worked example.
"""

import pytest

from repro.cli import main
from repro.core import DBREPipeline, ScriptedExpert
from repro.normalization import read_certificates_jsonl, verify_certificate
from repro.storage.serialize import database_to_dict, save_json
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)

from tests.engine.test_differential import (
    BACKENDS,
    SCENARIOS,
    run_synthetic,
    scenario_params,
)


@pytest.fixture(scope="module")
def paper_run():
    db = build_paper_database()
    pipeline = DBREPipeline(db, ScriptedExpert(paper_expert_script()))
    result = pipeline.run(equijoins=paper_equijoins())
    return pipeline, result


class TestPaperPipelineCertificates:
    def test_both_splits_are_certified(self, paper_run):
        _pipeline, result = paper_run
        sources = sorted(c.source for c in result.certificates)
        assert sources == ["Assignment", "Department"]

    def test_certificates_match_the_papers_normalized_schema(self, paper_run):
        _pipeline, result = paper_run
        for certificate in result.certificates:
            for scheme in certificate.relations:
                expected = PAPER_EXPECTED.restructured_relations[scheme.name]
                assert set(scheme.attributes) == set(expected)
                expected_key = PAPER_EXPECTED.restructured_keys[scheme.name]
                assert set(scheme.key) == set(expected_key)

    def test_every_certificate_verifies_independently(self, paper_run):
        _pipeline, result = paper_run
        for certificate in result.certificates:
            assert verify_certificate(certificate) == []
            assert certificate.lossless
            assert certificate.lost == ()

    def test_ledger_records_the_decompositions(self, paper_run):
        pipeline, _result = paper_run
        nodes = [
            n for n in pipeline.ledger.nodes.values()
            if n.kind == "decomposition"
        ]
        labels = sorted(n.label.split(" -> ")[0] for n in nodes)
        assert labels == ["Assignment", "Department"]
        for node in nodes:
            assert node.attrs["lossless"] is True


class TestCliNormalizeAcceptance:
    @pytest.fixture
    def paper_json(self, tmp_path):
        path = tmp_path / "paper.json"
        save_json(database_to_dict(build_paper_database()), str(path))
        return str(path)

    def test_paper_example_reaches_3nf(self, paper_json, tmp_path, capsys):
        certs = tmp_path / "certs.jsonl"
        code = main(
            [
                "normalize",
                paper_json,
                "--fd", "Department: emp -> skill, proj",
                "--fd", "Assignment: proj -> project-name",
                "--target-nf", "3nf",
                "--certificate", str(certs),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lossless" in out
        certificates = read_certificates_jsonl(str(certs))
        by_source = {c.source: c for c in certificates}
        assert set(by_source) == {"Assignment", "Department"}
        # §7: Department(dep, emp, location) + Manager(emp, skill, proj)
        department = {
            frozenset(s.attributes) for s in by_source["Department"].relations
        }
        assert department == {
            frozenset(("dep", "emp", "location")),
            frozenset(("emp", "skill", "proj")),
        }
        # §7: Assignment(emp, dep, proj, date) + Project(proj, project-name)
        assignment = {
            frozenset(s.attributes) for s in by_source["Assignment"].relations
        }
        assert assignment == {
            frozenset(("emp", "dep", "proj", "date")),
            frozenset(("proj", "project-name")),
        }
        for certificate in certificates:
            assert verify_certificate(certificate) == []
            assert certificate.lossless
            assert certificate.lost == ()

    def test_bcnf_target_also_certifies(self, paper_json, capsys):
        code = main(
            [
                "normalize",
                paper_json,
                "--fd", "Department: emp -> skill, proj",
                "--target-nf", "bcnf",
            ]
        )
        assert code == 0
        assert "BCNF" in capsys.readouterr().out


class TestCertificatesSurfaceInReports:
    @pytest.fixture(scope="class")
    def provenance_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "prov.jsonl"
        assert main(["demo", "--provenance", str(path)]) == 0
        return str(path)

    def test_explain_shows_the_decomposition(self, provenance_file, capsys):
        capsys.readouterr()
        assert main(["explain", provenance_file, "Department"]) == 0
        out = capsys.readouterr().out
        assert "certified decomposition" in out
        assert "lossless" in out

    def test_report_has_a_certificate_section(
        self, provenance_file, tmp_path, capsys
    ):
        out_html = tmp_path / "report.html"
        assert main(
            ["report", "--provenance", provenance_file,
             "--output", str(out_html)]
        ) == 0
        document = out_html.read_text()
        assert "Decomposition certificates" in document
        assert "repro/normalization@1" in document
        assert "certificate: Department" in document

    def test_demo_writes_verifiable_certificates(self, tmp_path, capsys):
        path = tmp_path / "certs.jsonl"
        assert main(["demo", "--certificates", str(path)]) == 0
        certificates = read_certificates_jsonl(str(path))
        assert len(certificates) == 2
        for certificate in certificates:
            assert verify_certificate(certificate) == []


@pytest.mark.parametrize("scenario_name", list(scenario_params()))
class TestDifferentialScenariosAreCertified:
    def test_every_decomposition_carries_a_valid_certificate(
        self, scenario_name
    ):
        config = SCENARIOS[scenario_name]
        _obs, result = run_synthetic(
            "serial", BACKENDS["memory"], config
        )
        fd_splits = [a for a in result.restruct_result.added if a.kind == "fd"]
        sources = {a.source for a in fd_splits}
        assert {c.source for c in result.certificates} == sources
        for certificate in result.certificates:
            assert verify_certificate(certificate) == []
