"""Synthetic scenarios with subtypes and weak entities, end to end.

The Figure-1 constructs beyond relationships — is-a links and weak
entity-types — generated synthetically and recovered by the pipeline:
the subtype's whole-key inclusion becomes an is-a link, the weak
entity's partial-key reference becomes ownership + discriminator.
"""

import pytest

from repro.core import DBREPipeline
from repro.evaluation.schema_match import score_schema_recovery
from repro.workloads.data_generator import DataConfig, DataGenerator
from repro.workloads.denormalizer import DenormalizationPlan, Denormalizer
from repro.workloads.er_generator import (
    EntitySpec,
    ERSpec,
    OneToManySpec,
    SubtypeSpec,
    WeakEntitySpec,
)
from repro.workloads.mapping import map_er_to_relational
from repro.workloads.oracle import OracleExpert
from repro.workloads.query_generator import QueryWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def scenario():
    spec = ERSpec(
        entities=[
            EntitySpec("person", "person_id", ("person_name",)),
            EntitySpec("division", "division_id", ("division_city",)),
            EntitySpec(
                "employee", "employee_id", ("employee_grade",)
            ),
        ],
        one_to_many=[
            OneToManySpec("employee", "division", "employee_division_id"),
        ],
        subtypes=[
            SubtypeSpec("pilot", "person", ("pilot_rating",)),
        ],
        weak_entities=[
            WeakEntitySpec("paystub", "employee", ("paystub_amount",)),
        ],
    )
    mapping = map_er_to_relational(spec)
    truth = Denormalizer(spec, mapping).run(DenormalizationPlan(auto_merges=0))
    database = DataGenerator(truth, DataConfig(seed=11, parent_rows=14)).generate()
    corpus = QueryWorkloadGenerator(WorkloadConfig(seed=12)).generate(
        truth.join_edges
    )
    result = DBREPipeline(database, OracleExpert(truth)).run(corpus=corpus)
    return spec, truth, database, result


class TestGroundTruthShape:
    def test_subtype_ids_subset_of_supertype(self, scenario):
        _spec, _truth, database, _result = scenario
        assert database.inclusion_holds(
            "pilot", ("pilot_id",), "person", ("person_id",)
        )
        assert len(database.table("pilot")) < len(database.table("person"))

    def test_weak_entity_composite_key(self, scenario):
        _spec, truth, database, _result = scenario
        paystub = truth.denormalized_schema.relation("paystub")
        assert paystub.is_key(["paystub_employee_id", "paystub_seq"])

    def test_ground_truth_eer_valid(self, scenario):
        spec, _truth, _db, _result = scenario
        eer = spec.to_eer()
        eer.validate()
        assert eer.supertypes("pilot") == ["person"]
        assert eer.entity("paystub").weak


class TestRandomGeneration:
    @pytest.mark.parametrize("seed", [7, 42])
    def test_random_subtype_weak_scenarios_recover(self, seed):
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        sc = build_scenario(
            ScenarioConfig(seed=seed, subtypes=1, weak_entities=1, merges=1)
        )
        assert sc.truth.er.subtypes and sc.truth.er.weak_entities
        result = DBREPipeline(sc.database, sc.expert).run(corpus=sc.corpus)
        recovery = score_schema_recovery(sc.truth, result.restructured)
        assert recovery.recovery_rate == 1.0
        assert result.eer.isa_links
        assert any(e.weak for e in result.eer.entities)

    def test_isa_follows_restructured_supertype(self):
        """When the supertype itself was a merged parent, the recovered
        is-a link points at the *recovered* relation — the IND rewriting
        of Restruct composes with Translate's rule (a)."""
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        sc = build_scenario(
            ScenarioConfig(seed=7, subtypes=1, weak_entities=1, merges=1)
        )
        result = DBREPipeline(sc.database, sc.expert).run(corpus=sc.corpus)
        sub = sc.truth.er.subtypes[0]
        sups = result.eer.supertypes(sub.name)
        assert len(sups) == 1
        # the supertype is either the original entity or its recovered
        # stand-in (capitalized by the oracle's naming)
        assert sups[0].lower() == sub.supertype.lower()


class TestRecovery:
    def test_isa_link_recovered(self, scenario):
        _spec, _truth, _db, result = scenario
        assert result.eer.supertypes("pilot") == ["person"]

    def test_weak_entity_recovered(self, scenario):
        _spec, _truth, _db, result = scenario
        paystub = result.eer.entity("paystub")
        assert paystub.weak
        assert paystub.owners == ("employee",)
        assert paystub.discriminator == ("paystub_seq",)

    def test_fk_relationship_recovered(self, scenario):
        _spec, _truth, _db, result = scenario
        rels = [
            r for r in result.eer.relationships
            if set(r.entity_names) == {"employee", "division"}
        ]
        assert len(rels) == 1

    def test_schema_recovery_full(self, scenario):
        _spec, truth, _db, result = scenario
        recovery = score_schema_recovery(truth, result.restructured)
        assert recovery.recovery_rate == 1.0

    def test_ground_truth_eer_matches_recovered_constructs(self, scenario):
        """Every is-a link and weak entity of the ground-truth EER appears
        in the recovered one (the recovered schema may add the artifacts
        of elicitation, never lose these)."""
        spec, _truth, _db, result = scenario
        expected = spec.to_eer()
        for link in expected.isa_links:
            assert link in result.eer.isa_links
        for entity in expected.entities:
            if entity.weak:
                got = result.eer.entity(entity.name)
                assert got.weak and got.owners == entity.owners
