"""End-to-end recovery on synthetic denormalized databases.

These are the S3-style integration checks: with an oracle expert, the
pipeline must recover the ground truth of clean scenarios perfectly and
degrade gracefully under corruption and partial query coverage.
"""

import pytest

from repro.core import DBREPipeline
from repro.evaluation.metrics import score_fds, score_inds, score_refs
from repro.evaluation.schema_match import score_schema_recovery
from repro.workloads.scenario import ScenarioConfig, build_scenario


def run_scenario(**kwargs):
    scenario = build_scenario(ScenarioConfig(**kwargs))
    result = DBREPipeline(scenario.database, scenario.expert).run(
        corpus=scenario.corpus
    )
    return scenario, result


class TestCleanScenarios:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_fds_fully_recovered(self, seed):
        scenario, result = run_scenario(seed=seed)
        pr = score_fds(result.fds, scenario.truth.true_fds)
        assert pr.recall == 1.0, f"seed {seed}: {pr!r}"
        assert pr.precision == 1.0

    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_inds_fully_recovered(self, seed):
        scenario, result = run_scenario(seed=seed)
        pr = score_inds(result.inds, scenario.truth.true_inds)
        assert pr.recall == 1.0
        # when the two sides of a join carry equal value sets, the
        # algorithm's two non-exclusive ifs elicit BOTH directions; any
        # extra IND must be such a reverse, and must truly hold
        truth = set(scenario.truth.true_inds)
        from repro.dependencies.ind_inference import ind_satisfied

        for extra in set(result.inds) - truth:
            assert extra.reversed() in truth
            assert ind_satisfied(scenario.database, extra)

    @pytest.mark.parametrize("seed", [7, 21])
    def test_hidden_objects_recovered(self, seed):
        scenario, result = run_scenario(seed=seed)
        pr = score_refs(result.hidden, scenario.truth.true_hidden)
        assert pr.recall == 1.0

    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_schema_fully_recovered(self, seed):
        scenario, result = run_scenario(seed=seed)
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        assert recovery.recovery_rate == 1.0, recovery

    def test_eer_produced_and_valid(self):
        _scenario, result = run_scenario(seed=7)
        result.eer.validate()
        assert result.eer.entities


class TestCorruptedScenarios:
    def test_oracle_recovers_every_corrupted_edge(self):
        """Every true interrelation edge survives corruption — either in
        its true direction (the oracle forces it through the NEI) or,
        when the corruption makes the *reverse* inclusion the only one
        the data supports, as that reverse (the algorithm's cases ii/iii
        never consult the expert).  Both capture the edge."""
        scenario, result = run_scenario(
            seed=7, corruption_ind_rate=1.0, corruption_row_rate=0.15
        )
        assert scenario.corruption.corrupted_inds
        recovered = set(result.inds)
        for ind in scenario.truth.true_inds:
            assert ind in recovered or ind.reversed() in recovered, ind

    def test_fd_recovery_with_enforcement(self):
        scenario, result = run_scenario(
            seed=7, corruption_ind_rate=1.0, corruption_row_rate=0.15
        )
        pr = score_fds(result.fds, scenario.truth.true_fds)
        assert pr.recall == 1.0

    def test_cautious_expert_loses_corrupted_edges(self):
        """Replace the oracle by the cautious default expert: corrupted
        edges surface as NEIs and are dropped — recall falls."""
        from repro.core.expert import Expert

        scenario = build_scenario(
            ScenarioConfig(seed=7, corruption_ind_rate=1.0, corruption_row_rate=0.15)
        )
        result = DBREPipeline(scenario.database, Expert()).run(
            corpus=scenario.corpus
        )
        pr = score_inds(result.inds, scenario.truth.true_inds)
        assert pr.recall < 1.0


class TestPartialCoverage:
    def test_uncovered_edges_stay_unrecovered(self):
        full_scenario, full = run_scenario(seed=7, coverage=1.0)
        half_scenario, half = run_scenario(seed=7, coverage=0.4)
        full_pr = score_inds(full.inds, full_scenario.truth.true_inds)
        half_pr = score_inds(half.inds, half_scenario.truth.true_inds)
        assert half_pr.recall < full_pr.recall
        # what IS recovered stays precise: queries never lie
        assert half_pr.precision == 1.0


@pytest.mark.slow
class TestScale:
    def test_larger_scenario_completes(self):
        scenario, result = run_scenario(
            seed=13, n_entities=10, n_one_to_many=9, merges=3, parent_rows=30
        )
        recovery = score_schema_recovery(scenario.truth, result.restructured)
        assert recovery.recovery_rate == 1.0
        assert result.extension_queries > 0
