"""End-to-end pipeline over *composite* identifiers.

The paper's notation allows attribute *sets* everywhere (``R.X``); this
scenario exercises those paths: a multi-attribute equi-join, a composite
non-key identifier in LHS-Discovery, an FD with a composite left-hand
side, its Restruct split into a relation with a composite key, and the
weak-entity/relationship classification over composite keys in
Translate.

Domain: a warehouse system.  Bins are identified by (site, bin_code);
the bin registry was folded into the ``stock`` relation long ago, so
``stock : site, bin_code -> bin_label, bin_zone`` is a hidden
dependency; picking orders reference bins by the same composite, and
programs join on both attributes at once.
"""

import pytest

from repro.core import DBREPipeline, ScriptedExpert
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.ind import InclusionDependency as IND
from repro.normalization import NormalForm, schema_normal_forms
from repro.programs.corpus import ProgramCorpus
from repro.programs.equijoin import EquiJoin
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.attribute import AttributeRef
from repro.relational.domain import INTEGER


@pytest.fixture(scope="module")
def database() -> Database:
    schema = DatabaseSchema(
        [
            # stock: one row per (site, bin_code, product); bin data embedded
            RelationSchema.build(
                "stock",
                ["site", "bin_code", "product", "qty", "bin_label", "bin_zone"],
                key=["site", "bin_code", "product"],
                types={"qty": INTEGER},
            ),
            RelationSchema.build(
                "pick",
                ["pick_no", "site", "bin_code", "picked_qty"],
                key=["pick_no"],
                types={"pick_no": INTEGER, "picked_qty": INTEGER},
            ),
        ]
    )
    db = Database(schema)
    bins = {
        ("S1", "B1"): ("upper-A", "zoneA"),
        ("S1", "B2"): ("lower-A", "zoneA"),
        ("S2", "B1"): ("upper-B", "zoneB"),
        ("S2", "B3"): ("dock", "zoneB"),
    }
    stock_rows = [
        ("S1", "B1", "p1", 10), ("S1", "B1", "p2", 4),
        ("S1", "B2", "p1", 7), ("S2", "B1", "p3", 2),
        ("S2", "B3", "p2", 9), ("S2", "B3", "p3", 1),
    ]
    for site, bin_code, product, qty in stock_rows:
        label, zone = bins[(site, bin_code)]
        db.insert("stock", [site, bin_code, product, qty, label, zone])
    # picks reference a subset of the bins
    db.insert_many(
        "pick",
        [
            [1, "S1", "B1", 3],
            [2, "S1", "B1", 1],
            [3, "S2", "B3", 5],
            [4, "S1", "B2", 2],
        ],
    )
    db.validate()
    return db


@pytest.fixture(scope="module")
def corpus() -> ProgramCorpus:
    corpus = ProgramCorpus()
    corpus.add_source(
        "batch/pick_check.sql",
        """
        -- every pick must hit an existing stock bin (composite join)
        SELECT COUNT(*) FROM pick p, stock s
        WHERE p.site = s.site AND p.bin_code = s.bin_code;
        """,
    )
    return corpus


@pytest.fixture(scope="module")
def result(database, corpus):
    # the canonical attribute order of the composite identifier follows
    # the equi-join's canonical pairing (bin_code before site)
    expert = ScriptedExpert(
        {
            "name_fd:stock: bin_code, site -> bin_label, bin_zone": "bin",
            "hidden:pick.{bin_code, site}": False,
        }
    )
    return DBREPipeline(database, expert).run(corpus=corpus)


class TestCompositeExtraction:
    def test_multi_attribute_join_extracted(self, result):
        assert result.equijoins == [
            EquiJoin("pick", ("bin_code", "site"), "stock", ("bin_code", "site"))
        ]


class TestCompositeElicitation:
    def test_composite_ind(self, result):
        assert (
            IND("pick", ("site", "bin_code"), "stock", ("site", "bin_code"))
            in result.inds
        )

    def test_composite_identifiers_in_lhs(self, result):
        assert AttributeRef("pick", ("site", "bin_code")) in result.lhs_result.lhs
        assert AttributeRef("stock", ("site", "bin_code")) in result.lhs_result.lhs

    def test_composite_fd_found(self, result):
        assert result.fds == [
            FD("stock", ("site", "bin_code"), ("bin_label", "bin_zone"))
        ]

    def test_pick_identifier_given_up(self, result):
        # picked_qty varies per pick: empty RHS, expert declines
        outcome = next(
            o
            for o in result.rhs_result.outcomes
            if o.ref == AttributeRef("pick", ("site", "bin_code"))
        )
        assert outcome.action == "ignored"


class TestCompositeRestruct:
    def test_bin_relation_split_off(self, result):
        bin_rel = result.restructured.schema.relation("bin")
        assert bin_rel.attribute_names == (
            "site", "bin_code", "bin_label", "bin_zone",
        )
        assert bin_rel.is_key(["site", "bin_code"])

    def test_bin_extension_deduplicated(self, result):
        table = result.restructured.table("bin")
        assert len(table) == 4          # the four distinct bins

    def test_stock_narrowed(self, result):
        stock = result.restructured.schema.relation("stock")
        assert stock.attribute_names == ("site", "bin_code", "product", "qty")

    def test_composite_rics(self, result):
        assert (
            IND("stock", ("site", "bin_code"), "bin", ("site", "bin_code"))
            in result.ric
        )
        assert (
            IND("pick", ("site", "bin_code"), "bin", ("site", "bin_code"))
            in result.ric
        )

    def test_output_is_3nf(self, result):
        forms = schema_normal_forms(result.restructured.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())

    def test_input_stock_was_1nf(self, database, result):
        # with the embedded FD, stock violates 2NF (partial dependency on
        # a proper subset of the key)
        forms = schema_normal_forms(database.schema, list(result.fds))
        assert forms["stock"] == NormalForm.FIRST


class TestCompositeTranslate:
    def test_bin_is_entity(self, result):
        assert result.eer.has_entity("bin")
        assert result.eer.entity("bin").key == ("site", "bin_code")

    def test_stock_weak_entity_of_bin(self, result):
        # stock's key (site, bin_code, product) is partially covered by
        # the composite reference to bin -> weak entity, discriminator
        # product
        stock = result.eer.entity("stock")
        assert stock.weak
        assert stock.owners == ("bin",)
        assert stock.discriminator == ("product",)

    def test_pick_binary_relationship_to_bin(self, result):
        rels = [
            r for r in result.eer.relationships
            if set(r.entity_names) == {"pick", "bin"}
        ]
        assert len(rels) == 1
        cards = {p.entity: p.cardinality for p in rels[0].participants}
        assert cards == {"pick": "N", "bin": "1"}
