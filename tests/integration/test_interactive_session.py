"""The interactive path, end to end.

Drives the full pipeline with an :class:`InteractiveExpert` fed from a
queued stdin, answering the paper's §6-§7 questions the way the paper's
expert does — then checks the run matches the scripted reference and
that the recorded session replays.
"""

import pytest

from repro.core import DBREPipeline, InteractiveExpert, ScriptedExpert
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


class QueuedIO:
    """Scripted stdin/stdout for the interactive expert."""

    def __init__(self, answers):
        self._answers = list(answers)
        self.prompts = []
        self.printed = []

    def input(self, prompt: str) -> str:
        self.prompts.append(prompt)
        if not self._answers:
            raise AssertionError(f"unexpected question: {prompt!r}")
        return self._answers.pop(0)

    def print(self, text: str) -> None:
        self.printed.append(text)

    @property
    def exhausted(self) -> bool:
        return not self._answers


@pytest.fixture(scope="module")
def interactive_run():
    # answers in the deterministic order the pipeline asks:
    io = QueuedIO(
        [
            # §6.1 NEI on Assignment[dep] >< Department[dep]
            "c", "Ass-Dept",
            # RHS-Discovery, sorted by identifier:
            # Assignment.{dep} (in H): enforce dep->date? dep->project-name?
            "n", "n",
            # Assignment.{emp}: enforce emp->date? emp->project-name?
            # then conceptualize as hidden object?
            "n", "n", "n",
            # Assignment.{proj}: enforce proj->date? validate found FD?
            "n", "y",
            # Department.{emp}: validate emp -> skill, proj
            "y",
            # Department.{proj}: enforce proj->emp? proj->skill? hidden?
            "n", "n", "n",
            # HEmployee.{no}: enforce no->salary? conceptualize hidden?
            "n", "y",
            # Restruct namings: hidden objects (Assignment.dep,
            # HEmployee.no), then FD relations (Assignment, Department)
            "Other-Dept", "Employee",
            "Project", "Manager",
        ]
    )
    expert = InteractiveExpert(input_fn=io.input, print_fn=io.print)
    pipeline = DBREPipeline(build_paper_database(), expert)
    result = pipeline.run(corpus=paper_program_corpus())
    return io, pipeline, result


class TestInteractiveSession:
    def test_all_answers_consumed(self, interactive_run):
        io, _pipeline, _result = interactive_run
        assert io.exhausted

    def test_matches_scripted_reference(self, interactive_run):
        _io, _pipeline, result = interactive_run
        reference = DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus())
        assert set(result.ric) == set(reference.ric)
        assert set(result.fds) == set(reference.fds)
        assert result.restructured.schema.relation_names == (
            reference.restructured.schema.relation_names
        )

    def test_reproduces_paper_artifacts(self, interactive_run):
        _io, _pipeline, result = interactive_run
        assert set(result.ric) == set(PAPER_EXPECTED.ric)

    def test_nei_prompt_showed_the_counts(self, interactive_run):
        io, _pipeline, _result = interactive_run
        nei_lines = [l for l in io.printed if "Non-empty intersection" in l]
        assert len(nei_lines) == 1
        assert "|left|=9" in nei_lines[0]
        assert "|right|=8" in nei_lines[0]

    def test_session_replays_from_recording(self, interactive_run):
        _io, pipeline, result = interactive_run
        replay = DBREPipeline(
            build_paper_database(),
            ScriptedExpert(pipeline.expert.to_script()),
        ).run(corpus=paper_program_corpus())
        assert replay.ric == result.ric
