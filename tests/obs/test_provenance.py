"""Provenance ledger: DAG building, evidence matching, export, explain."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NODE_KINDS,
    PROVENANCE_FORMAT,
    ProvenanceLedger,
    Tracer,
    explain,
    find_artifact,
    provenance_records,
    provenance_to_dot,
    read_provenance_jsonl,
    render_html_report,
    write_provenance_jsonl,
)


def record(tracer, primitive, relations, attributes, **kw):
    defaults = dict(
        backend="memory",
        start=tracer.now(),
        duration=0.0,
        cache_hit=False,
        rows_touched=0,
    )
    defaults.update(kw)
    return tracer.record_event(
        primitive=primitive, relations=relations, attributes=attributes, **defaults
    )


@pytest.fixture
def ledger():
    return ProvenanceLedger()


class TestNodesAndEdges:
    def test_node_ids_compose_kind_and_key(self, ledger):
        node_id = ledger.node("ind", "R[a] << S[b]")
        assert node_id == "ind:R[a] << S[b]"
        assert ledger.nodes[node_id].label == "R[a] << S[b]"

    def test_node_is_idempotent_and_merges_attributes(self, ledger):
        first = ledger.node("relation", "Emp", origin="hidden")
        second = ledger.node("relation", "Emp", label="Employee", source="Q3")
        assert first == second
        assert len(ledger) == 1
        node = ledger.nodes[first]
        assert node.label == "Employee"
        assert node.attrs == {"origin": "hidden", "source": "Q3"}

    def test_node_captures_the_enclosing_span(self):
        tracer = Tracer()
        ledger = ProvenanceLedger(tracer)
        outside = ledger.node("query", "p#0")
        with tracer.span("IND-Discovery", kind="phase") as span:
            inside = ledger.node("ind", "R[a] << S[b]")
        assert ledger.nodes[outside].span_id is None
        assert ledger.nodes[inside].span_id == span.span_id

    def test_duplicate_edges_are_suppressed(self, ledger):
        ledger.node("ind", "i")
        ledger.node("ric", "i")
        for _ in range(3):
            ledger.link("ind:i", "ric:i", "promoted")
        assert len(ledger.edges) == 1
        ledger.link("ind:i", "ric:i", "other-role")
        assert len(ledger.edges) == 2


class TestDecisions:
    def test_repeated_questions_get_distinct_nodes(self, ledger):
        first = ledger.decision("nei", "Does J1 hold?", True)
        second = ledger.decision("nei", "Does J1 hold?", False)
        assert first != second
        assert second.endswith("#2")
        assert ledger.nodes[first].label == ledger.nodes[second].label

    def test_last_decision_tracks_the_newest_node(self, ledger):
        assert ledger.last_decision() is None
        ledger.decision("enforce", "Enforce a -> b?", True)
        newest = ledger.decision("validate", "Keep a -> b?", False)
        assert ledger.last_decision() == newest
        node = ledger.nodes[newest]
        assert node.attrs["decision_kind"] == "validate"
        assert node.attrs["answer"] == "False"


class TestEvidence:
    def test_events_are_matched_by_signature_fifo(self):
        tracer = Tracer()
        ledger = ProvenanceLedger(tracer)
        record(tracer, "count_distinct", ("r",), (("a",),), rows_touched=10)
        record(tracer, "count_distinct", ("r",), (("a",),), cache_hit=True)
        a = ledger.node("classification", "first")
        b = ledger.node("classification", "second")
        ledger.attach_evidence(a, "count_distinct", ("r",), (("a",),))
        ledger.attach_evidence(b, "count_distinct", ("r",), (("a",),))
        assert [e["id"] for e in ledger.nodes[a].events] == [0]
        assert [e["id"] for e in ledger.nodes[b].events] == [1]

    def test_unmatched_signature_is_a_silent_no_op(self):
        tracer = Tracer()
        ledger = ProvenanceLedger(tracer)
        record(tracer, "count_distinct", ("r",), (("a",),))
        node = ledger.node("classification", "c")
        ledger.attach_evidence(node, "join_count", ("r", "s"), (("a",), ("b",)))
        assert ledger.nodes[node].events == []

    def test_without_a_tracer_evidence_is_skipped(self, ledger):
        node = ledger.node("classification", "c")
        ledger.attach_evidence(node, "count_distinct", ("r",), (("a",),))
        assert ledger.nodes[node].events == []

    def test_events_recorded_after_indexing_are_still_found(self):
        tracer = Tracer()
        ledger = ProvenanceLedger(tracer)
        record(tracer, "count_distinct", ("r",), (("a",),))
        node = ledger.node("classification", "c")
        ledger.attach_evidence(node, "count_distinct", ("r",), (("a",),))
        record(tracer, "fd_holds", ("r",), (("a",), ("b",)))
        ledger.attach_evidence(node, "fd_holds", ("r",), (("a",), ("b",)))
        assert [e["primitive"] for e in ledger.nodes[node].events] == [
            "count_distinct",
            "fd_holds",
        ]


@pytest.fixture
def small_dag():
    """query -> equijoin -> classification -> ind -> ric, plus a decision."""
    tracer = Tracer()
    ledger = ProvenanceLedger(tracer)
    record(tracer, "join_count", ("R", "S"), (("a",), ("b",)))
    q = ledger.node("query", "prog#0", label="prog, statement 0")
    j = ledger.node("equijoin", "R[a] >< S[b]")
    c = ledger.node("classification", "R[a] >< S[b]", case="inclusion")
    i = ledger.node("ind", "R[a] << S[b]")
    ric = ledger.node("ric", "R[a] << S[b]")
    d = ledger.decision("nei", "Is R[a] >< S[b] an inclusion?", True)
    ledger.attach_evidence(c, "join_count", ("R", "S"), (("a",), ("b",)))
    ledger.link(q, j, "extracted")
    ledger.link(j, c, "classified")
    ledger.link(d, c, "decided")
    ledger.link(c, i, "elicited")
    ledger.link(i, ric, "promoted")
    return ledger


class TestSerialization:
    def test_header_counts_nodes_and_edges(self, small_dag):
        header = provenance_records(small_dag)[0]
        assert header == {
            "type": "provenance",
            "format": PROVENANCE_FORMAT,
            "nodes": 6,
            "edges": 5,
        }

    def test_round_trip_is_exact(self, small_dag, tmp_path):
        path = str(tmp_path / "prov.jsonl")
        write_provenance_jsonl(small_dag, path)
        assert read_provenance_jsonl(path) == provenance_records(small_dag)

    def test_reading_a_non_provenance_file_is_a_value_error(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "repro/trace@1"}\n')
        with pytest.raises(ValueError):
            read_provenance_jsonl(str(path))

    def test_truncated_line_reports_its_number(self, small_dag, tmp_path):
        path = tmp_path / "prov.jsonl"
        write_provenance_jsonl(small_dag, str(path))
        text = path.read_text().splitlines()
        path.write_text("\n".join(text[:2] + [text[2][: len(text[2]) // 2]]))
        with pytest.raises(ValueError, match=r":3:"):
            read_provenance_jsonl(str(path))

    def test_records_are_plain_json(self, small_dag):
        for row in provenance_records(small_dag):
            assert json.loads(json.dumps(row)) == row


class TestDot:
    def test_renders_every_node_and_edge(self, small_dag):
        dot = provenance_to_dot(provenance_records(small_dag))
        assert dot.startswith("digraph provenance {")
        assert "rankdir=LR" in dot
        assert '"query:prog#0"' in dot
        assert '[label="promoted"]' in dot
        assert dot.count(" -> ") == 5

    def test_quotes_in_labels_are_escaped(self):
        ledger = ProvenanceLedger()
        ledger.node("decision", 'say "yes"')
        dot = provenance_to_dot(provenance_records(ledger))
        assert '\\"yes\\"' in dot


class TestFindArtifact:
    def test_exact_id_wins(self, small_dag):
        records = provenance_records(small_dag)
        assert find_artifact(records, "equijoin:R[a] >< S[b]")["kind"] == "equijoin"

    def test_shared_label_prefers_the_most_derived_kind(self, small_dag):
        # "R[a] << S[b]" names both the IND and the RIC; explain the RIC
        node = find_artifact(provenance_records(small_dag), "R[a] << S[b]")
        assert node["kind"] == "ric"
        assert NODE_KINDS.index("ric") > NODE_KINDS.index("ind")

    def test_substring_match_resolves_unique_artifacts(self, small_dag):
        node = find_artifact(provenance_records(small_dag), "prog, statement")
        assert node["kind"] == "query"

    def test_ambiguity_within_one_kind_raises_with_candidates(self):
        ledger = ProvenanceLedger()
        ledger.node("ind", "R[a] << S[b]")
        ledger.node("ind", "R[a] << T[b]")
        with pytest.raises(ValueError, match="ambiguous"):
            find_artifact(provenance_records(ledger), "R[a] <<")

    def test_no_match_raises(self, small_dag):
        with pytest.raises(ValueError, match="no artifact"):
            find_artifact(provenance_records(small_dag), "nothing-like-this")


class TestExplain:
    def test_chain_walks_back_to_the_source_query(self, small_dag):
        text = explain(provenance_records(small_dag), "R[a] << S[b]")
        lines = text.splitlines()
        assert lines[0].startswith("referential integrity constraint:")
        assert any("inclusion dependency" in line for line in lines)
        assert any("expert decision" in line for line in lines)
        assert "source query: prog, statement 0 [extracted]" in text
        # evidence cites the trace event that produced the counts
        assert "join_count(R[a] ; S[b]) — trace event #0" in text

    def test_deeper_steps_are_indented_further(self, small_dag):
        text = explain(provenance_records(small_dag), "R[a] << S[b]")

        def depth(line):
            return (len(line) - len(line.lstrip())) // 2

        by_title = {
            line.strip().split(":")[0].lstrip("<- "): depth(line)
            for line in text.splitlines()
            if ":" in line
        }
        assert by_title["referential integrity constraint"] == 0
        assert by_title["source query"] > by_title["equi-join of Q"] > 0

    def test_shared_ancestors_print_once(self):
        ledger = ProvenanceLedger()
        shared = ledger.node("classification", "c")
        for name in ("x", "y"):
            out = ledger.node("ind", name)
            ledger.link(shared, out, "elicited")
        merged = ledger.node("ric", "m")
        ledger.link("ind:x", merged, "promoted")
        ledger.link("ind:y", merged, "promoted")
        text = explain(provenance_records(ledger), "ric:m")
        assert text.count("(see above)") == 1


class TestHtmlReport:
    def test_provenance_only_report_lists_dialogue_and_chains(self, small_dag):
        html_text = render_html_report(provenance=provenance_records(small_dag), title="Audit")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<title>Audit</title>" in html_text
        assert "Expert dialogue" in html_text
        assert "Is R[a] &gt;&lt; S[b] an inclusion?" in html_text
        assert "Derivation chains" in html_text
        assert "digraph provenance" in html_text

    def test_trace_only_report_has_metrics_but_no_dialogue(self):
        from repro.obs import trace_records

        tracer = Tracer()
        with tracer.span("pipeline", kind="pipeline"):
            record(tracer, "count_distinct", ("r",), (("a",),), rows_touched=3)
        html_text = render_html_report(trace=trace_records(tracer))
        assert "Metrics" in html_text
        assert "count_distinct" in html_text
        assert "Expert dialogue" not in html_text

    def test_empty_report_says_so(self):
        assert "No artifacts were provided." in render_html_report()


class TestPipelineIntegration:
    """The ledger a real run produces satisfies the acceptance criteria."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.core.expert import ScriptedExpert
        from repro.core.pipeline import DBREPipeline
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_equijoins,
            paper_expert_script,
        )

        pipeline = DBREPipeline(build_paper_database(), ScriptedExpert(paper_expert_script()))
        return pipeline.run(equijoins=paper_equijoins())

    def test_every_phase_contributes_nodes(self, run):
        kinds = {node.kind for node in run.provenance.nodes.values()}
        assert {
            "equijoin",
            "classification",
            "decision",
            "ind",
            "candidate",
            "fd",
            "relation",
            "ric",
            "entity",
            "relationship",
            "isa",
        } <= kinds

    def test_every_ric_explains_down_to_an_equijoin(self, run):
        records = provenance_records(run.provenance)
        rics = [r for r in records if r.get("type") == "node" and r["kind"] == "ric"]
        assert rics
        for ric in rics:
            text = explain(records, ric["id"])
            assert "equi-join of Q" in text

    def test_classifications_carry_count_evidence(self, run):
        nodes = run.provenance.nodes.values()
        classified = [
            n
            for n in nodes
            if n.kind == "classification" and n.attrs.get("case") != "reflexive"
        ]
        assert classified
        for node in classified:
            primitives = sorted(e["primitive"] for e in node.events)
            assert primitives == ["count_distinct", "count_distinct", "join_count"]

    def test_disabling_provenance_changes_nothing_observable(self):
        from repro.core.expert import ScriptedExpert
        from repro.core.pipeline import DBREPipeline
        from repro.eer.render import render_text
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_equijoins,
            paper_expert_script,
        )

        def outcome(provenance):
            pipeline = DBREPipeline(
                build_paper_database(),
                ScriptedExpert(paper_expert_script()),
                provenance=provenance,
            )
            result = pipeline.run(equijoins=paper_equijoins())
            return (
                [repr(i) for i in result.inds],
                [repr(f) for f in result.fds],
                [repr(i) for i in result.ric],
                render_text(result.eer),
                result.extension_queries,
                result.expert_decisions,
            )

        assert outcome(True) == outcome(False)

    def test_disabled_provenance_leaves_no_ledger(self):
        from repro.core.expert import ScriptedExpert
        from repro.core.pipeline import DBREPipeline
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
        )

        pipeline = DBREPipeline(
            build_paper_database(),
            ScriptedExpert(paper_expert_script()),
            provenance=False,
        )
        assert pipeline.ledger is None
