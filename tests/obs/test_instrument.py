"""InstrumentedBackend: events recorded, delegation untouched."""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend
from repro.obs import InstrumentedBackend, Tracer


class StubBackend:
    """A minimal backend standing in for the real ones."""

    kind = "stub"
    marker = "reachable-through-getattr"

    def __init__(self):
        self.probed = []

    def probe(self, primitive, relations, attributes):
        self.probed.append((primitive, relations, attributes))
        return True, 42

    def count_distinct(self, relation, attrs):
        return 3

    def join_count(self, left, left_attrs, right, right_attrs):
        return 2

    def fd_holds(self, relation, lhs, rhs):
        return True

    def inclusion_holds(self, left, left_attrs, right, right_attrs):
        return False


class NoProbeBackend:
    """A backend without the optional ``probe`` hook (and no ``kind``)."""

    def count_distinct(self, relation, attrs):
        return 5


@pytest.fixture
def tracer():
    return Tracer()


class TestEvents:
    def test_each_primitive_records_one_event(self, tracer):
        wrapped = InstrumentedBackend(StubBackend(), tracer)
        assert wrapped.count_distinct("r", ("a",)) == 3
        assert wrapped.join_count("r", ("a",), "s", ("b",)) == 2
        assert wrapped.fd_holds("r", ("a",), ("b",)) is True
        assert wrapped.inclusion_holds("r", ("a",), "s", ("b",)) is False
        assert [e.primitive for e in tracer.events] == [
            "count_distinct", "join_count", "fd_holds", "inclusion_holds",
        ]
        assert all(e.backend == "stub" for e in tracer.events)

    def test_event_carries_probe_figures(self, tracer):
        stub = StubBackend()
        wrapped = InstrumentedBackend(stub, tracer)
        wrapped.count_distinct("r", ["a", "b"])
        (event,) = tracer.events
        assert event.cache_hit is True
        assert event.rows_touched == 42
        assert event.relations == ("r",)
        assert event.attributes == (("a", "b"),)
        # the probe saw the same normalized arguments
        assert stub.probed == [("count_distinct", ("r",), (("a", "b"),))]

    def test_fd_holds_packs_lhs_and_rhs_as_two_attribute_tuples(self, tracer):
        wrapped = InstrumentedBackend(StubBackend(), tracer)
        wrapped.fd_holds("r", ["x"], ["y", "z"])
        (event,) = tracer.events
        assert event.relations == ("r",)
        assert event.attributes == (("x",), ("y", "z"))

    def test_events_attributed_to_the_open_span(self, tracer):
        wrapped = InstrumentedBackend(StubBackend(), tracer)
        with tracer.span("IND-Discovery", kind="phase") as span:
            wrapped.count_distinct("r", ("a",))
        assert tracer.events[0].span_id == span.span_id


class TestDelegation:
    def test_unknown_attributes_fall_through(self, tracer):
        stub = StubBackend()
        wrapped = InstrumentedBackend(stub, tracer)
        assert wrapped.marker == "reachable-through-getattr"
        assert wrapped.inner is stub

    def test_missing_probe_defaults_to_cold_miss(self, tracer):
        wrapped = InstrumentedBackend(NoProbeBackend(), tracer)
        assert wrapped.count_distinct("r", ("a",)) == 5
        (event,) = tracer.events
        assert event.cache_hit is False
        assert event.rows_touched == 0

    def test_missing_kind_falls_back_to_class_name(self, tracer):
        wrapped = InstrumentedBackend(NoProbeBackend(), tracer)
        wrapped.count_distinct("r", ("a",))
        assert tracer.events[0].backend == "NoProbeBackend"


class TestRealBackendProbe:
    def test_memory_backend_reports_hit_after_identical_query(self, tracer):
        from repro.relational import DatabaseSchema, RelationSchema
        from repro.relational.domain import INTEGER

        backend = MemoryBackend()
        backend.attach(
            DatabaseSchema(
                [RelationSchema.build("r", ["a", "b"], types={"a": INTEGER})]
            )
        )
        backend.insert_many("r", [[1, "x"], [2, "y"], [2, "z"]])
        wrapped = InstrumentedBackend(backend, tracer)

        assert wrapped.count_distinct("r", ("a",)) == 2
        assert wrapped.count_distinct("r", ("a",)) == 2
        cold, warm = tracer.events
        assert cold.cache_hit is False and cold.rows_touched == 3
        assert warm.cache_hit is True and warm.rows_touched == 0
