"""Structured logging: JSON lines, correlation IDs, reconfiguration."""

import io
import json
import logging

from repro.obs.log import (
    bind_log_context,
    configure_json_logging,
    current_log_context,
    get_logger,
    log_context,
    new_run_id,
    reset_log_context,
)


def capture():
    buffer = io.StringIO()
    handler = configure_json_logging(stream=buffer)
    return buffer, handler


def teardown_function(_function):
    # detach whatever a test configured so the repro tree goes quiet
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)


class TestFormatter:
    def test_lines_are_json_with_the_standard_fields(self):
        buffer, _handler = capture()
        get_logger("pipeline").info("phase complete")
        line = json.loads(buffer.getvalue())
        assert line["level"] == "info"
        assert line["logger"] == "repro.pipeline"
        assert line["message"] == "phase complete"
        assert isinstance(line["ts"], float)

    def test_extra_data_dict_is_inlined(self):
        buffer, _handler = capture()
        get_logger("jobs").info(
            "job finished", extra={"data": {"state": "done", "queries": 12}}
        )
        line = json.loads(buffer.getvalue())
        assert line["state"] == "done"
        assert line["queries"] == 12

    def test_exceptions_are_captured(self):
        buffer, _handler = capture()
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("server").exception("request failed")
        line = json.loads(buffer.getvalue())
        assert line["level"] == "error"
        assert "ValueError: boom" in line["exc"]


class TestCorrelation:
    def test_context_ids_ride_every_line(self):
        buffer, _handler = capture()
        run = new_run_id()
        with log_context(run=run, job="job-9"):
            get_logger("pipeline").info("inside")
        get_logger("pipeline").info("outside")
        inside, outside = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert inside["run"] == run
        assert inside["job"] == "job-9"
        assert "run" not in outside

    def test_bindings_nest_and_reset(self):
        token = bind_log_context(run="r1")
        assert current_log_context() == {"run": "r1"}
        with log_context(job="j1"):
            assert current_log_context() == {"run": "r1", "job": "j1"}
        assert current_log_context() == {"run": "r1"}
        reset_log_context(token)
        assert current_log_context() == {}

    def test_none_values_are_skipped(self):
        with log_context(run="r2", job=None):
            assert current_log_context() == {"run": "r2"}

    def test_run_ids_are_short_and_distinct(self):
        first, second = new_run_id(), new_run_id()
        assert len(first) == 12
        assert first != second


class TestConfiguration:
    def test_reconfigure_replaces_the_json_handler(self):
        first, _ = capture()
        second, _ = capture()
        get_logger("x").info("once")
        assert first.getvalue() == ""
        assert json.loads(second.getvalue())["message"] == "once"

    def test_file_target_appends_json_lines(self, tmp_path):
        path = str(tmp_path / "service.log")
        configure_json_logging(path=path)
        with log_context(job="job-3"):
            get_logger("server").info("listening")
        with open(path, encoding="utf-8") as handle:
            line = json.loads(handle.readline())
        assert line["job"] == "job-3"

    def test_unconfigured_tree_is_silent(self, capsys):
        get_logger("quiet").info("nothing to see")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_get_logger_normalizes_names(self):
        assert get_logger("pipeline").name == "repro.pipeline"
        assert get_logger("repro.pipeline").name == "repro.pipeline"
        assert get_logger("").name == "repro"
