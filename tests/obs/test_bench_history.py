"""Regression-gate attribution and bench-history persistence tests.

The forced-regression test doctors a baseline, monkeypatches the
harness's ``run_all`` (no real heads run), and asserts the gate exits
1, prints the attribution table for the failing head, and appends a
``repro/bench-history@1`` record — the issue's acceptance scenario.
"""

from __future__ import annotations

import json

import pytest

regression = pytest.importorskip("benchmarks.regression")


def head(**overrides):
    base = {
        "wall_ms": 10.0,
        "queries": {"count_distinct": 10, "fd_holds": 20},
        "latency_ms": {"count_distinct": 1.0, "fd_holds": 2.0},
        "latency_units": {"count_distinct": 0.5, "fd_holds": 1.0},
        "primitives": {
            "count_distinct": {
                "calls": 10, "duration_ms": 1.0, "cache_hits": 8,
                "cache_misses": 2, "rows_touched": 100, "hit_rate": 0.8,
            },
            "fd_holds": {
                "calls": 20, "duration_ms": 2.0, "cache_hits": 0,
                "cache_misses": 20, "rows_touched": 400, "hit_rate": 0.0,
            },
        },
        "cache_hits": 8,
        "rows_touched": 500,
        "decisions": 3,
        "phases": {
            "IND-Discovery": {"duration_ms": 4.0, "queries": 10, "self_ms": 3.0},
            "RHS-Discovery": {"duration_ms": 6.0, "queries": 20, "self_ms": 5.0},
        },
    }
    base.update(overrides)
    return base


def run_doc(**heads):
    return {
        "format": regression.FORMAT,
        "mode": "quick",
        "calibration_ms": 2.0,
        "heads": heads,
    }


class TestAttributionReport:
    def test_names_primitive_and_phase_movements(self):
        baseline = head()
        current = head(
            latency_units={"count_distinct": 2.0, "fd_holds": 1.0},
            primitives={
                "count_distinct": {
                    "calls": 10, "duration_ms": 4.0, "cache_hits": 0,
                    "cache_misses": 10, "rows_touched": 900, "hit_rate": 0.0,
                },
                "fd_holds": baseline["primitives"]["fd_holds"],
            },
        )
        text = regression.attribution_report("s1-head", current, baseline)
        assert "attribution for s1-head" in text
        lines = text.splitlines()
        # ranked by latency-unit delta: count_distinct (x4) first
        first_primitive = next(
            line for line in lines if line.startswith(("count_distinct", "fd_holds"))
        )
        assert first_primitive.startswith("count_distinct")
        assert "0.500 -> 2.000 (4.00x)" in text
        assert "80% -> 0%" in text            # the cache-hit-rate explanation
        assert "100 -> 900" in text           # rows scanned
        assert "IND-Discovery" in text and "self ms" in text

    def test_tolerates_heads_without_primitive_stats(self):
        # baselines recorded before this layer existed lack "primitives"
        bare = {"queries": {"fd_holds": 5}, "latency_units": {"fd_holds": 0.2}}
        text = regression.attribution_report("s1", head(), bare)
        assert "fd_holds" in text


class TestHistory:
    def test_append_writes_one_schema_tagged_line_per_run(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        result = run_doc(s1=head())
        regression.append_history(path, result, "pass", [])
        regression.append_history(path, result, "fail", ["s1: too slow"])
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        assert len(lines) == 2
        for record in lines:
            assert record["format"] == regression.HISTORY_FORMAT
            assert record["mode"] == "quick"
            assert record["recorded_at"]
            assert record["heads"]["s1"]["queries"] == 30
            assert record["heads"]["s1"]["latency_units"] == {
                "count_distinct": 0.5, "fd_holds": 1.0,
            }
        assert lines[0]["gate"] == "pass" and lines[0]["violations"] == []
        assert lines[1]["gate"] == "fail"
        assert lines[1]["violations"] == ["s1: too slow"]

    def test_the_returned_record_matches_the_written_line(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        record = regression.append_history(path, run_doc(s1=head()), "pass", [])
        written = json.loads(open(path, encoding="utf-8").read())
        assert written == json.loads(json.dumps(record))


class TestForcedRegression:
    """The acceptance scenario: gate fails, attributes, persists."""

    def force(self, tmp_path, monkeypatch, capsys, current, baseline_head):
        baseline_path = str(tmp_path / "baseline.json")
        history_path = str(tmp_path / "history.jsonl")
        regression.write_baseline(baseline_path, run_doc(**{"s3-head": baseline_head}))
        monkeypatch.setattr(regression, "run_all", lambda quick: current)
        code = regression.main(
            ["--quick", "--baseline", baseline_path, "--history", history_path]
        )
        return code, capsys.readouterr(), history_path

    def test_gate_failure_prints_attribution_and_appends_history(
        self, tmp_path, monkeypatch, capsys
    ):
        regressed = head(
            queries={"count_distinct": 50, "fd_holds": 20},  # 5x chattier
            primitives=dict(
                head()["primitives"],
                count_distinct={
                    "calls": 50, "duration_ms": 9.0, "cache_hits": 0,
                    "cache_misses": 50, "rows_touched": 4500, "hit_rate": 0.0,
                },
            ),
        )
        code, captured, history_path = self.force(
            tmp_path, monkeypatch, capsys,
            current=run_doc(**{"s3-head": regressed}),
            baseline_head=head(),
        )
        assert code == 1
        assert "REGRESSION GATE FAILED" in captured.out
        assert "attribution for s3-head" in captured.out
        assert "10 -> 50" in captured.out          # the query blow-up, named
        assert "80% -> 0%" in captured.out         # the cache explanation
        record = json.loads(open(history_path, encoding="utf-8").read())
        assert record["format"] == "repro/bench-history@1"
        assert record["gate"] == "fail"
        assert any("count_distinct" in v for v in record["violations"])

    def test_passing_gate_appends_a_pass_record_without_attribution(
        self, tmp_path, monkeypatch, capsys
    ):
        code, captured, history_path = self.force(
            tmp_path, monkeypatch, capsys,
            current=run_doc(**{"s3-head": head()}),
            baseline_head=head(),
        )
        assert code == 0
        assert "regression gate passed" in captured.out
        assert "attribution" not in captured.out
        record = json.loads(open(history_path, encoding="utf-8").read())
        assert record["gate"] == "pass" and record["violations"] == []

    def test_no_history_flag_suppresses_the_append(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline_path = str(tmp_path / "baseline.json")
        history_path = str(tmp_path / "history.jsonl")
        regression.write_baseline(baseline_path, run_doc(**{"s3-head": head()}))
        monkeypatch.setattr(
            regression, "run_all", lambda quick: run_doc(**{"s3-head": head()})
        )
        code = regression.main(
            ["--quick", "--baseline", baseline_path,
             "--history", history_path, "--no-history"]
        )
        assert code == 0
        import os

        assert not os.path.exists(history_path)
