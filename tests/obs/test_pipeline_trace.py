"""End-to-end tracing on the paper's §5 worked example.

The acceptance bar for the observability layer: one pipeline run emits a
span per phase in execution order, one event per extension query from
either backend, and cost reports that are *exactly* the event stream.
"""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend
from repro.core import DBREPipeline, ScriptedExpert
from repro.evaluation import cost_report, cost_report_from_trace
from repro.obs import PHASE_NAMES, PRIMITIVES, Tracer
from repro.relational import Database
from repro.workloads.paper_example import (
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)

BACKENDS = {"memory": MemoryBackend, "sqlite": SQLiteBackend}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def traced_run(request):
    """One traced paper-example run per backend kind."""
    database = build_paper_database(backend=BACKENDS[request.param]())
    expert = ScriptedExpert(paper_expert_script())
    pipeline = DBREPipeline(database, expert)
    result = pipeline.run(corpus=paper_program_corpus())
    yield request.param, result
    database.close()


class TestSpans:
    def test_phases_appear_in_paper_order_under_one_root(self, traced_run):
        _, result = traced_run
        trace = result.trace
        roots = [s for s in trace.spans if s.parent_id is None]
        assert [s.name for s in roots] == ["pipeline"]
        phases = [s for s in trace.spans if s.kind == "phase"]
        assert [s.name for s in phases] == list(PHASE_NAMES)
        assert all(s.parent_id == roots[0].span_id for s in phases)

    def test_every_span_is_closed_with_a_real_duration(self, traced_run):
        _, result = traced_run
        for span in result.trace.spans:
            assert span.end is not None
            assert span.duration >= 0.0

    def test_root_span_attributes_summarize_the_run(self, traced_run):
        _, result = traced_run
        (root,) = [s for s in result.trace.spans if s.parent_id is None]
        assert root.attributes["queries"] == result.extension_queries
        assert root.attributes["decisions"] == result.expert_decisions


class TestEventStream:
    def test_events_come_from_the_selected_backend(self, traced_run):
        kind, result = traced_run
        events = result.trace.events
        assert events, "a pipeline run must issue extension queries"
        assert {e.backend for e in events} == {kind}
        assert {e.primitive for e in events} <= set(PRIMITIVES)

    def test_every_event_happened_inside_a_phase(self, traced_run):
        _, result = traced_run
        phase_ids = {s.span_id for s in result.trace.spans if s.kind == "phase"}
        assert {e.span_id for e in result.trace.events} <= phase_ids

    def test_extension_queries_equals_the_event_count(self, traced_run):
        _, result = traced_run
        assert result.extension_queries == len(result.trace.events)


class TestCostReportIsAViewOverTheStream:
    def test_trace_report_total_is_the_event_count(self, traced_run):
        _, result = traced_run
        report = cost_report_from_trace(result.trace)
        assert report.total_queries == len(result.trace.events)

    def test_per_primitive_figures_match_a_hand_count(self, traced_run):
        _, result = traced_run
        events = result.trace.events
        report = cost_report_from_trace(result.trace)
        by_primitive = {p: sum(1 for e in events if e.primitive == p) for p in PRIMITIVES}
        assert report.count_distinct_queries == by_primitive["count_distinct"]
        assert report.join_count_queries == by_primitive["join_count"]
        assert report.fd_checks == by_primitive["fd_holds"]
        assert report.inclusion_checks == by_primitive["inclusion_holds"]


class TestTracedQueryCounter:
    @pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
    def db(self, request):
        database = build_paper_database(backend=BACKENDS[request.param]())
        yield database
        database.close()

    def test_counter_and_trace_report_agree(self, db):
        db.count_distinct("Department", ("emp",))
        db.count_distinct("Department", ("emp", "dep"))
        db.fd_holds("Department", ("emp",), ("dep",))
        report_from_counter = cost_report(db.counter)
        report_from_trace = cost_report_from_trace(db.tracer)
        assert report_from_counter == report_from_trace
        assert report_from_counter.total_queries == len(db.tracer.events)

    def test_reset_moves_the_watermark_not_the_stream(self, db):
        db.count_distinct("Department", ("emp",))
        db.counter.reset()
        assert db.counter.total() == 0
        assert len(db.tracer.events) == 1  # the stream keeps history
        db.count_distinct("Department", ("dep",))
        assert db.counter.total() == 1
        assert db.counter.count_distinct == 1

    def test_copy_records_on_its_own_tracer_by_default(self, db):
        clone = db.copy()
        clone.count_distinct("Department", ("emp",))
        assert clone.tracer is not db.tracer
        assert clone.counter.total() == 1
        assert db.counter.total() == 0

    def test_copy_can_share_a_tracer_as_the_pipeline_does(self, db):
        clone = db.copy(tracer=db.tracer)
        clone.count_distinct("Department", ("emp",))
        assert clone.tracer is db.tracer
        assert db.counter.total() == 1


def test_standalone_database_still_counts(tiny_db: Database):
    tiny_db.count_distinct("city", ("city_id",))
    tiny_db.join_count("person", ("person_city_id",), "city", ("city_id",))
    assert tiny_db.counter.count_distinct == 1
    assert tiny_db.counter.join_count == 1
    assert tiny_db.counter.total() == 2
