"""Unit tests for the CI benchmark-regression gate's compare logic."""

from __future__ import annotations

import pytest

regression = pytest.importorskip("benchmarks.regression")


def head(queries=None, latency_units=None):
    return {
        "queries": queries or {},
        "latency_units": latency_units or {},
    }


def run_doc(**heads):
    return {"format": regression.FORMAT, "mode": "quick", "heads": heads}


class TestQueryGate:
    def test_within_the_ratio_passes(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 10}))
        current = run_doc(s1=head(queries={"count_distinct": 19}))
        assert regression.compare(current, baseline) == []

    def test_beyond_the_ratio_fails(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 10}))
        current = run_doc(s1=head(queries={"count_distinct": 21}))
        violations = regression.compare(current, baseline)
        assert len(violations) == 1
        assert "count_distinct" in violations[0]
        assert "21" in violations[0]

    def test_max_ratio_is_configurable(self):
        baseline = run_doc(s1=head(queries={"fd_holds": 10}))
        current = run_doc(s1=head(queries={"fd_holds": 12}))
        assert regression.compare(current, baseline, max_ratio=1.1)

    def test_zero_baseline_counts_are_not_gated(self):
        baseline = run_doc(s1=head(queries={"join_count": 0}))
        current = run_doc(s1=head(queries={"join_count": 50}))
        assert regression.compare(current, baseline) == []


class TestLatencyGate:
    def test_below_the_noise_floor_is_not_gated(self):
        floor = regression.LATENCY_FLOOR_UNITS
        baseline = run_doc(s1=head(latency_units={"fd_holds": floor / 2}))
        current = run_doc(s1=head(latency_units={"fd_holds": 100.0}))
        assert regression.compare(current, baseline) == []

    def test_above_the_floor_a_regression_fails(self):
        baseline = run_doc(s1=head(latency_units={"fd_holds": 0.5}))
        current = run_doc(s1=head(latency_units={"fd_holds": 1.5}))
        violations = regression.compare(current, baseline)
        assert len(violations) == 1
        assert "latency" in violations[0]

    def test_above_the_floor_within_ratio_passes(self):
        baseline = run_doc(s1=head(latency_units={"fd_holds": 0.5}))
        current = run_doc(s1=head(latency_units={"fd_holds": 0.9}))
        assert regression.compare(current, baseline) == []


class TestUnguardedHeads:
    def test_current_only_heads_are_reported_sorted(self):
        baseline = run_doc(s1=head())
        current = run_doc(s1=head(), s11=head(), s2=head())
        assert regression.unguarded_heads(current, baseline) == ["s11", "s2"]

    def test_matching_head_sets_are_clean(self):
        doc = run_doc(s1=head(), s3=head())
        assert regression.unguarded_heads(doc, doc) == []

    def test_exit_code_is_distinct_from_a_regression(self):
        assert regression.EXIT_UNGUARDED_HEADS == 3

    def test_main_exits_3_on_a_new_head(self, tmp_path, monkeypatch, capsys):
        path = str(tmp_path / "baseline.json")
        regression.write_baseline(
            path, run_doc(s1=head(queries={"count_distinct": 5}))
        )
        current = run_doc(
            s1=head(queries={"count_distinct": 5}),
            s11=head(queries={"count_distinct": 5}),
        )
        current["calibration_ms"] = 1.0
        current["heads"]["s1"]["wall_ms"] = 1.0
        current["heads"]["s1"]["cache_hits"] = 0
        current["heads"]["s11"]["wall_ms"] = 1.0
        current["heads"]["s11"]["cache_hits"] = 0
        monkeypatch.setattr(regression, "run_all", lambda quick: current)
        code = regression.main(["--baseline", path, "--no-history"])
        assert code == regression.EXIT_UNGUARDED_HEADS
        out = capsys.readouterr().out
        assert "s11" in out
        assert "--write-baseline" in out

    def test_main_prefers_the_regression_exit(self, tmp_path, monkeypatch):
        # a regression and a new head together: perf failure wins
        path = str(tmp_path / "baseline.json")
        regression.write_baseline(
            path, run_doc(s1=head(queries={"count_distinct": 5}))
        )
        current = run_doc(
            s1=head(queries={"count_distinct": 500}), s11=head()
        )
        current["calibration_ms"] = 1.0
        for name in ("s1", "s11"):
            current["heads"][name]["wall_ms"] = 1.0
            current["heads"][name]["cache_hits"] = 0
        monkeypatch.setattr(regression, "run_all", lambda quick: current)
        assert regression.main(["--baseline", path, "--no-history"]) == 1


class TestShape:
    def test_missing_head_is_a_violation(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 1}))
        current = run_doc()
        violations = regression.compare(current, baseline)
        assert violations == ["s1: head missing from this run"]

    def test_empty_baseline_gates_nothing(self):
        assert regression.compare(run_doc(s1=head()), run_doc()) == []

    def test_baseline_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        result = run_doc(s1=head(queries={"count_distinct": 3}))
        regression.write_baseline(path, result)
        loaded = regression.load_baseline(path, "quick")
        assert loaded == result
        assert regression.load_baseline(path, "full") is None

    def test_load_baseline_rejects_other_formats(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something/else@1"}')
        with pytest.raises(SystemExit):
            regression.load_baseline(str(path), "quick")

    def test_missing_baseline_file_is_none(self, tmp_path):
        assert regression.load_baseline(str(tmp_path / "nope.json"), "quick") is None
