"""Unit tests for the CI benchmark-regression gate's compare logic."""

from __future__ import annotations

import pytest

regression = pytest.importorskip("benchmarks.regression")


def head(queries=None, latency_units=None):
    return {
        "queries": queries or {},
        "latency_units": latency_units or {},
    }


def run_doc(**heads):
    return {"format": regression.FORMAT, "mode": "quick", "heads": heads}


class TestQueryGate:
    def test_within_the_ratio_passes(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 10}))
        current = run_doc(s1=head(queries={"count_distinct": 19}))
        assert regression.compare(current, baseline) == []

    def test_beyond_the_ratio_fails(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 10}))
        current = run_doc(s1=head(queries={"count_distinct": 21}))
        violations = regression.compare(current, baseline)
        assert len(violations) == 1
        assert "count_distinct" in violations[0]
        assert "21" in violations[0]

    def test_max_ratio_is_configurable(self):
        baseline = run_doc(s1=head(queries={"fd_holds": 10}))
        current = run_doc(s1=head(queries={"fd_holds": 12}))
        assert regression.compare(current, baseline, max_ratio=1.1)

    def test_zero_baseline_counts_are_not_gated(self):
        baseline = run_doc(s1=head(queries={"join_count": 0}))
        current = run_doc(s1=head(queries={"join_count": 50}))
        assert regression.compare(current, baseline) == []


class TestLatencyGate:
    def test_below_the_noise_floor_is_not_gated(self):
        floor = regression.LATENCY_FLOOR_UNITS
        baseline = run_doc(s1=head(latency_units={"fd_holds": floor / 2}))
        current = run_doc(s1=head(latency_units={"fd_holds": 100.0}))
        assert regression.compare(current, baseline) == []

    def test_above_the_floor_a_regression_fails(self):
        baseline = run_doc(s1=head(latency_units={"fd_holds": 0.5}))
        current = run_doc(s1=head(latency_units={"fd_holds": 1.5}))
        violations = regression.compare(current, baseline)
        assert len(violations) == 1
        assert "latency" in violations[0]

    def test_above_the_floor_within_ratio_passes(self):
        baseline = run_doc(s1=head(latency_units={"fd_holds": 0.5}))
        current = run_doc(s1=head(latency_units={"fd_holds": 0.9}))
        assert regression.compare(current, baseline) == []


class TestShape:
    def test_missing_head_is_a_violation(self):
        baseline = run_doc(s1=head(queries={"count_distinct": 1}))
        current = run_doc()
        violations = regression.compare(current, baseline)
        assert violations == ["s1: head missing from this run"]

    def test_empty_baseline_gates_nothing(self):
        assert regression.compare(run_doc(s1=head()), run_doc()) == []

    def test_baseline_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        result = run_doc(s1=head(queries={"count_distinct": 3}))
        regression.write_baseline(path, result)
        loaded = regression.load_baseline(path, "quick")
        assert loaded == result
        assert regression.load_baseline(path, "full") is None

    def test_load_baseline_rejects_other_formats(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something/else@1"}')
        with pytest.raises(SystemExit):
            regression.load_baseline(str(path), "quick")

    def test_missing_baseline_file_is_none(self, tmp_path):
        assert regression.load_baseline(str(tmp_path / "nope.json"), "quick") is None
