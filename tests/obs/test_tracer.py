"""Tracer unit tests, driven by a fake clock for exact durations."""

from __future__ import annotations

import pytest

from repro.obs import PHASE_NAMES, PRIMITIVES, Tracer


class FakeClock:
    """A monotonic clock advancing 1.0 per tick."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


@pytest.fixture
def tracer() -> Tracer:
    return Tracer(clock=FakeClock())


class TestSpans:
    def test_nesting_records_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_fake_clock_gives_exact_durations(self, tracer):
        with tracer.span("outer"):          # start t=1
            with tracer.span("inner"):      # start t=2, end t=3
                pass
        # outer ends at t=4
        outer, inner = tracer.spans
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_span_ids_are_unique_and_ordered(self, tracer):
        for name in PHASE_NAMES:
            with tracer.span(name, kind="phase"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_end_span_closes_abandoned_children(self, tracer):
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")  # never closed explicitly
        tracer.end_span(outer)
        assert inner.end is not None
        assert outer.end is not None
        assert tracer.current_span_id() is None

    def test_open_span_reports_elapsed_so_far(self, tracer):
        record = tracer.start_span("open")  # start t=1
        assert record.open
        assert record.duration == 1.0       # clock reads t=2
        assert record.duration == 2.0       # ... and keeps advancing
        tracer.end_span(record)             # end t=4
        assert not record.open
        assert record.duration == 3.0       # frozen once closed

    def test_hand_built_open_record_without_clock_reports_zero(self):
        from repro.obs import SpanRecord

        record = SpanRecord(span_id=1, parent_id=None, name="detached")
        assert record.open
        assert record.duration == 0.0

    def test_end_span_of_foreign_record_leaves_stack_alone(self, tracer):
        from repro.obs import SpanRecord

        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        foreign = SpanRecord(span_id=99, parent_id=None, name="foreign", start=0.0)
        with pytest.warns(RuntimeWarning, match="not .* the span stack"):
            tracer.end_span(foreign)
        # the open spans of the run must not have been torn down
        assert outer.end is None and inner.end is None
        assert tracer.current_span_id() == inner.span_id
        assert foreign.end is not None  # only the foreign record was closed

    def test_end_span_twice_warns_and_keeps_first_end(self, tracer):
        record = tracer.start_span("once")   # start t=1
        tracer.end_span(record)              # end t=2
        with pytest.warns(RuntimeWarning):
            tracer.end_span(record)
        assert record.end == 2.0
        assert tracer.current_span_id() is None

    def test_attributes_can_be_set_inside_the_scope(self, tracer):
        with tracer.span("phase", kind="phase") as span:
            span.attributes["inds"] = 7
        assert tracer.spans[0].attributes == {"inds": 7}


class TestEvents:
    def test_event_attributed_to_innermost_open_span(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                event = tracer.record_event(
                    primitive="count_distinct",
                    backend="memory",
                    relations=("r",),
                    attributes=(("a",),),
                    start=tracer.now(),
                    duration=0.5,
                    cache_hit=False,
                    rows_touched=3,
                )
        assert event.span_id == inner.span_id
        assert tracer.events == [event]

    def test_event_outside_any_span_has_no_span_id(self, tracer):
        event = tracer.record_event(
            primitive="join_count",
            backend="memory",
            relations=("r", "s"),
            attributes=(("a",), ("b",)),
            start=0.0,
            duration=0.0,
            cache_hit=True,
            rows_touched=0,
        )
        assert event.span_id is None

    def test_events_are_immutable(self, tracer):
        event = tracer.record_event(
            primitive="fd_holds",
            backend="memory",
            relations=("r",),
            attributes=(("a",), ("b",)),
            start=0.0,
            duration=0.0,
            cache_hit=False,
            rows_touched=1,
        )
        with pytest.raises(AttributeError):
            event.primitive = "join_count"


class TestReset:
    def test_reset_drops_both_streams_and_reuses_ids(self, tracer):
        with tracer.span("s"):
            tracer.record_event(
                primitive="count_distinct", backend="memory",
                relations=("r",), attributes=(("a",),),
                start=0.0, duration=0.0, cache_hit=False, rows_touched=0,
            )
        tracer.reset()
        assert tracer.spans == [] and tracer.events == []
        with tracer.span("again") as record:
            pass
        assert record.span_id == 1


def test_module_constants_match_the_paper():
    assert PHASE_NAMES == (
        "IND-Discovery", "LHS-Discovery", "RHS-Discovery", "Restruct", "Translate",
    )
    assert PRIMITIVES == ("count_distinct", "join_count", "fd_holds", "inclusion_holds")
