"""The live bus: ordering, snapshots, bounded queues, the file format."""

import pytest

from repro.obs.live import (
    LIVE_FORMAT,
    LiveBus,
    LiveStats,
    live_records,
    read_live_jsonl,
    write_live_jsonl,
)
from repro.obs.tracer import Tracer


def run_traced(tracer):
    """A tiny two-phase run on *tracer*."""
    with tracer.span("pipeline", kind="pipeline"):
        with tracer.span("IND-Discovery", kind="phase"):
            tracer.progress("probing", current=1, total=2)
            tracer.record_event(
                primitive="count_distinct", backend="memory",
                relations=("PERSON",), attributes=(("ssn",),),
                start=0.0, duration=0.001, cache_hit=False, rows_touched=4,
            )
        with tracer.span("LHS-Discovery", kind="phase"):
            pass


class TestBusSemantics:
    def test_sequence_is_monotonic_and_total(self):
        tracer = Tracer()
        subscription = tracer.subscribe()
        run_traced(tracer)
        records = subscription.drain()
        sequences = [record["seq"] for record in records]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        assert tracer.live_bus.last_seq == max(sequences)

    def test_stream_carries_every_phase_boundary_and_progress(self):
        tracer = Tracer()
        subscription = tracer.subscribe()
        run_traced(tracer)
        records = subscription.drain()
        opens = [r["name"] for r in records
                 if r["type"] == "span-open" and r["kind"] == "phase"]
        closes = [r["name"] for r in records
                  if r["type"] == "span-close" and r["kind"] == "phase"]
        assert opens == ["IND-Discovery", "LHS-Discovery"]
        assert closes == ["IND-Discovery", "LHS-Discovery"]
        progress = [r for r in records if r["type"] == "progress"]
        assert progress and progress[0]["phase"] == "IND-Discovery"
        primitive = [r for r in records if r["type"] == "primitive"]
        assert primitive[0]["primitive"] == "count_distinct"
        assert primitive[0]["rows_touched"] == 4

    def test_zero_overhead_without_subscribers(self):
        tracer = Tracer()
        run_traced(tracer)
        # no bus was ever attached: the hot path stayed a None test
        assert tracer.live_bus is None
        tracer.progress("ignored")
        tracer.pool_event("ignored")
        assert tracer.live_bus is None

    def test_unsubscribe_stops_delivery(self):
        tracer = Tracer()
        subscription = tracer.subscribe()
        with tracer.span("pipeline", kind="pipeline"):
            pass
        subscription.close()
        before = len(subscription.drain())
        with tracer.span("again", kind="pipeline"):
            pass
        assert len(subscription.drain()) == 0
        assert before >= 0
        assert tracer.live_bus.subscribers == 0


class TestMidRunAttach:
    """The satellite regression: already-open spans arrive on subscribe."""

    def test_subscriber_attached_mid_run_gets_open_span_snapshot(self):
        tracer = Tracer()
        tracer.live()  # bus attached from the start
        with tracer.span("pipeline", kind="pipeline"):
            with tracer.span("RHS-Discovery", kind="phase"):
                subscription = tracer.subscribe()
                snapshot = subscription.drain()
                # both open spans, in stack order, flagged as snapshot
                assert [r["name"] for r in snapshot] == [
                    "pipeline", "RHS-Discovery",
                ]
                assert all(r["type"] == "span-open" for r in snapshot)
                assert all(r["snapshot"] for r in snapshot)
                # ...then the tail: the close events still arrive
                tracer.progress("mid-run tick")
        tail = subscription.drain()
        assert [r["type"] for r in tail] == [
            "progress", "span-close", "span-close",
        ]
        assert not any(r.get("snapshot") for r in tail)

    def test_bus_attached_mid_run_synthesizes_open_spans(self):
        tracer = Tracer()
        with tracer.span("pipeline", kind="pipeline"):
            with tracer.span("Restruct", kind="phase"):
                # nothing was ever subscribed; live() attaches now and
                # must reconstruct the open stack into the history
                bus = tracer.live()
                history = bus.history()
                assert [r["name"] for r in history] == [
                    "pipeline", "Restruct",
                ]
                assert all(r["snapshot"] for r in history)

    def test_replay_from_resumes_after_a_gap(self):
        tracer = Tracer()
        tracer.live()
        run_traced(tracer)
        full = tracer.live_bus.history()
        cut = full[3]["seq"]
        resumed = tracer.subscribe(replay_from=cut).drain()
        assert [r["seq"] for r in resumed] == [
            r["seq"] for r in full if r["seq"] > cut
        ]


class TestBoundedQueues:
    def test_slow_subscriber_drops_and_counts_without_stalling(self):
        tracer = Tracer()
        subscription = tracer.subscribe(maxsize=3)
        with tracer.span("pipeline", kind="pipeline"):
            for tick in range(50):
                tracer.progress("tick", current=tick, total=50)
        # the queue stayed bounded, the excess was counted, and the
        # publishing side never blocked
        assert len(subscription.drain()) == 3
        assert subscription.dropped > 0
        assert tracer.live_bus.dropped() == subscription.dropped
        # the history is complete: a re-sync by replay recovers the gap
        assert tracer.live_bus.last_seq == len(tracer.live_bus.history())

    def test_dropped_records_recoverable_by_replay(self):
        tracer = Tracer()
        subscription = tracer.subscribe(maxsize=2)
        with tracer.span("pipeline", kind="pipeline"):
            for tick in range(10):
                tracer.progress("tick", current=tick)
        seen = subscription.drain()
        last_seen = seen[-1]["seq"]
        recovered = tracer.subscribe(replay_from=last_seen).drain()
        assert recovered
        assert recovered[0]["seq"] == last_seen + 1
        assert recovered[-1]["seq"] == tracer.live_bus.last_seq


class TestBoundedHistory:
    """The history bound: oldest records trim, totals keep counting."""

    def test_history_trims_oldest_but_stats_keep_counting(self):
        bus = LiveBus(history_limit=10)
        for tick in range(25):
            bus.publish("progress", message="tick", current=tick)
        assert bus.trimmed == 15
        retained = bus.history()
        assert len(retained) == 10
        assert [r["seq"] for r in retained] == list(range(16, 26))
        # the aggregates never forget what the history shed
        assert bus.stats().events["progress"] == 25

    def test_history_since_respects_the_trim_watermark(self):
        bus = LiveBus(history_limit=10)
        for _ in range(25):
            bus.publish("progress", message="tick")
        assert [r["seq"] for r in bus.history(since=20)] == [
            21, 22, 23, 24, 25,
        ]
        # a cursor predating the trim gets the retained tail — the
        # jump from cursor+1 to the first seq is the detectable gap
        page = bus.history(since=3)
        assert page[0]["seq"] == 16
        assert bus.history(since=25) == []
        assert bus.history(since=99) == []

    def test_dropped_total_survives_unsubscribe(self):
        tracer = Tracer()
        subscription = tracer.subscribe(maxsize=2)
        with tracer.span("pipeline", kind="pipeline"):
            for tick in range(10):
                tracer.progress("tick", current=tick)
        dropped = subscription.dropped
        assert dropped > 0
        subscription.close()
        assert tracer.live_bus.dropped() == dropped


class TestLiveStats:
    """Incremental aggregates maintained at publish time."""

    def test_stats_aggregate_phases_primitives_and_pool(self):
        tracer = Tracer()
        tracer.live()
        run_traced(tracer)
        tracer.pool_event("respawn")
        stats = tracer.live_bus.stats()
        assert stats.phase_runs == {"IND-Discovery": 1, "LHS-Discovery": 1}
        assert stats.phase_ms["IND-Discovery"] >= 0.0
        assert stats.primitive_calls == {"count_distinct": 1}
        assert stats.primitive_cache_hits == {}
        assert stats.pool_events == {"respawn": 1}
        assert stats.events["span-open"] == 3
        assert stats.events["progress"] == 1

    def test_merge_folds_and_copy_is_independent(self):
        a = LiveStats()
        a.observe({"type": "pool", "event": "respawn"})
        b = a.copy()
        b.observe({"type": "pool", "event": "respawn"})
        assert a.pool_events == {"respawn": 1}
        assert b.pool_events == {"respawn": 2}
        a.merge(b)
        assert a.pool_events == {"respawn": 3}

    def test_cache_hits_and_storage_counters(self):
        stats = LiveStats()
        stats.observe({
            "type": "primitive", "primitive": "join_count",
            "cache_hit": True, "counters": {"pool_hits": 3},
        })
        stats.observe({
            "type": "primitive", "primitive": "join_count",
            "cache_hit": False, "counters": {"pool_hits": 2},
        })
        assert stats.primitive_calls == {"join_count": 2}
        assert stats.primitive_cache_hits == {"join_count": 1}
        assert stats.storage_counters == {"pool_hits": 5}


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.live()
        run_traced(tracer)
        path = str(tmp_path / "live.jsonl")
        written = write_live_jsonl(tracer.live_bus, path)
        read = read_live_jsonl(path)
        assert read == written
        assert read[0]["format"] == LIVE_FORMAT
        assert read[0]["events"] == len(read) - 1
        assert read[0]["counts"]["span-open"] == 3

    def test_records_from_a_plain_iterable(self):
        body = [{"type": "progress", "seq": 1, "ts_ms": 0.0, "message": "x"}]
        records = live_records(body)
        assert records[0]["counts"] == {"progress": 1}

    def test_reader_rejects_foreign_and_corrupt_streams(self, tmp_path):
        from repro.util.jsonl import save_jsonl

        wrong = str(tmp_path / "wrong.jsonl")
        save_jsonl([{"format": "repro/trace@1"}], wrong)
        with pytest.raises(ValueError, match="not a repro/live@1"):
            read_live_jsonl(wrong)

        short = str(tmp_path / "short.jsonl")
        save_jsonl(
            [{"type": "header", "format": LIVE_FORMAT, "events": 2},
             {"type": "progress", "seq": 1, "ts_ms": 0.0}],
            short,
        )
        with pytest.raises(ValueError, match="claims 2"):
            read_live_jsonl(short)

        alien = str(tmp_path / "alien.jsonl")
        save_jsonl(
            [{"type": "header", "format": LIVE_FORMAT, "events": 1},
             {"type": "martian", "seq": 1, "ts_ms": 0.0}],
            alien,
        )
        with pytest.raises(ValueError, match="unknown type"):
            read_live_jsonl(alien)


class TestBusClock:
    def test_timestamps_are_relative_and_monotonic(self):
        ticks = iter(float(i) for i in range(100))
        bus = LiveBus(clock=lambda: next(ticks))
        first = bus.publish("progress", message="a")
        second = bus.publish("progress", message="b")
        assert first["ts_ms"] >= 0.0
        assert second["ts_ms"] > first["ts_ms"]
