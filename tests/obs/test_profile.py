"""Hotspot-profile unit tests: exclusive-time math and the exporters.

Driven by a manual clock so every duration is exact: the tests pin the
inclusive/self arithmetic for nested, overlapping, zero-duration and
still-open spans, then the two flamegraph exports derived from it.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, trace_records
from repro.obs.profile import (
    PROFILE_FORMAT,
    SPEEDSCOPE_SCHEMA,
    collapsed_stacks,
    profile_from_records,
    profile_summary,
    render_profile,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)


class ManualClock:
    """A clock the test advances explicitly (seconds)."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture
def tracer(clock) -> Tracer:
    return Tracer(clock=clock)


def event(tracer, primitive="count_distinct", start=0.0, duration=0.0,
          cache_hit=False, rows=0):
    tracer.record_event(
        primitive=primitive,
        backend="memory",
        relations=("r",),
        attributes=(("a",),),
        start=start,
        duration=duration,
        cache_hit=cache_hit,
        rows_touched=rows,
    )


class TestExclusiveTime:
    def test_child_time_subtracts_from_parent_self(self, tracer, clock):
        parent = tracer.start_span("parent")          # 0 .. 10
        clock.t = 2.0
        child = tracer.start_span("child")            # 2 .. 5
        clock.t = 5.0
        tracer.end_span(child)
        clock.t = 10.0
        tracer.end_span(parent)
        profile = profile_summary(tracer)
        assert profile["spans"]["parent"]["inclusive_ms"] == 10000.0
        assert profile["spans"]["parent"]["self_ms"] == 7000.0
        assert profile["spans"]["child"]["self_ms"] == 3000.0

    def test_sequential_nested_spans_all_subtract(self, tracer, clock):
        parent = tracer.start_span("parent")          # 0 .. 10
        clock.t = 1.0
        first = tracer.start_span("step")             # 1 .. 4
        clock.t = 4.0
        tracer.end_span(first)
        second = tracer.start_span("step")            # 4 .. 9
        clock.t = 9.0
        tracer.end_span(second)
        clock.t = 10.0
        tracer.end_span(parent)
        profile = profile_summary(tracer)
        assert profile["spans"]["step"]["count"] == 2
        assert profile["spans"]["step"]["inclusive_ms"] == 8000.0
        assert profile["spans"]["parent"]["self_ms"] == 2000.0

    def test_event_time_subtracts_from_its_span(self, tracer, clock):
        span = tracer.start_span("phase", kind="phase")   # 0 .. 10
        event(tracer, start=1.0, duration=4.0)
        clock.t = 10.0
        tracer.end_span(span)
        profile = profile_summary(tracer)
        assert profile["spans"]["phase"]["self_ms"] == 6000.0
        assert profile["phases"]["phase"]["queries"] == 1

    def test_zero_duration_span_has_zero_times(self, tracer, clock):
        span = tracer.start_span("instant")
        tracer.end_span(span)                          # same tick
        profile = profile_summary(tracer)
        assert profile["spans"]["instant"]["inclusive_ms"] == 0.0
        assert profile["spans"]["instant"]["self_ms"] == 0.0

    def test_open_parent_self_time_is_clamped_at_zero(self, tracer, clock):
        # the parent is exported mid-run: its elapsed-so-far (5 s) is
        # smaller than what its finished children account for (3 s span
        # + 4 s event), so unclamped self time would be negative
        tracer.start_span("parent")                    # open, started at 0
        clock.t = 1.0
        child = tracer.start_span("child")             # 1 .. 4
        clock.t = 4.0
        tracer.end_span(child)
        event(tracer, start=4.0, duration=4.0)
        clock.t = 5.0
        profile = profile_summary(tracer)
        assert profile["spans"]["parent"]["open"] is True
        assert profile["spans"]["parent"]["inclusive_ms"] == 5000.0
        assert profile["spans"]["parent"]["self_ms"] == 0.0

    def test_open_leaf_span_reports_elapsed_so_far(self, tracer, clock):
        tracer.start_span("running")
        clock.t = 3.0
        profile = profile_summary(tracer)
        assert profile["spans"]["running"]["inclusive_ms"] == 3000.0
        assert profile["spans"]["running"]["self_ms"] == 3000.0

    def test_render_marks_open_spans(self, tracer, clock):
        tracer.start_span("running")
        clock.t = 1.0
        text = render_profile(profile_summary(tracer))
        assert "running (open)" in text
        assert "# Hotspots" in text


class TestPhaseBreakdown:
    def build(self, tracer, clock):
        root = tracer.start_span("pipeline", kind="pipeline")  # 0 .. 20
        clock.t = 1.0
        phase = tracer.start_span("IND-Discovery", kind="phase")  # 1 .. 11
        event(tracer, "count_distinct", start=2.0, duration=1.0, rows=50)
        event(tracer, "count_distinct", start=3.0, duration=0.0,
              cache_hit=True)
        clock.t = 4.0
        inner = tracer.start_span("engine")            # 4 .. 6
        event(tracer, "join_count", start=5.0, duration=1.0, rows=10)
        clock.t = 6.0
        tracer.end_span(inner)
        clock.t = 11.0
        tracer.end_span(phase)
        clock.t = 20.0
        tracer.end_span(root)

    def test_phase_rollup_covers_the_subtree(self, tracer, clock):
        self.build(tracer, clock)
        profile = profile_summary(tracer)
        phase = profile["phases"]["IND-Discovery"]
        # the join_count under the nested engine span still counts
        assert phase["queries"] == 3
        assert phase["primitives"]["count_distinct"]["calls"] == 2
        assert phase["primitives"]["count_distinct"]["hit_rate"] == 0.5
        assert phase["primitives"]["count_distinct"]["rows_touched"] == 50
        assert phase["primitives"]["join_count"]["calls"] == 1
        assert phase["self_ms"] == (10 - 2 - 1 - 0) * 1000.0

    def test_run_total_primitives_match_events(self, tracer, clock):
        self.build(tracer, clock)
        profile = profile_summary(tracer)
        assert profile["totals"]["queries"] == 3
        assert profile["primitives"]["count_distinct"]["duration_ms"] == 1000.0


class TestCollapsedStacks:
    def test_stacks_fold_events_as_leaf_frames(self, tracer, clock):
        root = tracer.start_span("pipeline")           # 0 .. 10
        clock.t = 1.0
        phase = tracer.start_span("IND-Discovery", kind="phase")  # 1 .. 7
        event(tracer, "count_distinct", start=2.0, duration=2.0)
        clock.t = 7.0
        tracer.end_span(phase)
        clock.t = 10.0
        tracer.end_span(root)
        lines = dict(
            line.rsplit(" ", 1) for line in collapsed_stacks(trace_records(tracer))
        )
        # values are integer microseconds of self time
        assert lines["pipeline"] == str(4 * 1_000_000)
        assert lines["pipeline;IND-Discovery"] == str(4 * 1_000_000)
        assert lines["pipeline;IND-Discovery;count_distinct"] == str(2 * 1_000_000)

    def test_write_collapsed_round_trips(self, tracer, clock, tmp_path):
        with tracer.span("pipeline"):
            event(tracer, start=0.5, duration=0.25)
            clock.t = 1.0
        path = tmp_path / "trace.collapsed"
        write_collapsed(trace_records(tracer), str(path))
        for line in path.read_text().splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack
            assert int(value) >= 0

    def test_event_outside_any_span_gets_a_synthetic_root(self, tracer):
        event(tracer, "fd_holds", start=0.0, duration=1.0)
        lines = collapsed_stacks(trace_records(tracer))
        assert lines == [f"(no span);fd_holds {1_000_000}"]


class TestSpeedscope:
    def build(self, tracer, clock):
        root = tracer.start_span("pipeline")           # 0 .. 10
        clock.t = 1.0
        phase = tracer.start_span("IND-Discovery", kind="phase")  # 1 .. 8
        event(tracer, "count_distinct", start=2.0, duration=3.0)
        clock.t = 8.0
        tracer.end_span(phase)
        clock.t = 10.0
        tracer.end_span(root)

    def test_document_shape_and_tags(self, tracer, clock):
        self.build(tracer, clock)
        document = speedscope_document(trace_records(tracer), name="unit")
        assert document["$schema"] == SPEEDSCOPE_SCHEMA
        assert document["exporter"] == PROFILE_FORMAT
        assert document["profiles"][0]["unit"] == "milliseconds"
        names = [f["name"] for f in document["shared"]["frames"]]
        assert names == ["pipeline", "IND-Discovery", "count_distinct"]

    def test_events_are_balanced_and_properly_nested(self, tracer, clock):
        self.build(tracer, clock)
        document = speedscope_document(trace_records(tracer))
        stack = []
        last_at = 0.0
        for entry in document["profiles"][0]["events"]:
            assert entry["at"] >= last_at
            last_at = entry["at"]
            if entry["type"] == "O":
                stack.append(entry["frame"])
            else:
                assert entry["type"] == "C"
                assert stack.pop() == entry["frame"]
        assert stack == []
        assert document["profiles"][0]["endValue"] == 10000.0

    def test_open_spans_are_closed_at_elapsed_so_far(self, tracer, clock):
        tracer.start_span("pipeline")
        clock.t = 1.0
        tracer.start_span("IND-Discovery", kind="phase")
        clock.t = 4.0
        document = speedscope_document(trace_records(tracer))
        opens = sum(1 for e in document["profiles"][0]["events"] if e["type"] == "O")
        closes = sum(1 for e in document["profiles"][0]["events"] if e["type"] == "C")
        assert opens == closes == 2

    def test_write_speedscope_emits_valid_json(self, tracer, clock, tmp_path):
        self.build(tracer, clock)
        path = tmp_path / "trace.speedscope.json"
        write_speedscope(trace_records(tracer), str(path))
        document = json.loads(path.read_text())
        assert document["exporter"] == PROFILE_FORMAT


class TestFromFile:
    def test_profile_from_reread_trace_matches_live(self, tracer, clock, tmp_path):
        from repro.obs import read_trace_jsonl, write_trace_jsonl

        with tracer.span("pipeline"):
            with tracer.span("IND-Discovery", kind="phase"):
                event(tracer, start=2.0, duration=1.0, rows=3)
                clock.t = 5.0
            clock.t = 9.0
        live = profile_summary(tracer)
        path = tmp_path / "t.jsonl"
        write_trace_jsonl(tracer, str(path))
        reread = profile_from_records(read_trace_jsonl(str(path)))
        assert reread == live


class TestMemoryProfiling:
    def test_default_tracer_records_no_memory_attributes(self):
        tracer = Tracer()
        with tracer.span("work"):
            _ = [0] * 1000
        assert "mem_peak_kb" not in tracer.spans[0].attributes
        assert tracer.profiles_memory is False

    def test_peaks_are_recorded_per_span(self):
        tracer = Tracer(profile_memory=True)
        assert tracer.profiles_memory is True
        with tracer.span("outer"):
            with tracer.span("inner"):
                ballast = [0] * 200_000       # ~1.6 MB of pointers
            del ballast
        outer, inner = tracer.spans
        assert inner.attributes["mem_peak_kb"] > 1000.0
        assert outer.attributes["mem_peak_kb"] >= inner.attributes["mem_peak_kb"]
        assert inner.attributes["mem_current_kb"] >= 0.0

    def test_peaks_survive_the_jsonl_round_trip(self, tmp_path):
        from repro.obs import read_trace_jsonl, write_trace_jsonl

        tracer = Tracer(profile_memory=True)
        with tracer.span("phase", kind="phase"):
            _ = [0] * 10_000
        path = tmp_path / "mem.jsonl"
        write_trace_jsonl(tracer, str(path))
        spans = [r for r in read_trace_jsonl(str(path)) if r.get("type") == "span"]
        assert spans[0]["attributes"]["mem_peak_kb"] >= 0.0
