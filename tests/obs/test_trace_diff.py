"""Trace-diff engine tests: kind sniffing, ranking, explanations.

Ends with the acceptance scenario from the issue: two recorded traces
of the paper's worked example — one on the memory backend, one on the
SQLite pushdown backend — diffed through the real CLI, with at least
one primitive-level delta ranked and explained by its cache-hit-rate
change.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    METRICS_FORMAT,
    TRACE_FORMAT,
    Tracer,
    trace_records,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.profile import (
    detect_export_kind,
    diff_views,
    load_export,
    render_diff,
    view_from_export,
)
from tests.obs.test_profile import ManualClock, event


def make_trace(slow: bool) -> Tracer:
    """A two-phase run; the slow variant loses its cache and doubles."""
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    root = tracer.start_span("pipeline", kind="pipeline")
    clock.t = 1.0
    phase = tracer.start_span("IND-Discovery", kind="phase")
    for i in range(4):
        event(
            tracer,
            "count_distinct",
            start=1.0 + i,
            duration=2.0 if slow else 0.5,
            cache_hit=not slow,
            rows=100 if slow else 0,
        )
    clock.t = 11.0 if slow else 5.0
    tracer.end_span(phase)
    clock.t = 12.0 if slow else 6.0
    tracer.end_span(root)
    return tracer


class TestKindDetection:
    def test_trace_and_metrics_files_are_told_apart(self, tmp_path):
        tracer = make_trace(slow=False)
        trace_path = tmp_path / "run.trace.jsonl"
        metrics_path = tmp_path / "run.metrics.json"
        write_trace_jsonl(tracer, str(trace_path))
        write_metrics_json(tracer, str(metrics_path))
        assert detect_export_kind(str(trace_path))[0] == TRACE_FORMAT
        assert detect_export_kind(str(metrics_path))[0] == METRICS_FORMAT

    def test_provenance_files_are_recognized(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text(
            '{"type": "provenance", "format": "repro/provenance@1", '
            '"nodes": 0, "edges": 0}\n'
        )
        assert detect_export_kind(str(path))[0] == "repro/provenance@1"

    def test_unknown_documents_are_unknown(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": "world"}\n')
        assert detect_export_kind(str(path))[0] == "unknown"

    def test_load_export_mismatch_is_a_one_line_error(self, tmp_path):
        tracer = make_trace(slow=False)
        metrics_path = tmp_path / "m.json"
        write_metrics_json(tracer, str(metrics_path))
        with pytest.raises(ValueError) as excinfo:
            load_export(str(metrics_path), TRACE_FORMAT)
        message = str(excinfo.value)
        assert "repro/metrics@1" in message
        assert "repro/trace@1" in message
        assert "\n" not in message

    def test_load_export_accepts_the_right_kind(self, tmp_path):
        tracer = make_trace(slow=False)
        trace_path = tmp_path / "t.jsonl"
        write_trace_jsonl(tracer, str(trace_path))
        records = load_export(str(trace_path), TRACE_FORMAT)
        assert records[0]["format"] == TRACE_FORMAT


class TestDiffEngine:
    def views(self):
        fast = view_from_export(TRACE_FORMAT, trace_records(make_trace(False)))
        slow = view_from_export(TRACE_FORMAT, trace_records(make_trace(True)))
        return fast, slow

    def test_primitive_deltas_are_ranked_by_absolute_delta(self):
        fast, slow = self.views()
        diff = diff_views(fast, slow)
        assert diff["primitives"][0]["name"] == "count_distinct"
        # 4 calls × (2.0 - 0.5) s = 6 s slower
        assert diff["primitives"][0]["delta_ms"] == 6000.0
        deltas = [abs(r["delta_ms"]) for r in diff["primitives"]]
        assert deltas == sorted(deltas, reverse=True)

    def test_cache_hit_rate_delta_is_the_explanation(self):
        fast, slow = self.views()
        row = diff_views(fast, slow)["primitives"][0]
        assert row["hit_rate_a"] == 1.0
        assert row["hit_rate_b"] == 0.0
        assert "cache hit-rate 100% -> 0%" in row["explanation"]
        assert "rows scanned" in row["explanation"]

    def test_identical_views_have_zero_deltas(self):
        fast, _ = self.views()
        diff = diff_views(fast, fast)
        assert all(r["delta_ms"] == 0.0 for r in diff["primitives"])
        assert all(r["delta_ms"] == 0.0 for r in diff["spans"])
        assert (
            diff["primitives"][0]["explanation"]
            == "same calls, same cache behavior"
        )

    def test_span_self_time_deltas_are_present_for_traces(self):
        fast, slow = self.views()
        diff = diff_views(fast, slow)
        names = [r["name"] for r in diff["spans"]]
        assert "IND-Discovery" in names and "pipeline" in names

    def test_metrics_views_diff_without_span_section(self, tmp_path):
        a_path, b_path = tmp_path / "a.json", tmp_path / "b.json"
        write_metrics_json(make_trace(False), str(a_path))
        write_metrics_json(make_trace(True), str(b_path))
        views = [
            view_from_export(*detect_export_kind(str(p)))
            for p in (a_path, b_path)
        ]
        diff = diff_views(*views)
        assert diff["spans"] == []
        assert diff["phases"][0]["name"] == "IND-Discovery"
        assert diff["primitives"][0]["delta_ms"] == 6000.0

    def test_view_from_export_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            view_from_export("repro/provenance@1", [])

    def test_render_diff_tables(self):
        fast, slow = self.views()
        text = render_diff(diff_views(fast, slow), "fast", "slow")
        assert "## Self time by span" in text
        assert "## Primitives" in text
        assert "cache hit-rate 100% -> 0%" in text


class TestPaperExampleAcceptance:
    """The issue's acceptance scenario, through the real pipeline + CLI."""

    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        from repro.backends import SQLiteBackend
        from repro.core import DBREPipeline, ScriptedExpert
        from repro.workloads.paper_example import (
            build_paper_database,
            paper_expert_script,
            paper_program_corpus,
        )

        outdir = tmp_path_factory.mktemp("paper-traces")
        paths = {}
        for label in ("memory", "sqlite"):
            database = build_paper_database()
            if label == "sqlite":
                database = database.copy(backend=SQLiteBackend())
            tracer = Tracer()
            pipeline = DBREPipeline(
                database, ScriptedExpert(paper_expert_script()), tracer=tracer
            )
            pipeline.run(corpus=paper_program_corpus())
            paths[label] = str(outdir / f"paper.{label}.trace.jsonl")
            write_trace_jsonl(tracer, paths[label])
            database.close()
        return paths

    def test_backends_differ_in_cache_behavior_not_call_count(self, traces):
        views = {
            label: view_from_export(*detect_export_kind(path))
            for label, path in traces.items()
        }
        diff = diff_views(views["memory"], views["sqlite"])
        assert diff["primitives"], "the worked example must issue primitives"
        top = diff["primitives"][0]
        # same logical stream on both backends ...
        assert all(r["calls_a"] == r["calls_b"] for r in diff["primitives"])
        # ... but at least one primitive's cache behavior differs and is
        # named as the explanation of its ranked delta
        explained = [
            r for r in diff["primitives"] if "cache hit-rate" in r["explanation"]
        ]
        assert explained, f"no cache-hit-rate delta explained: {diff['primitives']}"
        assert top["delta_ms"] != 0.0

    def test_cli_trace_diff_ranks_and_explains(self, traces, capsys):
        from repro.cli import main

        assert main(["trace", "diff", traces["memory"], traces["sqlite"]]) == 0
        out = capsys.readouterr().out
        assert "# Trace diff" in out
        assert "## Primitives" in out
        assert "cache hit-rate" in out

    def test_cli_trace_diff_accepts_metrics_files(self, traces, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import metrics_from_records, read_trace_jsonl

        paths = []
        for label, trace_path in traces.items():
            metrics = metrics_from_records(read_trace_jsonl(trace_path))
            path = tmp_path / f"{label}.metrics.json"
            path.write_text(json.dumps(metrics))
            paths.append(str(path))
        assert main(["trace", "diff", *paths]) == 0
        out = capsys.readouterr().out
        assert "## Phase durations" in out
        assert "## Primitives" in out

    def test_cli_trace_diff_rejects_undiffable_files(self, traces, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": "world"}\n')
        assert main(["trace", "diff", traces["memory"], str(bogus)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "bogus.json" in err
