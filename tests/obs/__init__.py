"""Tests for the observability layer (tracer, instrumentation, export)."""
