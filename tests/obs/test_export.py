"""Exporters: JSONL round-trip, derived metrics, human rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    METRICS_FORMAT,
    TRACE_FORMAT,
    Tracer,
    metrics_from_records,
    metrics_summary,
    read_trace_jsonl,
    summarize_trace,
    trace_records,
    write_trace_jsonl,
)


class TickClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


@pytest.fixture
def traced():
    """A tracer with a root span, two phases and three events."""
    tracer = Tracer(clock=TickClock())
    with tracer.span("pipeline", kind="pipeline"):
        with tracer.span("IND-Discovery", kind="phase"):
            tracer.record_event(
                primitive="count_distinct", backend="memory",
                relations=("r",), attributes=(("a",),),
                start=tracer.now(), duration=0.002,
                cache_hit=False, rows_touched=10,
            )
            tracer.record_event(
                primitive="count_distinct", backend="memory",
                relations=("r",), attributes=(("a",),),
                start=tracer.now(), duration=0.0,
                cache_hit=True, rows_touched=0,
            )
        with tracer.span("LHS-Discovery", kind="phase"):
            tracer.record_event(
                primitive="fd_holds", backend="sqlite",
                relations=("r",), attributes=(("a",), ("b",)),
                start=tracer.now(), duration=0.001,
                cache_hit=False, rows_touched=4,
            )
    return tracer


class TestJsonlRoundTrip:
    def test_records_survive_write_and_reread_exactly(self, traced, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(traced, path)
        assert read_trace_jsonl(path) == trace_records(traced)

    def test_header_line_carries_format_and_counts(self, traced, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(traced, path)
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header == {
            "type": "trace", "format": TRACE_FORMAT, "spans": 3, "events": 3,
        }

    def test_records_are_ordered_by_start(self, traced):
        records = trace_records(traced)[1:]
        starts = [r["start_ms"] for r in records]
        assert starts == sorted(starts)
        assert records[0]["name"] == "pipeline"

    def test_reading_a_non_trace_file_is_a_value_error(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"format": "something/else@9"}\n')
        with pytest.raises(ValueError):
            read_trace_jsonl(str(path))

    def test_reading_an_empty_file_is_a_value_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_trace_jsonl(str(path))

    def test_truncated_line_reports_file_and_line_number(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(traced, str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1] + [lines[1][: len(lines[1]) // 2]]))
        with pytest.raises(ValueError, match=r"trace\.jsonl:2: invalid JSON"):
            read_trace_jsonl(str(path))


class TestOpenSpans:
    @pytest.fixture
    def half_open(self):
        """A tracer whose run was exported before the root span closed."""
        tracer = Tracer(clock=TickClock())
        tracer.start_span("pipeline", kind="pipeline")
        with tracer.span("IND-Discovery", kind="phase"):
            pass
        return tracer

    def test_open_spans_are_flagged_in_records(self, half_open):
        spans = {r["name"]: r for r in trace_records(half_open) if r.get("type") == "span"}
        assert spans["pipeline"]["open"] is True
        assert "open" not in spans["IND-Discovery"]

    def test_open_span_duration_is_elapsed_so_far(self, half_open):
        spans = {r["name"]: r for r in trace_records(half_open) if r.get("type") == "span"}
        assert spans["pipeline"]["duration_ms"] > 0

    def test_summarize_marks_open_spans(self, half_open):
        text = summarize_trace(trace_records(half_open))
        assert "- pipeline [pipeline]" in text
        assert "(open)" in text
        assert text.count("(open)") == 1


class TestMetrics:
    def test_live_and_reread_summaries_agree(self, traced, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(traced, path)
        assert metrics_from_records(read_trace_jsonl(path)) == metrics_summary(traced)

    def test_totals_summarize_the_event_stream(self, traced):
        metrics = metrics_summary(traced)
        assert metrics["format"] == METRICS_FORMAT
        assert metrics["totals"]["queries"] == 3
        assert metrics["totals"]["cache_hits"] == 1
        assert metrics["totals"]["rows_touched"] == 14
        assert metrics["totals"]["spans"] == 3

    def test_per_phase_queries_count_subtree_events(self, traced):
        phases = metrics_summary(traced)["phases"]
        assert phases["IND-Discovery"]["queries"] == 2
        assert phases["LHS-Discovery"]["queries"] == 1

    def test_per_primitive_and_per_backend_rollups(self, traced):
        metrics = metrics_summary(traced)
        cd = metrics["primitives"]["count_distinct"]
        assert cd["calls"] == 2
        assert cd["cache_hits"] == 1 and cd["cache_misses"] == 1
        assert cd["rows_touched"] == 10
        assert metrics["backends"]["memory"]["calls"] == 2
        assert metrics["backends"]["sqlite"]["calls"] == 1

    def test_nested_span_events_roll_up_to_the_enclosing_phase(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("pipeline", kind="pipeline"):
            with tracer.span("Restruct", kind="phase"):
                with tracer.span("fd-narrowing"):  # an inner, non-phase span
                    tracer.record_event(
                        primitive="fd_holds", backend="memory",
                        relations=("r",), attributes=(("a",), ("b",)),
                        start=tracer.now(), duration=0.0,
                        cache_hit=False, rows_touched=1,
                    )
        assert metrics_summary(tracer)["phases"]["Restruct"]["queries"] == 1


class TestSummarize:
    def test_renders_span_tree_and_primitive_table(self, traced):
        text = summarize_trace(trace_records(traced))
        assert "- pipeline [pipeline]" in text
        assert "  - IND-Discovery [phase]" in text
        assert "# Primitives" in text
        assert "count_distinct" in text and "fd_holds" in text

    def test_empty_tracer_renders_header_only(self):
        text = summarize_trace(trace_records(Tracer()))
        assert text.startswith("# Trace — 0 span(s), 0 event(s)")
