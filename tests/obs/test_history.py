"""Cross-run analytics: robust drift scores, bench trends, archive trends."""

import json

from repro.obs.archive import RunArchive
from repro.obs.history import (
    DRIFT_THRESHOLD,
    archive_trends,
    bench_drift_report,
    detect_drift,
    load_bench_history,
    render_archive_trends,
    render_bench_trends,
    robust_zscores,
)
from repro.obs.live import LiveStats


def history_record(mode="quick", wall_ms=10.0, queries=30, hits=5):
    return {
        "format": "repro/bench-history@1",
        "mode": mode,
        "gate": "pass",
        "heads": {
            "s1-head": {
                "wall_ms": wall_ms,
                "queries": queries,
                "cache_hits": hits,
                "latency_units": {},
            }
        },
    }


class TestRobustScores:
    def test_outlier_scores_high_without_inflating_its_own_yardstick(self):
        values = [10, 11, 10, 10.5, 11, 10, 30]
        scores = robust_zscores(values)
        assert scores[-1] > 10  # mean/stddev would give ~2.2 here
        assert all(abs(score) < 1.5 for score in scores[:-1])

    def test_mad_zero_falls_back_to_mean_absolute_deviation(self):
        flagged = detect_drift([1, 1, 1, 1, 1, 50])
        assert flagged and flagged[0][0] == 5

    def test_constant_series_cannot_drift(self):
        assert robust_zscores([3, 3, 3, 3]) == [0.0, 0.0, 0.0, 0.0]
        assert detect_drift([3, 3, 3, 3]) == []

    def test_short_series_are_never_flagged(self):
        assert detect_drift([1, 100]) == []
        assert detect_drift([1, 1, 100]) == []

    def test_threshold_is_respected(self):
        values = [10, 11, 10, 10.5, 11, 10, 14]
        assert detect_drift(values, threshold=100.0) == []
        assert detect_drift(values, threshold=1.0)

    def test_empty_series(self):
        assert robust_zscores([]) == []
        assert detect_drift([]) == []


class TestBenchHistory:
    def test_load_filters_mode_and_skips_garbage(self, tmp_path):
        path = tmp_path / "history.jsonl"
        lines = [
            json.dumps(history_record(mode="quick")),
            "not json at all {",
            json.dumps({"format": "something-else@1"}),
            json.dumps(history_record(mode="full")),
            json.dumps(history_record(mode="quick", wall_ms=11.0)),
        ]
        path.write_text("\n".join(lines) + "\n")
        records = load_bench_history(str(path), mode="quick")
        assert len(records) == 2
        assert load_bench_history(str(path)) and len(
            load_bench_history(str(path))
        ) == 3

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_bench_history(str(tmp_path / "absent.jsonl")) == []

    def test_drift_report_flags_only_the_latest_run(self, tmp_path):
        records = [history_record(wall_ms=w) for w in
                   (10.0, 10.5, 40.0, 10.2, 10.4, 10.1, 10.3)]
        # the index-2 spike is history, not news: not reported
        assert bench_drift_report(records) == []
        records.append(history_record(wall_ms=45.0))
        messages = bench_drift_report(records)
        assert len(messages) == 1
        assert "s1-head" in messages[0] and "wall_ms" in messages[0]

    def test_render_marks_drift(self):
        records = [history_record(wall_ms=w) for w in
                   (10.0, 10.5, 10.2, 10.4, 10.1, 45.0)]
        rendered = render_bench_trends(records)
        assert "DRIFT:wall_ms" in rendered
        assert "s1-head" in rendered
        assert render_bench_trends([]) == "no bench history\n"


def archived_run(archive, job_id, key, phase_ms, calls=10, hits=5, pool=0):
    stats = LiveStats()
    for phase, ms in phase_ms.items():
        stats.phase_runs[phase] = 1
        stats.phase_ms[phase] = ms
    stats.primitive_calls["count_distinct"] = calls
    stats.primitive_cache_hits["count_distinct"] = hits
    if pool:
        stats.pool_events["respawn"] = pool
    archive.store(
        {"type": "job", "id": job_id, "label": job_id, "state": "done"},
        key,
        stats=stats,
    )


class TestArchiveTrends:
    def test_groups_by_fingerprint_pair(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        archived_run(archive, "job-1", ("db1", "wl1", "a"), {"IND": 10.0})
        archived_run(archive, "job-2", ("db1", "wl1", "b"), {"IND": 12.0},
                     pool=2)
        archived_run(archive, "job-3", ("db2", "wl1", "a"), {"IND": 50.0})
        rows = archive_trends(archive)
        assert len(rows) == 2
        first = next(r for r in rows if r["database_fingerprint"] == "db1")
        assert first["runs"] == 2
        assert first["phase_ms"]["IND"] == 22.0
        assert first["cache_hit_rate"] == 0.5
        assert first["pool_incidents"] == 2

    def test_drift_flags_an_anomalous_run_on_the_same_fingerprint(
        self, tmp_path
    ):
        archive = RunArchive(str(tmp_path))
        walls = (10.0, 10.5, 10.2, 10.4, 10.1, 60.0)
        for index, wall in enumerate(walls):
            archived_run(
                archive, f"job-{index}", ("db", "wl", str(index)),
                {"IND": wall},
            )
        rows = archive_trends(archive)
        assert len(rows) == 1
        assert rows[0]["drift"], "the 6x run on the same fingerprint " \
                                 "was not flagged"
        rendered = render_archive_trends(archive)
        assert "DRIFT" in rendered

    def test_empty_archive_renders(self, tmp_path):
        assert render_archive_trends(
            RunArchive(str(tmp_path))
        ) == "archive is empty\n"
        assert DRIFT_THRESHOLD == 3.5
