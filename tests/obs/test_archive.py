"""The durable run archive: round trips, crash windows, manager restore."""

import json
import os

import pytest

from repro.obs.archive import ARCHIVE_FORMAT, RunArchive, run_key
from repro.obs.live import LiveStats
from repro.service.jobs import JobManager
from repro.workloads.paper_example import build_paper_database, paper_equijoins


def make_stats():
    stats = LiveStats()
    stats.events["progress"] = 7
    stats.phase_runs["IND-Discovery"] = 1
    stats.phase_ms["IND-Discovery"] = 12.5
    stats.primitive_calls["count_distinct"] = 9
    stats.primitive_cache_hits["count_distinct"] = 4
    return stats


def store_run(archive, job_id="job-1", state="done", key=("db", "wl", "{}")):
    return archive.store(
        {"type": "job", "id": job_id, "label": job_id, "state": state,
         "cached": False, "summary": {"fds": 3}},
        key,
        trace=[{"format": "repro/trace@1"}, {"type": "span"}],
        metrics={"format": "repro/metrics@1", "totals": {}},
        live=[{"format": "repro/live@1"},
              {"type": "progress", "seq": 1},
              {"type": "end", "seq": 2, "state": state}],
        stats=make_stats(),
        eer="ENTITY a\n",
    )


class TestRunKey:
    def test_deterministic_and_content_sensitive(self):
        assert run_key("a", "b", "c") == run_key("a", "b", "c")
        assert run_key("a", "b", "c") != run_key("a", "b", "d")
        # the separator keeps ("ab","c") and ("a","bc") apart
        assert run_key("ab", "c", "") != run_key("a", "bc", "")
        assert len(run_key("a", "b", "c")) == 20


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        key = store_run(archive)
        run = archive.load(key)
        assert run is not None
        assert run.job_id == "job-1" and run.state == "done"
        assert run.cache_key == ("db", "wl", "{}")
        assert run.record["summary"] == {"fds": 3}
        assert run.eer == "ENTITY a\n"
        assert run.stats.primitive_calls["count_distinct"] == 9
        assert set(run.artifacts) == {"trace", "metrics", "live"}

    def test_artifacts_read_back(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        key = store_run(archive)
        live = archive.read_artifact(key, "live")
        assert live[0]["format"] == "repro/live@1"
        assert live[-1]["type"] == "end"
        assert archive.read_metrics(key)["format"] == "repro/metrics@1"
        assert archive.read_artifact(key, "provenance") is None

    def test_unknown_artifact_name_raises(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        with pytest.raises(ValueError):
            archive.read_artifact("whatever", "metrics")

    def test_index_resolves_latest_per_key(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        store_run(archive, job_id="job-1", state="failed")
        store_run(archive, job_id="job-2", state="done")  # same key: re-run
        entries = archive.index()
        assert len(entries) == 1
        assert entries[0]["job"] == "job-2"
        runs = archive.runs()
        assert len(runs) == 1 and runs[0].job_id == "job-2"

    def test_missing_index_is_an_empty_archive(self, tmp_path):
        assert RunArchive(str(tmp_path)).index() == []

    def test_foreign_index_is_rejected(self, tmp_path):
        path = tmp_path / "index.jsonl"
        path.write_text(json.dumps({"format": "something-else@9"}) + "\n")
        with pytest.raises(ValueError):
            RunArchive(str(tmp_path)).index()


class TestCrashWindows:
    def test_torn_index_line_loses_one_run_not_the_archive(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        store_run(archive, job_id="job-1", key=("a", "b", "c"))
        store_run(archive, job_id="job-2", key=("d", "e", "f"))
        index = os.path.join(str(tmp_path), "index.jsonl")
        with open(index, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(index, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][:10])  # the crash window: a torn append
        runs = RunArchive(str(tmp_path)).runs()
        assert [run.job_id for run in runs] == ["job-1"]

    def test_pruned_run_directory_is_skipped(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        key_a = store_run(archive, job_id="job-1", key=("a", "b", "c"))
        store_run(archive, job_id="job-2", key=("d", "e", "f"))
        # an operator reclaims space by deleting an old run directory
        manifest = os.path.join(str(tmp_path), "runs", key_a, "record.json")
        os.remove(manifest)
        runs = RunArchive(str(tmp_path)).runs()
        assert [run.job_id for run in runs] == ["job-2"]
        # the index still mentions both; load() of the pruned one is None
        assert len(archive.index()) == 2
        assert archive.load(key_a) is None


class TestManagerRestore:
    def test_ledger_cache_and_ids_survive_a_restart(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        with JobManager(runners=1, archive=archive) as manager:
            job = manager.submit(
                build_paper_database(), equijoins=paper_equijoins(),
                label="first",
            )
            manager.result(job.id, timeout=60)
            assert wait_archived(job)
            record = job.as_record()

        with JobManager(runners=1, archive=RunArchive(str(tmp_path))) as mgr:
            assert mgr.restored()["jobs"] == 1
            restored = mgr.job(job.id)
            assert restored.as_record() == record
            assert restored.archived and restored.trace is None
            # the archived live stream replays, end sentinel included
            replay = mgr.replay_records(restored)
            assert replay and replay[-1]["type"] == "end"
            # a repeat submission is a cache hit served by a dead process
            hit = mgr.submit(
                build_paper_database(), equijoins=paper_equijoins(),
                label="again",
            )
            assert hit.cached and hit.state == "done"
            assert hit.as_record()["summary"] == record["summary"]
            # the id counter resumed past the restored ids
            assert hit.id != job.id

    def test_failed_runs_restore_but_do_not_seed_the_cache(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        store_run(archive, job_id="job-1", state="failed")
        with JobManager(runners=1, archive=RunArchive(str(tmp_path))) as mgr:
            assert mgr.restored()["jobs"] == 1
            assert mgr.job("job-1").state == "failed"
            assert mgr._cache == {}

    def test_restored_stats_feed_the_metrics_totals(self, tmp_path):
        from repro.service.metrics import render_metrics

        archive = RunArchive(str(tmp_path))
        store_run(archive, job_id="job-1")
        with JobManager(runners=1, archive=RunArchive(str(tmp_path))) as mgr:
            exposition = render_metrics(mgr)
        assert "repro_jobs_restored_total 1" in exposition
        assert (
            'repro_primitive_calls_total{primitive="count_distinct"} 9'
            in exposition
        )

    def test_archive_format_tag_is_versioned(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        store_run(archive)
        with open(tmp_path / "index.jsonl", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header == {"type": "header", "format": ARCHIVE_FORMAT}


def wait_archived(job, seconds=30):
    import time

    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        if job.archived:
            return True
        time.sleep(0.02)
    return False
