"""The executable backend contract.

Every registered :class:`ExtensionBackend` must answer the paper's four
instrumented primitives — and the row/lifecycle operations around them —
identically on the Figure-1 example: same counts, same NULL handling,
same ``QueryCounter`` bookkeeping, same error surface.  The suite is
parametrized over the backend registry, so a new backend only has to
join ``tests/backends/conftest.py`` to inherit the whole contract.
"""

import pytest

from repro.exceptions import (
    ArityError,
    TypingError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational import Database, DatabaseSchema, RelationSchema
from repro.relational.domain import INTEGER, NULL
from repro.workloads.paper_example import build_paper_database


@pytest.fixture
def db(backend_factory) -> Database:
    return build_paper_database(backend=backend_factory())


class TestCountDistinct:
    def test_paper_section5_counts(self, db):
        assert db.count_distinct("Person", ("id",)) == 22
        assert db.count_distinct("HEmployee", ("no",)) == 15
        assert db.count_distinct("Assignment", ("dep",)) == 9
        assert db.count_distinct("Department", ("dep",)) == 8

    def test_nulls_skipped(self, db):
        # Department.emp has two NULLs among eight rows
        assert db.count_distinct("Department", ("emp",)) == 6
        assert db.count_distinct("Department", ("emp", "skill")) == 6

    def test_multi_attribute_and_order(self, db):
        assert db.count_distinct("HEmployee", ("no", "date")) == 30
        assert db.count_distinct("HEmployee", ("date", "no")) == 30

    def test_repeated_queries_stable_and_counted(self, db):
        first = db.count_distinct("Person", ("zip-code",))
        second = db.count_distinct("Person", ("zip-code",))
        assert first == second == 5
        assert db.counter.count_distinct == 2


class TestJoinCount:
    def test_paper_nei_shape(self, db):
        # the §6.1 Assignment/Department non-empty intersection: 9 vs 8, 6 shared
        assert db.join_count("Assignment", ("dep",), "Department", ("dep",)) == 6

    def test_full_inclusion_shape(self, db):
        assert db.join_count("HEmployee", ("no",), "Person", ("id",)) == 15

    def test_nulls_never_join(self, db):
        # Department.emp (6 distinct non-NULL) against HEmployee.no
        assert db.join_count("Department", ("emp",), "HEmployee", ("no",)) == 6

    def test_arity_mismatch(self, db):
        with pytest.raises(ArityError):
            db.join_count("HEmployee", ("no", "date"), "Person", ("id",))


class TestFDHolds:
    def test_paper_fds_hold(self, db):
        assert db.fd_holds("Department", ("emp",), ("skill", "proj"))
        assert db.fd_holds("Assignment", ("proj",), ("project-name",))
        assert db.fd_holds("Person", ("zip-code",), ("state",))

    def test_paper_fds_fail(self, db):
        assert not db.fd_holds("HEmployee", ("no",), ("salary",))
        assert not db.fd_holds("Department", ("proj",), ("emp",))
        assert not db.fd_holds("Assignment", ("emp",), ("dep",))

    def test_null_lhs_rows_skipped(self, db):
        # the two NULL-emp Department rows must not break emp -> location
        assert db.fd_holds("Department", ("emp",), ("skill",))

    def test_null_rhs_is_one_marked_value(self, backend_factory):
        schema = DatabaseSchema(
            [RelationSchema.build("t", ["k", "v"], types={"k": INTEGER})]
        )
        db = Database(schema, backend=backend_factory())
        db.insert_many("t", [[1, NULL], [1, NULL], [2, "x"]])
        assert db.fd_holds("t", ("k",), ("v",))
        db.insert("t", [1, "y"])  # NULL vs 'y' now disagree under key 1
        assert not db.fd_holds("t", ("k",), ("v",))


class TestInclusionHolds:
    def test_paper_inclusions(self, db):
        assert db.inclusion_holds("HEmployee", ("no",), "Person", ("id",))
        assert db.inclusion_holds("Department", ("emp",), "HEmployee", ("no",))
        assert not db.inclusion_holds("Assignment", ("dep",), "Department", ("dep",))
        assert not db.inclusion_holds("Person", ("id",), "HEmployee", ("no",))

    def test_null_bearing_tuples_skipped_on_the_left(self, db):
        # NULL Department.emp rows do not count as missing from HEmployee
        assert db.inclusion_holds("Department", ("emp",), "HEmployee", ("no",))

    def test_arity_mismatch(self, db):
        with pytest.raises(ArityError):
            db.inclusion_holds("HEmployee", ("no", "date"), "Person", ("id",))


class TestQueryCounter:
    def test_identical_bookkeeping(self, db):
        db.count_distinct("Person", ("id",))
        db.count_distinct("Person", ("id",))
        db.join_count("HEmployee", ("no",), "Person", ("id",))
        db.fd_holds("Department", ("emp",), ("skill",))
        db.inclusion_holds("HEmployee", ("no",), "Person", ("id",))
        assert db.counter.count_distinct == 2
        assert db.counter.join_count == 1
        assert db.counter.fd_checks == 1
        assert db.counter.inclusion_checks == 1
        assert db.counter.total() == 5


class TestRowAccess:
    def test_row_count_and_scan_order(self, db):
        assert db.backend.row_count("Department") == 8
        rows = list(db.backend.rows("Department"))
        assert len(rows) == 8
        assert rows[0][0] == "D1" and rows[-1][0] == "D8"

    def test_insert_mapping_defaults_to_null(self, backend_factory):
        schema = DatabaseSchema(
            [RelationSchema.build("t", ["a", "b"], types={"a": INTEGER})]
        )
        db = Database(schema, backend=backend_factory())
        db.insert("t", {"a": 1})
        (values,) = list(db.backend.rows("t"))
        assert values[0] == 1 and values[1] is NULL

    def test_insert_validates_typing(self, db):
        with pytest.raises(TypingError):
            db.insert("Person", ["not-an-int", "x", "y", 1, "69100", "Rhone"])

    def test_table_view_writes_through(self, db):
        before = db.count_distinct("Person", ("id",))
        db.table("Person").insert(
            [99, "person-99", "rue Zéro", 1, "69100", "Rhone"]
        )
        assert db.count_distinct("Person", ("id",)) == before + 1

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.table("Nobody")
        with pytest.raises(UnknownRelationError):
            db.count_distinct("Nobody", ("x",))
        with pytest.raises(UnknownRelationError):
            db.insert("Nobody", [1])

    def test_unknown_attribute(self, db):
        with pytest.raises(UnknownAttributeError):
            db.count_distinct("Person", ("not-there",))
        with pytest.raises(UnknownAttributeError):
            db.fd_holds("Person", ("id",), ("not-there",))


class TestRelationLifecycle:
    def test_create_insert_drop(self, backend_factory):
        db = Database(backend=backend_factory())
        db.create_relation(
            RelationSchema.build("t", ["v"], types={"v": INTEGER})
        )
        db.insert_many("t", [[1], [2], [2]])
        assert db.count_distinct("t", ("v",)) == 2
        db.drop_relation("t")
        with pytest.raises(UnknownRelationError):
            db.count_distinct("t", ("v",))

    def test_recreate_under_same_name_serves_fresh_results(self, backend_factory):
        """Regression: a recreated relation reaching the same mutation
        version as its predecessor must not serve the old distinct set."""
        db = Database(backend=backend_factory())
        schema = RelationSchema.build("t", ["v"], types={"v": INTEGER})
        db.create_relation(schema)
        db.insert_many("t", [[1], [2], [3]])       # version 3
        assert db.count_distinct("t", ("v",)) == 3
        db.drop_relation("t")
        db.create_relation(
            RelationSchema.build("t", ["v"], types={"v": INTEGER})
        )
        db.insert_many("t", [[7], [7], [7]])       # version 3 again
        assert db.count_distinct("t", ("v",)) == 1

    def test_replace_relation_projects_and_keeps_duplicates(self, backend_factory):
        db = Database(backend=backend_factory())
        db.create_relation(
            RelationSchema.build("t", ["a", "b"], types={"a": INTEGER})
        )
        db.insert_many("t", [[1, "x"], [1, "y"], [2, "z"]])
        assert db.count_distinct("t", ("a", "b")) == 3
        db.replace_relation(
            RelationSchema.build("t", ["a"], types={"a": INTEGER})
        )
        assert db.backend.row_count("t") == 3      # duplicates kept
        assert db.count_distinct("t", ("a",)) == 2
        with pytest.raises(UnknownAttributeError):
            db.count_distinct("t", ("b",))


class TestCopy:
    def test_copy_preserves_backend_kind_and_values(self, backend_factory):
        db = build_paper_database(backend=backend_factory())
        clone = db.copy()
        assert type(clone.backend) is type(db.backend)
        assert clone.count_distinct("Person", ("id",)) == 22
        clone.insert("Person", [99, "x", "y", 1, "69100", "Rhone"])
        assert db.count_distinct("Person", ("id",)) == 22   # original untouched

    def test_copy_converts_between_backends(self, backend_factory):
        from repro.backends import MemoryBackend

        db = build_paper_database(backend=backend_factory())
        materialized = db.copy(backend=MemoryBackend())
        assert materialized.count_distinct("Person", ("id",)) == 22


class TestProbeHook:
    """`probe(...)` — the observability contract behind `repro profile`.

    A probe predicts the cost of an imminent primitive without running
    it: `(cache_hit, rows_touched)`.  The prediction must track the
    distinct-value cache — cold scans cost the relation's row count,
    warm ones are free — and mutations must invalidate it.  Probing
    itself must never warm the cache.
    """

    def test_cold_distinct_probe_costs_one_scan(self, db):
        hit, rows = db.backend.probe(
            "count_distinct", ("Person",), (("id",),)
        )
        assert hit is False
        assert rows == db.backend.row_count("Person")

    def test_warm_distinct_probe_is_free(self, db):
        db.count_distinct("Person", ("id",))
        hit, rows = db.backend.probe(
            "count_distinct", ("Person",), (("id",),)
        )
        assert hit is True
        assert rows == 0

    def test_probe_is_side_effect_free(self, db):
        db.backend.probe("count_distinct", ("Person",), (("id",),))
        hit, _ = db.backend.probe(
            "count_distinct", ("Person",), (("id",),)
        )
        assert hit is False        # still cold: probing did not warm it

    def test_cold_join_probe_is_a_miss_with_scan_cost(self, db):
        both = db.backend.row_count("HEmployee") + db.backend.row_count(
            "Person"
        )
        hit, rows = db.backend.probe(
            "join_count",
            ("HEmployee", "Person"),
            (("no",), ("id",)),
        )
        assert hit is False
        assert 0 < rows <= both

    def test_warm_join_probe_is_a_hit(self, db):
        db.join_count("HEmployee", ("no",), "Person", ("id",))
        hit, rows = db.backend.probe(
            "join_count",
            ("HEmployee", "Person"),
            (("no",), ("id",)),
        )
        assert hit is True
        assert rows == 0

    def test_cold_fd_probe_costs_the_lhs_scan(self, db):
        hit, rows = db.backend.probe(
            "fd_holds", ("HEmployee",), (("no",), ("salary",))
        )
        assert hit is False
        assert rows == db.backend.row_count("HEmployee")

    def test_mutation_invalidates_the_prediction(self, db):
        db.count_distinct("Person", ("id",))
        db.insert("Person", [99, "person-99", "rue Zéro", 1, "69100", "Rhone"])
        hit, rows = db.backend.probe(
            "count_distinct", ("Person",), (("id",),)
        )
        assert hit is False
        assert rows == db.backend.row_count("Person")


class TestBatchContract:
    """The optional ``execute_batch`` hook and its serial-fallback twin.

    Every backend must produce identical answers through the batch
    executor, whether it implements the hook (SQLite: one grouped
    statement) or not (memory: the executor's serial/parallel path).
    """

    def _probes(self):
        from repro.engine import Probe

        return [
            Probe.distinct("Person", ("id",)),
            Probe.distinct("Department", ("emp", "skill")),
            Probe.join("HEmployee", ("no",), "Person", ("id",)),
            Probe.join("Assignment", ("dep",), "Department", ("dep",)),
            Probe.fd("Department", ("emp",), ("skill", "proj")),
            Probe.fd("HEmployee", ("no",), ("salary",)),
            Probe.inclusion("HEmployee", ("no",), "Person", ("id",)),
            Probe.inclusion("Person", ("id",), "HEmployee", ("no",)),
        ]

    #: the serial ground truth for the probes above, backend-independent
    EXPECTED = [22, 6, 15, 6, True, False, True, False]

    def test_executor_answers_match_serial_primitives(self, db):
        from repro.engine import BatchExecutor

        assert BatchExecutor(db).run(self._probes()) == self.EXPECTED

    def test_hook_when_present_matches_primitives(self, db):
        hook = getattr(db.backend, "execute_batch", None)
        if not callable(hook):
            pytest.skip("backend has no execute_batch hook (fallback path)")
        assert list(hook(self._probes())) == self.EXPECTED

    def test_hook_results_align_positionally(self, db):
        hook = getattr(db.backend, "execute_batch", None)
        if not callable(hook):
            pytest.skip("backend has no execute_batch hook (fallback path)")
        probes = self._probes()
        reversed_answers = hook(list(reversed(probes)))
        assert list(reversed_answers) == list(reversed(self.EXPECTED))

    def test_hook_sees_mutations(self, db):
        """Batch answers must honor the same invalidation as primitives."""
        from repro.engine import BatchExecutor, Probe

        probe = [Probe.distinct("Person", ("id",))]
        assert BatchExecutor(db).run(probe) == [22]
        db.insert("Person", [99, "person-99", "rue Zéro", 1, "69100", "Rhone"])
        assert BatchExecutor(db).run(probe) == [23]

    def test_fallback_matches_hook(self, db):
        """Hiding the hook must not change a single answer."""
        from repro.engine import BatchExecutor

        class Veiled:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name in ("execute_batch", "parallel_safe"):
                    raise AttributeError(name)
                return getattr(self._inner, name)

        proxy = type("ProxyDB", (), {
            "backend": Veiled(db.backend), "tracer": db.tracer,
        })()
        engine = BatchExecutor(proxy, max_workers=1)
        assert engine.run(self._probes()) == self.EXPECTED
        assert engine.stats.batched_calls == 0
        assert engine.stats.backend_calls == len(self._probes())
