"""Paged-backend specifics: out-of-core behavior, telemetry, diagnostics.

The cross-backend semantics (primitive answers, NULL conventions,
lifecycle invalidation, batch fallback) are covered by the contract
suite in ``test_contract.py``, which the registry-driven conftest runs
over this backend too.  Here live the properties only the paged backend
has: bounded residency under a pool smaller than the extension,
buffer-pool counters surfacing in traces and metrics, storage-error
diagnostics, and the end-to-end differential acceptance run.
"""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, PagedBackend
from repro.core.expert import ScriptedExpert
from repro.core.pipeline import DBREPipeline
from repro.eer.render import render_text
from repro.exceptions import StorageError
from repro.obs.export import metrics_summary, trace_records
from repro.relational.database import Database
from repro.relational.domain import INTEGER
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.paper_example import (
    build_paper_database,
    paper_equijoins,
    paper_expert_script,
)

#: a pool of 8 frames of 256-byte pages — far smaller than the paper
#: extension, so every scan pays eviction and re-read
SMALL = {"pool_pages": 8, "page_size": 256}


def run_pipeline(backend, engine="serial"):
    db = build_paper_database(backend=backend)
    pipeline = DBREPipeline(
        db, ScriptedExpert(paper_expert_script()), engine=engine
    )
    result = pipeline.run(equijoins=paper_equijoins())
    return pipeline, result


def outcome(result):
    return {
        "inds": [repr(i) for i in result.inds],
        "fds": [repr(f) for f in result.fds],
        "ric": [repr(i) for i in result.ric],
        "schema": [repr(r) for r in result.restructured.schema],
        "eer": render_text(result.eer),
        "queries": result.extension_queries,
    }


class TestAcceptance:
    """The issue's acceptance run: pool smaller than the extension."""

    @pytest.mark.parametrize("engine", ["serial", "batched"])
    def test_paper_run_bit_identical_to_memory(self, engine):
        _, memory_result = run_pipeline(MemoryBackend(), engine)
        paged = PagedBackend(**SMALL)
        _, paged_result = run_pipeline(paged, engine)
        assert outcome(paged_result) == outcome(memory_result)
        # the run genuinely went out of core: the pool stayed at its
        # capacity and had to evict
        assert len(paged.pool) <= SMALL["pool_pages"]
        assert paged.pool.stats.evictions > 0

    def test_batched_engine_takes_the_serial_fallback(self):
        """No execute_batch, not parallel_safe: probes run one by one."""
        db = build_paper_database(backend=PagedBackend(**SMALL))
        pipeline = DBREPipeline(
            db, ScriptedExpert(paper_expert_script()), engine="batched"
        )
        result = pipeline.run(equijoins=paper_equijoins())
        stats = result.engine_stats
        assert stats is not None
        assert stats.batched_calls == 0
        assert stats.parallel_groups == 0
        assert stats.backend_calls == stats.unique_probes


class TestBoundedResidency:
    def _bulk_db(self, rows=200):
        schema = DatabaseSchema([
            RelationSchema.build("big", ["a", "b"], types={"a": INTEGER}),
        ])
        db = Database(schema, backend=PagedBackend(**SMALL))
        db.insert_many(
            "big", [[i, f"value-{i % 17}"] for i in range(rows)]
        )
        return db

    def test_primitives_never_hydrate_the_mirror(self):
        db = self._bulk_db()
        backend = db.backend
        assert db.count_distinct("big", ("a",)) == 200
        assert db.count_distinct("big", ("b",)) == 17
        assert db.fd_holds("big", ("a",), ("b",))
        assert db.inclusion_holds("big", ("b",), "big", ("b",))
        assert backend._mirrors == {}
        assert len(backend.pool) <= SMALL["pool_pages"]
        # the extension really is bigger than the pool
        assert backend.files.open("big").page_count > SMALL["pool_pages"]

    def test_row_count_comes_from_the_header_not_a_scan(self):
        db = self._bulk_db()
        read_before = db.backend.files.pages_read
        assert db.backend.row_count("big") == 200
        assert db.backend.files.pages_read == read_before

    def test_rows_stream_in_insertion_order(self):
        db = self._bulk_db(rows=50)
        values = list(db.backend.rows("big"))
        assert values == [(i, f"value-{i % 17}") for i in range(50)]
        assert db.backend._mirrors == {}


class TestTelemetry:
    def test_metrics_carry_nonzero_pool_counters(self):
        pipeline, _ = run_pipeline(PagedBackend(**SMALL))
        metrics = metrics_summary(pipeline.tracer)
        counters = metrics["backends"]["paged"]["counters"]
        assert counters["pool_hits"] > 0
        assert counters["pool_misses"] > 0
        assert counters["pool_evictions"] > 0
        assert counters["pages_read"] > 0

    def test_trace_events_carry_counter_deltas(self):
        pipeline, _ = run_pipeline(PagedBackend(**SMALL))
        events = [
            r for r in trace_records(pipeline.tracer) if r.get("type") == "event"
        ]
        assert any(r.get("counters", {}).get("pool_misses") for r in events)

    def test_memory_backend_traces_are_unchanged(self):
        """No telemetry hook — no counters key anywhere in the trace."""
        pipeline, _ = run_pipeline(MemoryBackend())
        records = trace_records(pipeline.tracer)
        assert all("counters" not in r for r in records)
        metrics = metrics_summary(pipeline.tracer)
        assert "counters" not in metrics["backends"]["memory"]

    def test_telemetry_counters_are_monotonic(self):
        db = build_paper_database(backend=PagedBackend(**SMALL))
        before = db.backend.telemetry()
        db.count_distinct("Person", ("id",))
        after = db.backend.telemetry()
        assert all(after[k] >= before[k] for k in before)
        # the scan had to touch the pool either way: hits if the
        # relation was still resident, misses otherwise
        traffic = ("pool_hits", "pool_misses")
        assert sum(after[k] for k in traffic) > sum(before[k] for k in traffic)


class TestDiagnostics:
    def test_truncated_page_file_is_a_one_line_error(self, tmp_path):
        backend = PagedBackend(
            directory=str(tmp_path), pool_pages=4, page_size=128
        )
        schema = DatabaseSchema([
            RelationSchema.build("r", ["a"], types={"a": INTEGER}),
        ])
        db = Database(schema, backend=backend)
        db.insert_many("r", [[i] for i in range(40)])
        backend.close()

        path = backend.files.path_for("r")
        with open(path, "r+b") as handle:
            handle.truncate(200)
        fresh = PagedBackend(directory=str(tmp_path), pool_pages=4, page_size=128)
        with pytest.raises(StorageError) as excinfo:
            Database(schema, backend=fresh)
        message = str(excinfo.value)
        assert "truncated page file" in message and path in message
        assert "\n" not in message

    def test_corrupt_magic_names_the_file(self, tmp_path):
        path = tmp_path / "junk.pages"
        path.write_bytes(b"\xff" * 256)
        backend = PagedBackend(directory=str(tmp_path), pool_pages=4)
        schema = DatabaseSchema([
            RelationSchema.build("junk", ["a"], types={"a": INTEGER}),
        ])
        with pytest.raises(StorageError, match="not a paged relation file"):
            Database(schema, backend=backend)

    def test_missing_db_file_stays_a_one_line_cli_error(self, capsys):
        from repro.cli import main

        code = main(["inspect", "/nonexistent/x.db"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "no such database file" in err
        assert "Traceback" not in err

    def test_truncated_page_file_stays_a_one_line_cli_error(
        self, tmp_path, capsys, monkeypatch
    ):
        """A damaged store surfaces as `error: ...`, never a traceback."""
        from repro import cli

        def boom(*args, **kwargs):
            raise StorageError(
                "truncated page file /data/r.pages: expected 256 bytes "
                "at offset 256, got 12"
            )

        monkeypatch.setattr(cli, "load_database", boom)
        code = cli.main(["inspect", "whatever.sql"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: truncated page file")
        assert "Traceback" not in err


class TestLifecycle:
    def test_close_is_idempotent_and_removes_scratch_dir(self):
        import os

        backend = PagedBackend(**SMALL)
        directory = backend.directory
        schema = DatabaseSchema([
            RelationSchema.build("r", ["a"], types={"a": INTEGER}),
        ])
        Database(schema, backend=backend).insert("r", [1])
        assert os.path.isdir(directory)
        backend.close()
        backend.close()
        assert not os.path.isdir(directory)

    def test_caller_owned_directory_survives_close_and_reopens(self, tmp_path):
        schema = DatabaseSchema([
            RelationSchema.build("r", ["a", "b"], types={"a": INTEGER}),
        ])
        backend = PagedBackend(directory=str(tmp_path), **{"pool_pages": 4, "page_size": 128})
        db = Database(schema, backend=backend)
        db.insert_many("r", [[i, f"s{i}"] for i in range(25)])
        backend.close()

        reopened = PagedBackend(directory=str(tmp_path), pool_pages=4, page_size=128)
        db2 = Database(schema, backend=reopened)
        assert db2.backend.row_count("r") == 25
        assert db2.count_distinct("r", ("a",)) == 25
        assert list(db2.backend.rows("r")) == [(i, f"s{i}") for i in range(25)]

    def test_spawn_is_isolated(self):
        backend = PagedBackend(**SMALL)
        clone = backend.spawn()
        assert clone.directory != backend.directory
        assert clone.pool.capacity == backend.pool.capacity
        assert clone.files.page_size == backend.files.page_size
        clone.close()
        backend.close()
