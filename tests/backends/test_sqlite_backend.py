"""SQLite backend specifics: introspection, persistence, caching, e2e.

The contract suite (test_contract.py) proves the primitives agree with
the in-memory engine; this module covers what only the SQLite backend
does — reading ``K``/``N`` from the data dictionary, the ``.db``
round trip, statement/result caching against the engine, and the
acceptance path: reverse-engineering a ``.db`` file produces the same
3NF schema, RIC set and EER diagram as the in-memory seed.
"""

import sqlite3

import pytest

from repro.backends import (
    SQLiteBackend,
    dtype_from_declared,
    introspect_schema,
    open_sqlite,
)
from repro.core import DBREPipeline, ScriptedExpert
from repro.exceptions import DataError
from repro.relational.domain import BOOLEAN, DATE, INTEGER, NULL, REAL, TEXT
from repro.storage.sqlite_io import declared_table_sql, save_sqlite
from repro.workloads.paper_example import (
    PAPER_EXPECTED,
    build_paper_database,
    paper_expert_script,
    paper_program_corpus,
)


class TestDtypeFromDeclared:
    @pytest.mark.parametrize(
        "declared, expected",
        [
            ("INTEGER", INTEGER),
            ("int", INTEGER),
            ("BIGINT", INTEGER),
            ("TEXT", TEXT),
            ("VARCHAR(40)", TEXT),
            ("NCHAR(10)", TEXT),
            ("CLOB", TEXT),
            ("REAL", REAL),
            ("DOUBLE PRECISION", REAL),
            ("FLOAT", REAL),
            ("NUMERIC(9, 2)", REAL),
            ("DECIMAL", REAL),
            ("DATE", DATE),
            ("DATETIME", DATE),
            ("TIMESTAMP", DATE),
            ("BOOLEAN", BOOLEAN),
            ("BOOL", BOOLEAN),
            (None, TEXT),
            ("", TEXT),
            ("BLOB", TEXT),
        ],
    )
    def test_affinity_mapping(self, declared, expected):
        assert dtype_from_declared(declared) == expected

    def test_bool_and_date_win_over_numeric_affinity(self):
        # 'BOOLEAN' contains no INT, but 'DATETIME' would match nothing
        # numeric either — the real traps are the combined names
        assert dtype_from_declared("BOOLEAN DEFAULT 0") == BOOLEAN
        assert dtype_from_declared("DATE NOT NULL") == DATE


class TestIntrospectSchema:
    @pytest.fixture
    def conn(self):
        conn = sqlite3.connect(":memory:")
        yield conn
        conn.close()

    def test_table_info_maps_to_k_and_n(self, conn):
        conn.execute(
            'CREATE TABLE "t" ('
            '"id" INTEGER NOT NULL, "name" VARCHAR(40), '
            '"born" DATE, "score" REAL NOT NULL, '
            'PRIMARY KEY ("id"))'
        )
        schema = introspect_schema(conn)
        rel = schema.relation("t")
        assert tuple(rel.attribute_names) == ("id", "name", "born", "score")
        assert rel.primary_key().names == ("id",)
        non_null = {a.name for a in rel.attributes if not a.nullable}
        assert non_null == {"id", "score"}
        assert rel.attribute("born").dtype == DATE

    def test_unique_indexes_join_the_key_set(self, conn):
        conn.execute(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c TEXT)"
        )
        conn.execute("CREATE UNIQUE INDEX u_bc ON t (b, c)")
        conn.execute("CREATE INDEX plain_c ON t (c)")  # not unique: ignored
        rel = introspect_schema(conn).relation("t")
        uniques = {u.attributes.names for u in rel.uniques}
        assert uniques == {("a",), ("b", "c")}

    def test_partial_and_expression_indexes_are_skipped(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        conn.execute(
            "CREATE UNIQUE INDEX part ON t (a) WHERE b IS NOT NULL"
        )
        conn.execute("CREATE UNIQUE INDEX expr ON t (lower(b))")
        rel = introspect_schema(conn).relation("t")
        assert rel.uniques == ()

    def test_internal_sqlite_tables_are_ignored(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE UNIQUE INDEX u_a ON t (a)")  # sqlite_autoindex
        schema = introspect_schema(conn)
        assert list(schema.relation_names) == ["t"]

    def test_multi_column_pk_keeps_declared_order(self, conn):
        conn.execute(
            "CREATE TABLE t (x TEXT, y INTEGER, z DATE, "
            "PRIMARY KEY (y, x))"
        )
        rel = introspect_schema(conn).relation("t")
        assert rel.primary_key().names == ("y", "x")


class TestSaveAndOpen:
    def test_declared_table_sql_carries_the_dictionary(self):
        db = build_paper_database()
        sql = declared_table_sql(db.schema.relation("Person"))
        assert 'PRIMARY KEY ("id")' in sql
        assert '"id" INTEGER NOT NULL' in sql
        assert '"zip-code"' in sql  # hyphenated names survive quoting

    def test_round_trip_recovers_k_and_n(self, tmp_path):
        path = str(tmp_path / "paper.db")
        save_sqlite(build_paper_database(), path)
        db = open_sqlite(path)
        try:
            assert tuple(db.schema.key_set()) == PAPER_EXPECTED.key_set
            assert (
                tuple(db.schema.not_null_set()) == PAPER_EXPECTED.not_null_set
            )
            assert db.count_distinct("Person", ("id",)) == 22
        finally:
            db.close()

    def test_round_trip_preserves_values_and_nulls(self, tmp_path):
        path = str(tmp_path / "paper.db")
        original = build_paper_database()
        save_sqlite(original, path)
        db = open_sqlite(path)
        try:
            assert list(db.backend.rows("Department")) == list(
                original.backend.rows("Department")
            )
            assert any(
                values[1] is NULL for values in db.backend.rows("Department")
            )
        finally:
            db.close()

    def test_dirty_extension_refuses_to_save(self, tmp_path):
        db = build_paper_database()
        first = next(db.backend.rows("Person"))
        db.insert("Person", first)  # duplicate declared key
        with pytest.raises(DataError):
            save_sqlite(db, str(tmp_path / "dirty.db"))

    def test_dirty_save_leaves_no_half_written_file(self, tmp_path):
        db = build_paper_database()
        db.insert("Person", next(db.backend.rows("Person")))
        path = tmp_path / "dirty.db"
        with pytest.raises(DataError):
            save_sqlite(db, str(path))
        assert not path.exists()

    def test_missing_file_is_an_error_not_an_empty_database(self, tmp_path):
        path = tmp_path / "nope.db"
        with pytest.raises(DataError):
            open_sqlite(str(path))
        assert not path.exists()  # and nothing was created as a side effect

    def test_non_sqlite_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"\x00\x01not a database\xff" * 10)
        with pytest.raises(DataError):
            open_sqlite(str(path))

    def test_open_from_connection(self):
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b BOOLEAN)")
        conn.execute("INSERT INTO t VALUES (1, 1), (2, 0), (3, NULL)")
        db = open_sqlite(conn)
        try:
            values = [row[1] for row in db.backend.rows("t")]
            assert values == [True, False, NULL]
            assert db.count_distinct("t", ("b",)) == 2
        finally:
            db.close()
            conn.close()  # open_sqlite does not own a passed connection


class TestStatementCaching:
    @pytest.fixture
    def db(self):
        return build_paper_database(backend=SQLiteBackend())

    def _traced(self, db):
        statements = []
        db.backend.connection.set_trace_callback(statements.append)
        return statements

    def test_repeat_query_hits_the_result_memo(self, db):
        db.count_distinct("Person", ("id",))
        statements = self._traced(db)
        assert db.count_distinct("Person", ("id",)) == 22
        assert statements == []  # answered from the memo, engine untouched

    def test_write_invalidates_result_but_reuses_statement(self, db):
        assert db.count_distinct("Person", ("id",)) == 22
        db.insert("Person", [99, "x", "y", 1, "69100", "Rhone"])
        statements = self._traced(db)
        assert db.count_distinct("Person", ("id",)) == 23
        distinct_queries = [s for s in statements if "DISTINCT" in s]
        assert len(distinct_queries) == 1  # recompiled? no — re-executed once

    def test_write_to_one_relation_keeps_other_memos(self, db):
        db.count_distinct("Person", ("id",))
        db.count_distinct("Department", ("dep",))
        db.insert("Person", [99, "x", "y", 1, "69100", "Rhone"])
        statements = self._traced(db)
        assert db.count_distinct("Department", ("dep",)) == 8
        assert statements == []  # Department memo survived the Person write

    def test_join_memo_guards_both_relations(self, db):
        assert db.join_count("HEmployee", ("no",), "Person", ("id",)) == 15
        db.insert("Person", [200, "x", "y", 1, "69100", "Rhone"])
        db.insert("HEmployee", {"no": 200, "date": "1996-02-26", "salary": 1})
        statements = self._traced(db)
        assert db.join_count("HEmployee", ("no",), "Person", ("id",)) == 16
        assert any("INTERSECT" in s for s in statements)

    def test_ddl_purges_compiled_statements(self, db):
        db.count_distinct("Person", ("id",))
        assert any(
            "Person" in key for key in db.backend._statements
        )
        db.drop_relation("Person")
        assert not any(
            "Person" in key for key in db.backend._statements
        )
        assert not any("Person" in key for key in db.backend._results)


class TestEndToEnd:
    """The acceptance criterion: a ``.db`` file reverse-engineers to the
    same 3NF schema, RIC set and EER diagram as the in-memory path, with
    ``K``/``N`` taken from SQLite's data dictionary."""

    @pytest.fixture(scope="class")
    def memory_result(self):
        return DBREPipeline(
            build_paper_database(), ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus())

    @pytest.fixture(scope="class")
    def sqlite_result(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("e2e") / "paper.db")
        save_sqlite(build_paper_database(), path)
        db = open_sqlite(path)
        result = DBREPipeline(
            db, ScriptedExpert(paper_expert_script())
        ).run(corpus=paper_program_corpus())
        db.close()
        return result

    def test_dictionary_k_n_match_the_declared_inputs(self, sqlite_result):
        assert tuple(sqlite_result.key_set) == PAPER_EXPECTED.key_set
        assert tuple(sqlite_result.not_null_set) == PAPER_EXPECTED.not_null_set

    def test_same_dependencies(self, memory_result, sqlite_result):
        assert set(sqlite_result.inds) == set(memory_result.inds)
        assert set(sqlite_result.fds) == set(memory_result.fds)
        assert set(sqlite_result.hidden) == set(memory_result.hidden)

    def test_same_3nf_schema_and_ric(self, memory_result, sqlite_result):
        assert {
            r.name: tuple(r.attribute_names)
            for r in sqlite_result.restructured.schema
        } == {
            r.name: tuple(r.attribute_names)
            for r in memory_result.restructured.schema
        }
        assert set(sqlite_result.ric) == set(memory_result.ric)
        assert set(sqlite_result.ric) == set(PAPER_EXPECTED.ric)

    def test_same_eer_diagram(self, memory_result, sqlite_result):
        assert {e.name for e in sqlite_result.eer.entities} == {
            e.name for e in memory_result.eer.entities
        }
        assert {
            (l.sub, l.sup) for l in sqlite_result.eer.isa_links
        } == {(l.sub, l.sup) for l in memory_result.eer.isa_links}

    def test_same_query_budget(self, memory_result, sqlite_result):
        """Pushdown changes where queries run, never how many are asked."""
        assert (
            sqlite_result.extension_queries == memory_result.extension_queries
        )
