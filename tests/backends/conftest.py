"""Backend fixtures: every contract test runs on every backend.

The factories come from the backend registry
(:mod:`repro.backends.registry`) — registering a new backend makes the
whole contract suite run over it with no test edits.  Per-backend
construction options live in ``TEST_BACKEND_OPTIONS``: the paged
backend gets a tiny pool (8 frames of 256-byte pages), so the paper
example does not fit resident and every scan exercises eviction and
write-back, not just the cache-warm path.
"""

from __future__ import annotations

import pytest

from repro.backends import backend_names, create_backend

TEST_BACKEND_OPTIONS = {
    "paged": {"pool_pages": 8, "page_size": 256},
}


def _factory(name):
    options = TEST_BACKEND_OPTIONS.get(name, {})

    def build():
        return create_backend(name, **options)

    build.kind = name
    return build


BACKEND_FACTORIES = {name: _factory(name) for name in backend_names()}


@pytest.fixture(params=sorted(BACKEND_FACTORIES), ids=sorted(BACKEND_FACTORIES))
def backend_factory(request):
    """A zero-argument constructor for one registered backend kind."""
    return BACKEND_FACTORIES[request.param]
