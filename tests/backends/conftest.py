"""Backend fixtures: every contract test runs on every backend."""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend

BACKEND_FACTORIES = {
    "memory": MemoryBackend,
    "sqlite": SQLiteBackend,
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES), ids=sorted(BACKEND_FACTORIES))
def backend_factory(request):
    """A zero-argument constructor for one registered backend kind."""
    return BACKEND_FACTORIES[request.param]
