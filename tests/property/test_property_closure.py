"""Property-based tests of the FD inference machinery (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.closure import (
    attribute_closure,
    equivalent_covers,
    implies,
    minimal_cover,
)
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.keys import candidate_keys, is_superkey

ATTRS = ["a", "b", "c", "d", "e"]

attr_subsets = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3)


@st.composite
def fd_sets(draw, max_fds=6):
    count = draw(st.integers(0, max_fds))
    out = []
    for _ in range(count):
        lhs = tuple(sorted(draw(attr_subsets)))
        rhs = tuple(sorted(draw(attr_subsets)))
        out.append(FunctionalDependency("", lhs, rhs))
    return out


class TestClosureProperties:
    @given(attr_subsets, fd_sets())
    def test_closure_is_extensive(self, attrs, fds):
        assert set(attrs) <= attribute_closure(tuple(attrs), fds)

    @given(attr_subsets, fd_sets())
    def test_closure_is_idempotent(self, attrs, fds):
        once = attribute_closure(tuple(attrs), fds)
        assert attribute_closure(tuple(once), fds) == once

    @given(attr_subsets, attr_subsets, fd_sets())
    def test_closure_is_monotone(self, small, extra, fds):
        big = small | extra
        assert attribute_closure(tuple(small), fds) <= attribute_closure(
            tuple(big), fds
        )

    @given(fd_sets())
    def test_given_fds_are_implied(self, fds):
        for fd in fds:
            assert implies(fds, fd)


class TestMinimalCoverProperties:
    @given(fd_sets())
    @settings(max_examples=60)
    def test_cover_is_equivalent(self, fds):
        cover = minimal_cover(fds)
        assert equivalent_covers(cover, fds)

    @given(fd_sets())
    @settings(max_examples=60)
    def test_cover_has_singleton_rhs_and_no_trivial(self, fds):
        for fd in minimal_cover(fds):
            assert len(fd.rhs) == 1
            assert not fd.is_trivial()

    @given(fd_sets())
    @settings(max_examples=40)
    def test_cover_is_nonredundant(self, fds):
        cover = minimal_cover(fds)
        for fd in cover:
            others = [f for f in cover if f != fd]
            assert not implies(others, fd)


class TestKeyProperties:
    @given(fd_sets())
    @settings(max_examples=60)
    def test_every_candidate_key_is_superkey(self, fds):
        keys = candidate_keys(ATTRS, fds)
        assert keys
        for key in keys:
            assert is_superkey(tuple(key), ATTRS, fds)

    @given(fd_sets())
    @settings(max_examples=60)
    def test_candidate_keys_are_minimal_and_incomparable(self, fds):
        keys = candidate_keys(ATTRS, fds)
        for key in keys:
            for attr in key:
                assert not is_superkey(tuple(key - {attr}), ATTRS, fds)
        for k1 in keys:
            for k2 in keys:
                if k1 is not k2:
                    assert not k1 < k2
