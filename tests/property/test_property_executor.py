"""Differential testing: the executor vs a Python reference model.

Random WHERE predicates (comparisons, AND/OR/NOT, IS NULL, BETWEEN) are
evaluated both by the SQL executor and by a direct Python interpreter of
the same predicate tree under SQL three-valued logic; the selected row
sets must agree exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Database, DatabaseSchema, NULL, RelationSchema
from repro.relational.domain import INTEGER, is_null
from repro.sql import Executor

ROWS = [
    (1, 10, 5), (2, 10, None), (3, 20, 7), (4, None, 5),
    (5, 30, None), (6, 20, 2), (7, None, None), (8, 40, 9),
]


def build_db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema.build(
                "t", ["k", "a", "b"], key=["k"],
                types={"k": INTEGER, "a": INTEGER, "b": INTEGER},
            )
        ]
    )
    db = Database(schema)
    for k, a, b in ROWS:
        db.insert("t", [k, NULL if a is None else a, NULL if b is None else b])
    return db


# ----------------------------------------------------------------------
# predicate trees: (sql_text, python_evaluator) pairs
# ----------------------------------------------------------------------
columns = st.sampled_from(["a", "b", "k"])
numbers = st.integers(0, 45)
operators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])

_OPS = {
    "=": lambda x, y: x == y,
    "<>": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


@st.composite
def comparisons(draw):
    col = draw(columns)
    op = draw(operators)
    num = draw(numbers)

    def evaluate(row):
        value = row[col]
        if is_null(value):
            return None
        return _OPS[op](value, num)

    return f"{col} {op} {num}", evaluate


@st.composite
def is_nulls(draw):
    col = draw(columns)
    negated = draw(st.booleans())

    def evaluate(row):
        null = is_null(row[col])
        return (not null) if negated else null

    text = f"{col} IS {'NOT ' if negated else ''}NULL"
    return text, evaluate


@st.composite
def betweens(draw):
    col = draw(columns)
    low = draw(numbers)
    high = draw(numbers)

    def evaluate(row):
        value = row[col]
        if is_null(value):
            return None
        return low <= value <= high

    return f"{col} BETWEEN {low} AND {high}", evaluate


def predicates(depth=2):
    base = st.one_of(comparisons(), is_nulls(), betweens())
    if depth == 0:
        return base

    @st.composite
    def combined(draw):
        kind = draw(st.sampled_from(["and", "or", "not", "leaf"]))
        if kind == "leaf":
            return draw(base)
        if kind == "not":
            text, inner = draw(predicates(depth - 1))
            return (
                f"NOT ({text})",
                lambda row: None if inner(row) is None else not inner(row),
            )
        left_text, left = draw(predicates(depth - 1))
        right_text, right = draw(predicates(depth - 1))
        if kind == "and":
            def evaluate(row):
                l, r = left(row), right(row)
                if l is False or r is False:
                    return False
                if l is None or r is None:
                    return None
                return True

            return f"({left_text}) AND ({right_text})", evaluate

        def evaluate(row):
            l, r = left(row), right(row)
            if l is True or r is True:
                return True
            if l is None or r is None:
                return None
            return False

        return f"({left_text}) OR ({right_text})", evaluate

    return combined()


class TestDifferentialWhere:
    @given(predicates())
    @settings(max_examples=150, deadline=None)
    def test_executor_matches_reference(self, predicate):
        text, evaluate = predicate
        db = build_db()
        result = Executor(db).run(f"SELECT k FROM t WHERE {text}")
        got = sorted(result.column(0))

        expected = []
        for row in db.table("t"):
            verdict = evaluate(row.as_dict())
            if verdict is True:
                expected.append(row["k"])
        assert got == sorted(expected), text

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_negation_partitions_with_unknowns(self, predicate):
        """rows(P) + rows(NOT P) + rows(UNKNOWN) = all rows."""
        text, _evaluate = predicate
        db = build_db()
        ex = Executor(db)
        pos = set(ex.run(f"SELECT k FROM t WHERE {text}").column(0))
        neg = set(ex.run(f"SELECT k FROM t WHERE NOT ({text})").column(0))
        assert pos.isdisjoint(neg)
        assert len(pos) + len(neg) <= len(ROWS)
