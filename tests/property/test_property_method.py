"""Property-based tests of the method's algorithms themselves.

IND-Discovery and Restruct must uphold their contracts for arbitrary
two-column extensions and arbitrary elicited sets — not just the paper's
example.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ind_discovery import discover_inds
from repro.core.restruct import restructure
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.ind_inference import ind_satisfied
from repro.normalization.chase import lossless_join
from repro.programs.equijoin import EquiJoin
from repro.relational.database import Database
from repro.relational.domain import INTEGER
from repro.relational.schema import DatabaseSchema, RelationSchema

int_lists = st.lists(st.integers(0, 8), max_size=15)


def two_relation_db(left, right):
    schema = DatabaseSchema(
        [
            RelationSchema.build("L", ["a"], types={"a": INTEGER}),
            RelationSchema.build("R", ["b"], types={"b": INTEGER}),
        ]
    )
    db = Database(schema)
    db.insert_many("L", [[v] for v in left])
    db.insert_many("R", [[v] for v in right])
    return db


JOIN = EquiJoin("L", ("a",), "R", ("b",))


class TestINDDiscoveryProperties:
    @given(int_lists, int_lists)
    @settings(max_examples=80)
    def test_every_elicited_ind_is_satisfied(self, left, right):
        """Without expert overrides, IND-Discovery only asserts what the
        extension supports."""
        db = two_relation_db(left, right)
        result = discover_inds(db, [JOIN])
        for ind in result.inds:
            assert ind_satisfied(db, ind)

    @given(int_lists, int_lists)
    @settings(max_examples=80)
    def test_true_inclusion_is_never_missed(self, left, right):
        """When left ⊆ right actually holds (non-vacuously), the
        dependency is elicited — completeness over Q."""
        db = two_relation_db(left, right)
        result = discover_inds(db, [JOIN])
        left_set, right_set = set(left), set(right)
        if left_set and left_set <= right_set:
            assert any(
                i.lhs_relation == "L" and i.rhs_relation == "R"
                for i in result.inds
            )

    @given(int_lists, int_lists)
    @settings(max_examples=80)
    def test_outcome_classification_partitions(self, left, right):
        db = two_relation_db(left, right)
        result = discover_inds(db, [JOIN])
        assert len(result.outcomes) == 1
        outcome = result.outcomes[0]
        common = set(left) & set(right)
        if not common:
            assert outcome.case == "empty"
        elif common == set(left) or common == set(right):
            assert outcome.case == "inclusion"
        else:
            assert outcome.case == "nei"


rows3 = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 4), st.text(max_size=3)),
    min_size=1,
    max_size=20,
    unique_by=lambda r: r[0],
)


class TestRestructProperties:
    @given(rows3)
    @settings(max_examples=60)
    def test_fd_split_is_lossless_on_data(self, rows):
        """Splitting along a *satisfied* FD loses no information: joining
        the fragments back recovers the original extension."""
        schema = DatabaseSchema(
            [
                RelationSchema.build(
                    "r", ["k", "f", "v"], key=["k"],
                    types={"k": INTEGER, "f": INTEGER},
                )
            ]
        )
        db = Database(schema)
        # force f -> v to hold: v is a function of f
        data = [(k, f, f"v{f}") for k, f, _txt in rows]
        db.insert_many("r", data)
        fd = FunctionalDependency("r", ("f",), ("v",))
        result = restructure(db, [fd], [], [])
        name = result.added[0].name
        lookup = {row["f"]: row["v"] for row in db.table(name)}
        rejoined = {
            (row["k"], row["f"], lookup[row["f"]]) for row in db.table("r")
        }
        assert rejoined == set(data)

    @given(rows3)
    @settings(max_examples=60)
    def test_split_schema_is_lossless_by_chase(self, rows):
        fd = FunctionalDependency("r", ("f",), ("v",))
        key_fd = FunctionalDependency("r", ("k",), ("f", "v"))
        assert lossless_join(
            ["k", "f", "v"], [["f", "v"], ["k", "f"]], [fd, key_fd]
        )

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=15))
    @settings(max_examples=60)
    def test_hidden_object_extension_is_distinct_values(self, values):
        schema = DatabaseSchema(
            [RelationSchema.build("r", ["k", "f"], key=["k"], types={"k": INTEGER, "f": INTEGER})]
        )
        db = Database(schema)
        db.insert_many("r", [[i, v] for i, v in enumerate(values)])
        from repro.relational.attribute import AttributeRef

        result = restructure(db, [], [AttributeRef("r", "f")], [])
        table = db.table(result.added[0].name)
        assert sorted(row["f"] for row in table) == sorted(set(values))
        # the link IND holds by construction
        for ind in result.ric:
            assert ind_satisfied(db, ind)
