"""Property-based tests of the certified synthesis engine (hypothesis).

The four invariants the ISSUE's verification suite promises, each
checked on randomly drawn FD sets over a fixed universe:

a. the chase finds every emitted decomposition lossless;
b. 3NF synthesis preserves every input dependency;
c. every output relation satisfies its claimed normal form (and the
   certificate's target, unless loss was recorded);
d. ``verify_certificate`` accepts every emitted certificate and rejects
   every mutated one.

The example budget is environment-driven: the fast lane runs
``REPRO_SYNTH_EXAMPLES`` (default 60) examples per invariant, the
slow-marked classes run ``REPRO_SYNTH_EXAMPLES_SLOW`` (default 500,
never fewer) so CI's dedicated slow lane meets the >=500 bar.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.closure import project_fds
from repro.dependencies.fd import FunctionalDependency
from repro.normalization.certificate import (
    certificate_from_dict,
    certificate_to_dict,
)
from repro.normalization.engine import normalize
from repro.normalization.normal_forms import NormalForm, diagnose_normal_form
from repro.normalization.chase import lossless_join
from repro.normalization.certificate import verify_certificate

ATTRS = ["a", "b", "c", "d", "e"]

FAST_EXAMPLES = int(os.environ.get("REPRO_SYNTH_EXAMPLES", "60"))
SLOW_EXAMPLES = max(500, int(os.environ.get("REPRO_SYNTH_EXAMPLES_SLOW", "500")))

attr_subsets = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3)
targets = st.sampled_from(["3nf", "bcnf"])


@st.composite
def fd_sets(draw, max_fds=6):
    count = draw(st.integers(0, max_fds))
    out = []
    for _ in range(count):
        lhs = tuple(sorted(draw(attr_subsets)))
        rhs = tuple(sorted(draw(attr_subsets)))
        out.append(FunctionalDependency("", lhs, rhs))
    return out


# ----------------------------------------------------------------------
# the invariant checks (shared by the fast and the slow lane)
# ----------------------------------------------------------------------
def check_chase_lossless(fds, target):
    """(a) every decomposition the engine emits is chase-lossless."""
    result = normalize(ATTRS, fds, target_nf=target)
    certificate = result.certificate
    assert certificate.lossless, f"{target} emitted a lossy decomposition"
    # and the claim is not just recorded — the chase agrees from scratch
    assert lossless_join(
        list(certificate.universe),
        certificate.fragment_sets(),
        certificate.parsed_fds(),
    )


def check_3nf_preserving(fds):
    """(b) Bernstein synthesis loses no dependency."""
    certificate = normalize(ATTRS, fds, target_nf="3nf").certificate
    assert certificate.lost == ()
    assert certificate.dependency_preserving


def check_claimed_forms(fds, target):
    """(c) every relation satisfies its claimed form, and the target."""
    certificate = normalize(ATTRS, fds, target_nf=target).certificate
    target_form = (
        NormalForm.BOYCE_CODD if target == "bcnf" else NormalForm.THIRD
    )
    parsed = certificate.parsed_fds()
    for scheme in certificate.relations:
        local = project_fds(parsed, scheme.attributes)
        diagnosed = diagnose_normal_form(list(scheme.attributes), local)
        assert diagnosed.value == scheme.normal_form, (
            f"{scheme.name}: diagnosed {diagnosed}, claims {scheme.normal_form}"
        )
        if not certificate.lost:
            assert diagnosed.at_least(target_form), (
                f"{scheme.name}: {diagnosed} below target with no recorded loss"
            )


def _mutate(certificate, choice):
    """One deliberately broken copy of a valid certificate."""
    mutated = certificate_from_dict(certificate_to_dict(certificate))
    if choice == 1 and mutated.preserved:
        # move a preserved dependency into the loss record
        moved = mutated.preserved[0]
        mutated.preserved = tuple(mutated.preserved[1:])
        mutated.lost = mutated.lost + (moved,)
        return mutated
    if choice == 2:
        # claim a key that determines nothing
        schemes = list(mutated.relations)
        schemes[0] = dataclasses.replace(schemes[0], key=())
        mutated.relations = tuple(schemes)
        return mutated
    if choice == 3:
        # claim a wrong normal form (strict verification compares exactly)
        schemes = list(mutated.relations)
        wrong = "1NF" if schemes[0].normal_form != "1NF" else "BCNF"
        schemes[0] = dataclasses.replace(schemes[0], normal_form=wrong)
        mutated.relations = tuple(schemes)
        return mutated
    if choice == 4:
        # grow the universe so the fragments no longer cover it
        mutated.universe = mutated.universe + ("zz_phantom",)
        return mutated
    # default: flip the chase verdict
    mutated.lossless = not mutated.lossless
    return mutated


def check_verify_roundtrip(fds, target, choice):
    """(d) emitted certificates verify; mutated ones are rejected."""
    certificate = normalize(ATTRS, fds, target_nf=target).certificate
    assert verify_certificate(certificate) == []
    mutated = _mutate(certificate, choice)
    assert verify_certificate(mutated), (
        f"mutation {choice} was not detected"
    )


# ----------------------------------------------------------------------
# fast lane
# ----------------------------------------------------------------------
class TestSynthesisProperties:
    @given(fd_sets(), targets)
    @settings(max_examples=FAST_EXAMPLES, deadline=None)
    def test_chase_lossless(self, fds, target):
        check_chase_lossless(fds, target)

    @given(fd_sets())
    @settings(max_examples=FAST_EXAMPLES, deadline=None)
    def test_3nf_preserves_dependencies(self, fds):
        check_3nf_preserving(fds)

    @given(fd_sets(), targets)
    @settings(max_examples=FAST_EXAMPLES, deadline=None)
    def test_relations_satisfy_claimed_forms(self, fds, target):
        check_claimed_forms(fds, target)

    @given(fd_sets(), targets, st.integers(0, 4))
    @settings(max_examples=FAST_EXAMPLES, deadline=None)
    def test_verify_accepts_emitted_rejects_mutated(self, fds, target, choice):
        check_verify_roundtrip(fds, target, choice)


# ----------------------------------------------------------------------
# slow lane: same invariants, >=500 examples each
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSynthesisPropertiesDeep:
    @given(fd_sets(), targets)
    @settings(max_examples=SLOW_EXAMPLES, deadline=None)
    def test_chase_lossless(self, fds, target):
        check_chase_lossless(fds, target)

    @given(fd_sets())
    @settings(max_examples=SLOW_EXAMPLES, deadline=None)
    def test_3nf_preserves_dependencies(self, fds):
        check_3nf_preserving(fds)

    @given(fd_sets(), targets)
    @settings(max_examples=SLOW_EXAMPLES, deadline=None)
    def test_relations_satisfy_claimed_forms(self, fds, target):
        check_claimed_forms(fds, target)

    @given(fd_sets(), targets, st.integers(0, 4))
    @settings(max_examples=SLOW_EXAMPLES, deadline=None)
    def test_verify_accepts_emitted_rejects_mutated(self, fds, target, choice):
        check_verify_roundtrip(fds, target, choice)
