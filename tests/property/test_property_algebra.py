"""Property-based tests of the relational algebra under NULLs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import (
    count_distinct,
    distinct_values,
    equijoin_match_count,
    functional_maps,
    values_subset,
)
from repro.relational.domain import INTEGER, NULL
from repro.relational.schema import RelationSchema
from repro.relational.table import Table

values = st.one_of(st.integers(0, 6), st.none())
rows2 = st.lists(st.tuples(values, values), max_size=20)
rows1 = st.lists(st.tuples(values), max_size=20)


def table2(rows, name="r"):
    schema = RelationSchema.build(
        name, ["a", "b"], types={"a": INTEGER, "b": INTEGER}
    )
    t = Table(schema)
    for a, b in rows:
        t.insert([NULL if a is None else a, NULL if b is None else b])
    return t


def table1(rows, name="s", attr="x"):
    schema = RelationSchema.build(name, [attr], types={attr: INTEGER})
    t = Table(schema)
    for (v,) in rows:
        t.insert([NULL if v is None else v])
    return t


class TestCountDistinct:
    @given(rows2)
    def test_count_matches_python_set(self, rows):
        t = table2(rows)
        expected = {(a,) for a, _b in rows if a is not None}
        assert count_distinct(t, ("a",)) == len(expected)
        assert distinct_values(t, ("a",)) == expected

    @given(rows2)
    def test_multi_attr_count_at_most_product(self, rows):
        t = table2(rows)
        pairs = count_distinct(t, ("a", "b"))
        assert pairs <= len(rows)


class TestJoinsAndInclusion:
    @given(rows1, rows1)
    def test_join_count_is_symmetric(self, left, right):
        lt = table1(left, "l", "x")
        rt = table1(right, "r", "y")
        assert equijoin_match_count(lt, ("x",), rt, ("y",)) == (
            equijoin_match_count(rt, ("y",), lt, ("x",))
        )

    @given(rows1, rows1)
    def test_join_count_bounded_by_sides(self, left, right):
        lt = table1(left, "l", "x")
        rt = table1(right, "r", "y")
        n = equijoin_match_count(lt, ("x",), rt, ("y",))
        assert n <= count_distinct(lt, ("x",))
        assert n <= count_distinct(rt, ("y",))

    @given(rows1, rows1)
    def test_inclusion_iff_join_saturates_left(self, left, right):
        """The IND-Discovery criterion: N_kl = N_k iff left ⊆ right."""
        lt = table1(left, "l", "x")
        rt = table1(right, "r", "y")
        n_kl = equijoin_match_count(lt, ("x",), rt, ("y",))
        n_k = count_distinct(lt, ("x",))
        assert (n_kl == n_k) == values_subset(lt, ("x",), rt, ("y",))

    @given(rows1)
    def test_inclusion_is_reflexive(self, rows):
        t = table1(rows)
        assert values_subset(t, ("x",), t, ("x",))


class TestFunctionalMaps:
    @given(rows2)
    def test_key_column_determines_everything(self, rows):
        # deduplicate on a first, so a acts as a key
        seen = {}
        for a, b in rows:
            if a is not None and a not in seen:
                seen[a] = b
        t = table2([(a, b) for a, b in seen.items()])
        assert functional_maps(t, ("a",), ("b",))

    @given(rows2)
    @settings(max_examples=60)
    def test_fd_check_matches_bruteforce(self, rows):
        t = table2(rows)
        groups = {}
        violated = False
        for a, b in rows:
            if a is None:
                continue
            if a in groups and groups[a] != b:
                violated = True
            groups.setdefault(a, b)
        assert functional_maps(t, ("a",), ("b",)) == (not violated)

    @given(rows2)
    def test_reflexive_fd_always_holds(self, rows):
        t = table2(rows)
        assert functional_maps(t, ("a",), ("a",))
