"""Property-based round-trips through the SQL layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs.equijoin import EquiJoin
from repro.sql import format_statement
from repro.sql.parser import parse_sql

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "IN",
        "EXISTS", "INTERSECT", "UNION", "ALL", "JOIN", "INNER", "LEFT",
        "RIGHT", "OUTER", "ON", "AS", "ORDER", "BY", "GROUP", "HAVING",
        "ASC", "DESC", "CREATE", "TABLE", "PRIMARY", "KEY", "UNIQUE",
        "NULL", "INSERT", "INTO", "VALUES", "COUNT", "MIN", "MAX", "SUM",
        "AVG", "IS", "BETWEEN", "LIKE", "DROP", "DELETE", "UPDATE", "SET",
    }
)


class TestFormatterRoundTrip:
    @given(identifiers, identifiers, identifiers, identifiers)
    @settings(max_examples=60)
    def test_projection_round_trip(self, table, alias, col1, col2):
        sql = f"SELECT {alias}.{col1}, {alias}.{col2} FROM {table} {alias}"
        stmt = parse_sql(sql)
        assert format_statement(parse_sql(format_statement(stmt))) == (
            format_statement(stmt)
        )

    @given(st.integers(-1000, 1000), st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ))
    @settings(max_examples=60)
    def test_literal_round_trip(self, number, text):
        sql = f"INSERT INTO t VALUES ({number}, '{text.replace(chr(39), chr(39)*2)}')"
        stmt = parse_sql(sql)
        restored = parse_sql(format_statement(stmt))
        assert restored.rows == ((number, text),)


class TestEquiJoinCanonicalProperties:
    @given(identifiers, identifiers, identifiers, identifiers)
    @settings(max_examples=80)
    def test_symmetry(self, r1, a1, r2, a2):
        left = EquiJoin(r1, (a1,), r2, (a2,))
        right = EquiJoin(r2, (a2,), r1, (a1,))
        assert left == right
        assert hash(left) == hash(right)
        assert left.sort_key() == right.sort_key()

    @given(identifiers, identifiers, identifiers)
    @settings(max_examples=60)
    def test_repr_parses_back(self, r1, a1, a2):
        join = EquiJoin(r1, (a1,), r1 + "2", (a2,))
        assert EquiJoin.parse(repr(join)) == join
