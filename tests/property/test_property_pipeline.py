"""Whole-pipeline invariants over randomized scenarios (hypothesis).

Whatever the random schema, data, corruption and coverage, the pipeline
must uphold its contracts: the restructured schema is in 3NF, every
emitted RIC has a key right-hand side, INDs elicited without expert
overrides hold in the extension, and the original database is never
mutated.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBREPipeline
from repro.core.expert import Expert
from repro.dependencies.ind_inference import ind_satisfied
from repro.normalization import NormalForm, schema_normal_forms
from repro.workloads.scenario import ScenarioConfig, build_scenario

scenario_configs = st.builds(
    ScenarioConfig,
    seed=st.integers(0, 10_000),
    n_entities=st.integers(4, 7),
    n_one_to_many=st.integers(3, 6),
    n_many_to_many=st.integers(0, 1),
    merges=st.integers(0, 2),
    parent_rows=st.just(10),
    corruption_ind_rate=st.sampled_from([0.0, 0.5]),
    corruption_row_rate=st.just(0.1),
    coverage=st.sampled_from([0.5, 1.0]),
)


class TestPipelineInvariants:
    @given(scenario_configs)
    @settings(max_examples=15, deadline=None)
    def test_restructured_schema_is_3nf(self, config):
        scenario = build_scenario(config)
        result = DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )
        forms = schema_normal_forms(result.restructured.schema, [])
        assert all(nf.at_least(NormalForm.THIRD) for nf in forms.values())

    @given(scenario_configs)
    @settings(max_examples=15, deadline=None)
    def test_every_ric_has_key_rhs(self, config):
        scenario = build_scenario(config)
        result = DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )
        schema = result.restructured.schema
        for ind in result.ric:
            assert schema.relation(ind.rhs_relation).is_key(ind.rhs_attrs)

    @given(scenario_configs.filter(lambda c: c.corruption_ind_rate == 0.0))
    @settings(max_examples=10, deadline=None)
    def test_cautious_elicitation_is_sound_on_clean_data(self, config):
        """With the cautious expert (no overrides) on clean data, every
        elicited IND is satisfied by the extension."""
        scenario = build_scenario(config)
        result = DBREPipeline(scenario.database, Expert()).run(
            corpus=scenario.corpus, translate=False
        )
        for ind in result.inds:
            assert ind_satisfied(scenario.database, ind), ind

    @given(scenario_configs.filter(lambda c: c.corruption_ind_rate == 0.0))
    @settings(max_examples=10, deadline=None)
    def test_ric_satisfied_by_restructured_extension(self, config):
        """On clean data the restructured database satisfies every RIC —
        the migration artifact is internally consistent."""
        scenario = build_scenario(config)
        result = DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus, translate=False
        )
        for ind in result.ric:
            assert ind_satisfied(result.restructured, ind), ind

    @given(scenario_configs)
    @settings(max_examples=10, deadline=None)
    def test_original_database_untouched(self, config):
        scenario = build_scenario(config)
        before = {
            r.name: tuple(r.attribute_names)
            for r in scenario.database.schema
        }
        row_counts = {
            t.name: len(t) for t in scenario.database.tables()
        }
        DBREPipeline(scenario.database, scenario.expert).run(
            corpus=scenario.corpus
        )
        after = {
            r.name: tuple(r.attribute_names)
            for r in scenario.database.schema
        }
        assert before == after
        assert row_counts == {
            t.name: len(t) for t in scenario.database.tables()
        }

    @given(scenario_configs)
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, config):
        first_scenario = build_scenario(config)
        second_scenario = build_scenario(config)
        first = DBREPipeline(first_scenario.database, first_scenario.expert).run(
            corpus=first_scenario.corpus, translate=False
        )
        second = DBREPipeline(
            second_scenario.database, second_scenario.expert
        ).run(corpus=second_scenario.corpus, translate=False)
        assert first.inds == second.inds
        assert first.fds == second.fds
        assert first.ric == second.ric
