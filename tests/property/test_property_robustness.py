"""Robustness fuzzing: hostile inputs must fail with library errors only.

A reverse-engineering tool eats decades-old source files; whatever
garbage comes in, the SQL front end and the extractor must either work
or raise a :class:`~repro.exceptions.ReproError` — never an arbitrary
Python exception.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.programs.corpus import ApplicationProgram
from repro.programs.embedded import extract_sql_units
from repro.programs.extractor import EquiJoinExtractor
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statements

printable_text = st.text(alphabet=string.printable, max_size=200)

sql_ish_words = st.lists(
    st.sampled_from(
        [
            "SELECT", "FROM", "WHERE", "AND", "OR", "IN", "EXISTS",
            "UNION", "INTERSECT", "GROUP", "BY", "HAVING", "ORDER",
            "JOIN", "ON", "LIKE", "BETWEEN", "NOT", "NULL", "COUNT",
            "(", ")", ",", ";", "=", "<", ">", "*", ".",
            "R", "S", "a", "b", "x", "'text'", "42", "3.14",
        ]
    ),
    max_size=30,
).map(" ".join)


class TestLexerRobustness:
    @given(printable_text)
    @settings(max_examples=150)
    def test_lexer_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return
        assert tokens[-1].kind == "EOF"

    @given(printable_text)
    @settings(max_examples=100)
    def test_lexer_terminates_and_consumes(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return
        # bounded token count: no infinite loops, no zero-width tokens
        assert len(tokens) <= len(text) + 1


class TestParserRobustness:
    @given(sql_ish_words)
    @settings(max_examples=200)
    def test_parser_raises_library_errors_only(self, text):
        try:
            parse_statements(text)
        except ReproError:
            pass

    @given(printable_text)
    @settings(max_examples=100)
    def test_parser_on_arbitrary_text(self, text):
        try:
            parse_statements(text)
        except ReproError:
            pass


class TestExtractorRobustness:
    @given(printable_text)
    @settings(max_examples=75)
    def test_corpus_extraction_never_crashes(self, source):
        program = ApplicationProgram("fuzz.sql", "sql", source)
        extractor = EquiJoinExtractor(schema=None)
        report = extractor.extract_from_program(program)
        # statements either parsed or were recorded as skipped
        assert report.statements_seen >= len(report.skipped)

    @given(printable_text)
    @settings(max_examples=50)
    def test_embedded_scan_never_crashes(self, source):
        for language in ("sql", "cobol", "c"):
            program = ApplicationProgram(f"f.{language}", language, source)
            units = extract_sql_units(program)
            for unit in units:
                assert unit.text
